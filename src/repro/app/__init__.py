"""The demo application: the paper's workflow, CLI, and web server.

- :mod:`repro.app.session` — the Figure-3 workflow as an explicit state
  machine (load dataset → preprocess → design scorer → preview → label);
- :mod:`repro.app.design` — the design view's helpers: attribute
  preview, histogram rendering, weight validation;
- :mod:`repro.app.cli` — the ``ranking-facts`` command-line interface;
- :mod:`repro.app.server` — a stdlib HTTP server exposing labels as
  JSON and HTML (the web-demo substitution, see DESIGN.md §4), with a
  token-keyed session registry and batch-job endpoints backed by the
  :mod:`repro.engine` label service.
"""

from repro.app.design import attribute_preview, histogram_ascii, suggest_weights
from repro.app.session import DemoSession, SessionStage

__all__ = [
    "DemoSession",
    "SessionStage",
    "attribute_preview",
    "histogram_ascii",
    "suggest_weights",
]
