"""A stdlib-only HTTP server for the demo (the web-app substitution).

The original Ranking Facts is "a Web-based application"; this server
reproduces its workflow without Flask or network installs — and serves
*many* workflows at once: sessions live in a token-keyed, *bounded*
registry (oldest-idle eviction past the cap), and every session
computes through one shared
:class:`~repro.engine.service.LabelService`, so identical designs
across users are one cached Monte-Carlo loop, not N.  Server-side
``"csv"`` paths in ``POST /jobs`` are rejected unless the server was
started with ``--allow-local-paths DIR``, and then only paths that
resolve inside that sandbox directory are read.

With a durable label store attached (``--store PATH`` or
``REPRO_LABEL_STORE``; :mod:`repro.store`), labels survive restarts
and three archive routes open up:

- ``GET /labels``                 — the stored-label listing;
- ``GET /labels/<fp>``            — one label plus its provenance;
- ``GET /labels/<fp1>/diff/<fp2>`` — the drift report between two
  stored labels (:func:`repro.label.compare.diff_labels`);
- ``GET /traces``                 — the archived-trace listing;
- ``GET /traces/<id>``            — one trace, spans plus the
  reconstructed span tree (any unambiguous id prefix works; an
  ambiguous one 404s *with* the candidate ids), and — when continuous
  profiling linked a capture — the profile's per-span top frames;
- ``GET /profiles``               — the archived-profile listing;
- ``GET /profiles/<id>``          — one archived profile capture.

Global routes:

- ``GET  /``              — landing page with links;
- ``GET  /health``        — liveness probe;
- ``GET  /healthz``       — liveness plus SLO error-budget burn
  (always 200; ``status`` flips to ``"degraded"`` while burning);
- ``GET  /metrics``       — Prometheus exposition text: per-endpoint
  request latency histograms, in-flight gauges, span durations, and
  every other registry the process keeps (scrape this);
- ``GET  /datasets``      — the built-in dataset registry as JSON;
- ``GET  /engine/stats``  — cache / tier / store / executor counters,
  plus ``telemetry`` (metric snapshot + recent traces), ``profiles``
  (sampler state), and ``resources`` (CPU/RSS/threads/fds/GC) blocks;
- ``GET  /debug/profile`` — capture a profiling window right now:
  ``?seconds=N&hz=H&format=collapsed|json`` (``archive=1`` persists
  the capture when a store is attached);
- ``POST /session``       — open a session; optional ``{"dataset":
  ..., "design": {...}}`` preloads it; returns ``{"token": ...}``;
- ``GET  /sessions``      — tokens and stages of every open session;
- ``POST /jobs``          — submit a batch: ``{"jobs": [{"dataset":
  ..., "design": {...}}, ...]}``; returns ``{"batch_id": ...}``; with
  ``?stream=1`` the response is instead a Server-Sent-Events stream
  of per-job ``widget``/``label``/``error`` events;
- ``GET  /jobs/<id>``     — poll a batch; ``?include=labels`` embeds
  finished labels as JSON.

Per-session routes (``<token>`` from ``POST /session``):

- ``POST /session/<token>/dataset``  — load a built-in dataset;
- ``POST /session/<token>/design``   — commit weights/sensitive/...;
- ``POST /session/<token>/close``    — forget the session;
- ``GET  /session/<token>/label``    — the label as JSON;
- ``GET  /session/<token>/label.stream`` — the same label built live,
  streamed as SSE: one ``widget`` event per finished widget (cheapest
  first, Monte-Carlo-heavy stability last), then a terminal ``label``
  event whose JSON is byte-identical to ``GET .../label``;
- ``GET  /session/<token>/label.html`` — the Figure-1 style HTML page;
- ``GET  /session/<token>/preview``  — ranking top rows as JSON;
- ``GET  /session/<token>/attributes`` — the design view's overview.

The seed's single-session routes (``/label``, ``/preview``,
``/attributes``, ``POST /dataset``, ``POST /design``) still work and
address the *default* session — the one :func:`make_server` was bound
to — so existing clients and the CLI's ``serve`` are unaffected.

Use :func:`make_server` in tests (ephemeral port) and
:func:`serve_forever` from the CLI.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs

from repro.app.session import DemoSession, SessionStage
from repro.app.sse import SSEStream
from repro.datasets.loaders import list_datasets
from repro.engine.jobs import JobStatus, LabelJob
from repro.engine.service import LabelService
from repro.engine.streaming import LabelEventQueue
from repro.errors import EngineError, RankingFactsError
from repro.label.render_html import render_html
from repro.label.render_json import render_json
from repro.telemetry import (
    DEFAULT_CONTINUOUS_HZ,
    DEFAULT_WINDOW_HZ,
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    ResourceCollector,
    SamplingPolicy,
    SamplingProfiler,
    SLOEngine,
    TraceCollector,
    configure_logging,
    env_profile_enabled,
    get_default_profiler,
    get_default_registry,
    get_logger,
    get_trace_buffer,
    is_trace_id,
    merged_stats,
    new_trace_id,
    render_prometheus,
    span,
    span_tree,
)

_log = get_logger("app.server")

__all__ = [
    "SessionRegistry",
    "make_server",
    "serve_forever",
    "resolve_service_env",
    "ServerHandle",
]

_LANDING_PAGE = """<!DOCTYPE html><html><head><meta charset="utf-8">
<title>Ranking Facts demo</title></head><body>
<h1>Ranking Facts</h1>
<p>A nutritional label for rankings (Yang et al., SIGMOD 2018 — reproduction).</p>
<ul>
<li><a href="/label.html">the label (HTML)</a></li>
<li><a href="/label">the label (JSON)</a></li>
<li><a href="/preview">ranking preview (JSON)</a></li>
<li><a href="/datasets">built-in datasets (JSON)</a></li>
<li><a href="/engine/stats">engine statistics (JSON)</a></li>
<li><a href="/metrics">Prometheus metrics (text)</a></li>
<li><a href="/labels">stored label archive (JSON; needs --store)</a></li>
</ul>
<p>Multi-session API: POST /session, then /session/&lt;token&gt;/...;
batch API: POST /jobs, GET /jobs/&lt;batch_id&gt;.</p>
</body></html>"""


class SessionRegistry:
    """Token-keyed sessions sharing one label service.

    The registry is bounded two ways (mirroring the cache's caps):

    - **count** — when ``max_sessions`` is exceeded, the session that
      has gone longest without being looked up is evicted; a client
      looping ``POST /session`` can no longer grow server memory until
      OOM;
    - **idle time** — with ``session_ttl`` set, a session untouched
      for that many seconds is expired lazily (checked on every
      registry operation), so a long-running server sheds abandoned
      sessions even while well under the count cap.

    An evicted or expired token then 404s like any unknown one.
    ``adopt``-ed sessions (the server's bound default) are pinned:
    neither the cap nor the TTL ever removes them.
    """

    def __init__(
        self,
        service: LabelService | None = None,
        max_sessions: int = 256,
        session_ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_sessions < 1:
            raise EngineError(f"max_sessions must be >= 1, got {max_sessions}")
        if session_ttl is not None and session_ttl <= 0:
            raise EngineError(
                f"session_ttl must be > 0 seconds, got {session_ttl}"
            )
        self._service = service if service is not None else LabelService()
        # ordered oldest-touched first; get() re-ends a token, so the
        # eviction victim is always the longest-idle session
        self._sessions: OrderedDict[str, DemoSession] = OrderedDict()
        self._touched: dict[str, float] = {}
        self._pinned: set[str] = set()
        self._max_sessions = max_sessions
        self._session_ttl = session_ttl
        self._clock = clock
        self._evicted = 0
        self._expired = 0
        self._lock = threading.Lock()

    @property
    def service(self) -> LabelService:
        """The shared label service every session computes through."""
        return self._service

    @property
    def max_sessions(self) -> int:
        """The registry's capacity, in sessions."""
        return self._max_sessions

    @property
    def session_ttl(self) -> float | None:
        """Idle seconds after which a session expires (``None`` = never)."""
        return self._session_ttl

    @property
    def evicted(self) -> int:
        """How many idle sessions the cap has evicted so far."""
        with self._lock:
            return self._evicted

    @property
    def expired(self) -> int:
        """How many idle sessions the TTL has expired so far."""
        with self._lock:
            return self._expired

    def _expire_locked(self) -> None:
        # lazy TTL sweep: tokens iterate oldest-touched first, so the
        # scan stops at the first still-fresh unpinned session
        if self._session_ttl is None:
            return
        now = self._clock()
        for token in list(self._sessions):
            if now - self._touched[token] <= self._session_ttl:
                break
            if token in self._pinned:
                continue  # the adopted default session never expires
            del self._sessions[token]
            del self._touched[token]
            self._expired += 1

    def _evict_locked(self, keep: str) -> None:
        # never evict the token being registered right now: handing the
        # caller a token that already 404s would be worse than briefly
        # exceeding the cap when everything else is pinned
        while len(self._sessions) > self._max_sessions:
            victim = next(
                (
                    t
                    for t in self._sessions
                    if t not in self._pinned and t != keep
                ),
                None,
            )
            if victim is None:  # everything left is pinned (or just added)
                break
            del self._sessions[victim]
            self._touched.pop(victim, None)
            self._evicted += 1

    def create(self) -> tuple[str, DemoSession]:
        """Open a fresh session; returns its token and the session."""
        session = DemoSession(service=self._service)
        token = secrets.token_hex(8)
        with self._lock:
            self._expire_locked()
            self._sessions[token] = session
            self._touched[token] = self._clock()
            self._evict_locked(keep=token)
        return token, session

    def adopt(self, session: DemoSession, token: str | None = None) -> str:
        """Register an existing session, pinned (the server's default)."""
        token = token or secrets.token_hex(8)
        with self._lock:
            self._expire_locked()
            self._sessions[token] = session
            self._touched[token] = self._clock()
            self._pinned.add(token)
            self._evict_locked(keep=token)
        return token

    def get(self, token: str) -> DemoSession:
        """The session for ``token`` (raises :class:`EngineError`)."""
        with self._lock:
            self._expire_locked()
            session = self._sessions.get(token)
            if session is not None:
                self._sessions.move_to_end(token)  # mark recently used
                self._touched[token] = self._clock()
        if session is None:
            raise EngineError(f"unknown session token {token!r}")
        return session

    def close(self, token: str) -> bool:
        """Forget a session; returns whether it existed."""
        with self._lock:
            self._pinned.discard(token)
            self._touched.pop(token, None)
            return self._sessions.pop(token, None) is not None

    def tokens(self) -> dict[str, str]:
        """``{token: stage}`` for every open session."""
        with self._lock:
            self._expire_locked()
            return {t: s.stage.value for t, s in self._sessions.items()}


#: session sub-routes with fixed names (anything else is collapsed, so
#: client-invented paths cannot mint unbounded metric label values)
_SESSION_SUBROUTES = frozenset({
    "label", "label.html", "label.stream", "preview", "attributes",
    "status", "close", "dataset", "design",
})
_TOP_ROUTES = frozenset({
    "health", "healthz", "metrics", "datasets", "sessions",
    "label", "label.html", "label.stream", "preview", "attributes",
    "dataset", "design",
})


def _route_template(parts: list[str]) -> str:
    """The bounded route label a request path falls under.

    Metrics labels must come from a small fixed set — the raw path
    embeds session tokens, batch ids, and fingerprints (unbounded
    cardinality) and is attacker-controlled besides.
    """
    if not parts:
        return "/"
    head = parts[0]
    if head == "session":
        if len(parts) == 1:
            return "/session"
        if len(parts) == 3 and parts[2] in _SESSION_SUBROUTES:
            return "/session/{token}/" + parts[2]
        return "/session/{token}/{other}"
    if head == "jobs":
        return "/jobs" if len(parts) == 1 else "/jobs/{id}"
    if head == "labels":
        if len(parts) == 1:
            return "/labels"
        if len(parts) == 2:
            return "/labels/{fp}"
        if len(parts) == 3 and parts[1] == "diff":
            return "/labels/{fp}/diff/{fp}"
        return "/labels/{other}"
    if head == "traces":
        return "/traces" if len(parts) == 1 else "/traces/{id}"
    if head == "profiles":
        return "/profiles" if len(parts) == 1 else "/profiles/{id}"
    if parts == ["engine", "stats"]:
        return "/engine/stats"
    if parts == ["debug", "profile"]:
        return "/debug/profile"
    if len(parts) == 1 and head in _TOP_ROUTES:
        return "/" + head
    return "{unknown}"


def _apply_dataset(session: DemoSession, body: dict) -> None:
    name = body.get("name")
    if not isinstance(name, str):
        raise RankingFactsError('POST needs {"name": "<dataset>"}')
    session.load_builtin(name)


def _apply_design(session: DemoSession, body: dict) -> None:
    weights = body.get("weights")
    sensitive = body.get("sensitive")
    if not isinstance(weights, dict) or not weights:
        raise RankingFactsError('design needs a non-empty "weights" object')
    if isinstance(sensitive, str):
        sensitive = [sensitive]
    if not isinstance(sensitive, list) or not sensitive:
        raise RankingFactsError('design needs "sensitive": attribute name or list')
    # coerce *before* touching the session: a non-numeric value is the
    # client's mistake (400), not an internal error (500)
    try:
        clean_weights = {str(a): float(w) for a, w in weights.items()}
    except (TypeError, ValueError) as exc:
        raise RankingFactsError(f"bad design weight: {exc}") from exc
    try:
        k = int(body.get("k", 10))
    except (TypeError, ValueError) as exc:
        raise RankingFactsError(f'bad design value for "k": {exc}') from exc
    try:
        alpha = float(body.get("alpha", 0.05))
    except (TypeError, ValueError) as exc:
        raise RankingFactsError(f'bad design value for "alpha": {exc}') from exc
    session.set_normalization(bool(body.get("normalize", True)))
    session.design_scoring(
        weights=clean_weights,
        sensitive_attribute=[str(s) for s in sensitive],
        id_column=body.get("id_column"),
        diversity_attributes=body.get("diversity"),
        k=k,
        alpha=alpha,
    )
    try:
        if "seed" in body:
            session.set_seed(int(body["seed"]))
        epsilons = body.get("monte_carlo_epsilons", (0.05, 0.1, 0.2))
        if isinstance(epsilons, (str, bytes)) or not isinstance(
            epsilons, (list, tuple)
        ):
            raise RankingFactsError(
                '"monte_carlo_epsilons" must be a list of numbers'
            )
        # always applied, so a redesign without the field (or with 0) turns
        # the expensive Monte-Carlo detail off — consistent with k/alpha
        session.set_monte_carlo(
            int(body.get("monte_carlo_trials", 0)), tuple(epsilons)
        )
    except (TypeError, ValueError) as exc:
        raise RankingFactsError(f"bad Monte-Carlo design value: {exc}") from exc


class _StreamGate:
    """Admission control plus the drain signal for SSE streams.

    Every streaming response holds one slot for its whole lifetime; a
    request past ``max_streams`` is rejected up front with 503 instead
    of queueing — a slow-client pile-up must not pin every builder
    thread.  ``draining`` is the graceful-shutdown signal: once set,
    new streams are rejected and live stream loops close cleanly
    within one poll interval (:meth:`ServerHandle.stop`).
    """

    def __init__(self, max_streams: int = 32):
        if max_streams < 1:
            raise EngineError(f"max_streams must be >= 1, got {max_streams}")
        self.max_streams = max_streams
        self.draining = threading.Event()
        self._active = 0
        self._lock = threading.Lock()

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def acquire(self) -> bool:
        """Claim a stream slot; ``False`` when full or draining."""
        with self._lock:
            if self.draining.is_set() or self._active >= self.max_streams:
                return False
            self._active += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1

    def wait_idle(self, timeout: float) -> bool:
        """Block until every stream released its slot (or timeout)."""
        deadline = time.monotonic() + timeout
        while self.active > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)
        return True


class _RankingFactsHandler(BaseHTTPRequestHandler):
    """Routes requests against the registry and the shared service."""

    # set by make_server on the subclass
    registry: SessionRegistry = None  # type: ignore[assignment]
    default_session: DemoSession | None = None
    # resolved sandbox directory server-side "csv" paths must live
    # under; None disables local paths entirely
    local_path_root: "Path | None" = None
    metrics: MetricsRegistry = None  # type: ignore[assignment]
    slo: "SLOEngine | None" = None
    trace_collector: "TraceCollector | None" = None
    # the process-wide sampling profiler behind GET /debug/profile, and
    # the label profile reports carry as their origin
    profiler: "SamplingProfiler | None" = None
    profile_source = "server"
    # process resource collector behind the repro_process_* families;
    # refreshed at scrape/stats time, no poller thread
    resources: "ResourceCollector | None" = None
    # render /metrics as OpenMetrics with per-bucket trace-id exemplars;
    # off by default so existing scrapes see byte-identical output
    metrics_exemplars = False

    # streaming knobs (class attributes so tests can tighten them)
    stream_queue_size = 32
    stream_publish_timeout = 2.0
    stream_poll_interval = 0.5

    # per-request state, initialized by _handle (class defaults so the
    # helpers stay safe if a subclass calls them directly)
    _status = 0
    _trace_id: "str | None" = None

    server_version = "RankingFacts/2.0"
    # chunked transfer (the streaming endpoints) requires HTTP/1.1;
    # plain responses still carry Content-Length, so keep-alive works
    protocol_version = "HTTP/1.1"
    # reap keep-alive connections idle longer than this, so abandoned
    # clients cannot hold handler threads forever
    timeout = 60

    def setup(self) -> None:
        super().setup()
        lock = getattr(self.server, "live_lock", None)
        if lock is not None:
            with lock:
                self.server.live_connections.add(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            lock = getattr(self.server, "live_lock", None)
            if lock is not None:
                with lock:
                    self.server.live_connections.discard(self.connection)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep tests and CLI output clean

    def _send_raw(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            # echo the request's trace so a client (or curl -v) can
            # grep server/worker logs for this exact request
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send(self, status: int, content_type: str, payload: str) -> None:
        self._send_raw(
            status, f"{content_type}; charset=utf-8", payload.encode("utf-8")
        )

    def _send_json(self, status: int, data: object) -> None:
        self._send(status, "application/json", json.dumps(data, indent=2))

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle("POST", self._route_post)

    def _handle(self, method: str, router: Callable[[], None]) -> None:
        """Route one request inside a span, with per-endpoint metrics.

        The request adopts the client's ``X-Trace-Id`` (32 hex chars)
        when present — so a caller can stitch its own telemetry to the
        server's — and mints a fresh trace id otherwise.  The span makes
        the trace ambient for everything downstream on this thread:
        engine spans, store spans, and the coordinator's wire frames all
        inherit it.
        """
        route = _route_template(self._split()[0])
        self._status = 0
        claimed = (self.headers.get("X-Trace-Id") or "").strip().lower()
        if claimed and not is_trace_id(claimed):
            # a malformed id is treated as absent, never propagated into
            # spans/logs/wire frames — but it is counted, because a
            # client sending junk ids deserves a visible signal
            self.metrics.counter(
                "repro_http_bad_trace_id_total",
                "Requests whose X-Trace-Id header was malformed",
            ).inc()
            claimed = ""
        self._trace_id = claimed or new_trace_id()
        inflight = self.metrics.gauge(
            "repro_http_inflight_requests",
            "HTTP requests currently being handled",
            tag_names=("method",),
        )
        inflight.inc(method=method)
        started = time.perf_counter()
        try:
            with span(
                "http.request",
                trace_id=self._trace_id,
                registry=self.metrics,
                method=method,
                route=route,
            ):
                try:
                    router()
                except RankingFactsError as exc:
                    self._send_json(400, {"error": str(exc)})
                except Exception as exc:  # pragma: no cover - defensive boundary
                    _log.error(
                        "internal error on %s %s: %s", method, route, exc,
                        extra={"trace_id": self._trace_id},
                    )
                    self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            inflight.dec(method=method)
            elapsed = time.perf_counter() - started
            status = str(self._status or 500)
            self.metrics.histogram(
                "repro_http_request_seconds",
                "HTTP request latency by endpoint",
                tag_names=("method", "route"),
            ).observe(elapsed, method=method, route=route)
            self.metrics.counter(
                "repro_http_requests_total",
                "HTTP requests served, by endpoint and status",
                tag_names=("method", "route", "status"),
            ).inc(method=method, route=route, status=status)
            _log.debug(
                "%s %s -> %s in %.6fs", method, route, status, elapsed,
                extra={"trace_id": self._trace_id},
            )

    def _metric_registries(self) -> list[MetricsRegistry]:
        """The union ``/metrics`` renders and the SLO engine reads."""
        registries = [self.metrics, get_default_registry()]
        registries.extend(self.registry.service.metrics_registries())
        return registries

    def _send_metrics(self) -> None:
        """``GET /metrics``: one exposition page for the whole process.

        With exemplars enabled — server flag, ``REPRO_METRICS_EXEMPLARS``,
        or a per-scrape ``?exemplars=1`` — the page switches to the
        OpenMetrics dialect and each histogram bucket carries its last
        trace-id exemplar; otherwise the output stays byte-identical to
        what existing scrapes have always seen.
        """
        _, query = self._split()
        exemplars = self.metrics_exemplars or (
            parse_qs(query).get("exemplars", ["0"])[-1] in ("1", "true", "yes")
        )
        if self.resources is not None:
            # refresh the repro_process_* gauges so the scrape is current
            self.resources.refresh(self.metrics)
        page = render_prometheus(*self._metric_registries(), exemplars=exemplars)
        content_type = (
            OPENMETRICS_CONTENT_TYPE if exemplars else PROMETHEUS_CONTENT_TYPE
        )
        self._send_raw(200, content_type, page.encode("utf-8"))

    # -- helpers -----------------------------------------------------------------

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RankingFactsError("POST body required")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RankingFactsError(f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise RankingFactsError("POST body must be a JSON object")
        return body

    def _split(self) -> tuple[list[str], str]:
        path, _, query = self.path.partition("?")
        return [part for part in path.split("/") if part], query

    def _default(self) -> DemoSession:
        if self.default_session is None:
            raise RankingFactsError(
                "no default session bound; open one with POST /session "
                "and use the /session/<token>/ routes"
            )
        return self.default_session

    def _label_for(self, session: DemoSession):
        if session.stage is not SessionStage.LABELED:
            session.generate_label()
        return session.last_label()

    # -- session views (shared by default and token routes) -------------------------

    # -- streaming (SSE) ---------------------------------------------------------

    def _stream_response(self, produce: Callable[[LabelEventQueue], object]) -> None:
        """Admission, metrics, and the drain loop for one SSE response.

        ``produce`` receives the event queue once an admission slot is
        held; it must arrange (asynchronously) for events to be
        published and the queue closed.  The loop then relays every
        event as an SSE frame, heartbeats on idle ticks (which is how a
        vanished client is detected between events), and closes cleanly
        on the terminal event, a disconnect, a backpressure abort, or
        the server's drain signal.  The slot is held exactly as long as
        the response lives, so a stalled client occupies bounded queue
        memory and one admission slot — never a builder thread.
        """
        gate: "_StreamGate | None" = getattr(self.server, "stream_gate", None)
        streams_total = self.metrics.counter(
            "repro_streams_total",
            "SSE streams, by outcome "
            "(completed, rejected, disconnected, aborted, drained)",
            tag_names=("outcome",),
        )
        if gate is None or not gate.acquire():
            streams_total.inc(outcome="rejected")
            cap = getattr(gate, "max_streams", 0)
            self._send_json(
                503,
                {
                    "error": (
                        f"too many concurrent streams (cap {cap}); "
                        "retry later or use the non-streaming endpoint"
                    )
                },
            )
            return
        active_gauge = self.metrics.gauge(
            "repro_streams_active", "SSE streams currently open"
        )
        active_gauge.inc()
        started = time.perf_counter()
        outcome = "completed"
        events = LabelEventQueue(
            maxsize=self.stream_queue_size,
            publish_timeout=self.stream_publish_timeout,
        )
        stream = SSEStream(self)
        # first-byte vs last-byte: this span runs from the response head
        # to the first event frame; the enclosing http.request span (and
        # repro_stream_seconds below) covers the full stream
        first_span = span("stream.first_event", registry=self.metrics)
        span_open = False
        first_sent = False
        try:
            produce(events)
            stream.begin()
            first_span.__enter__()
            span_open = True
            try:
                while True:
                    if gate.draining.is_set():
                        outcome = "drained"
                        events.abort("server draining")
                        stream.send_comment("server draining; stream closed")
                        break
                    event = events.get(timeout=self.stream_poll_interval)
                    if event is None:
                        if events.finished:
                            break
                        stream.send_comment("ping")
                        continue
                    stream.send_event(
                        event.kind, json.dumps(event.as_dict(), indent=2)
                    )
                    if not first_sent:
                        first_sent = True
                        first_span.__exit__(None, None, None)
                        span_open = False
                        self.metrics.histogram(
                            "repro_stream_first_event_seconds",
                            "Latency from stream start to the first event "
                            "on the wire",
                        ).observe(time.perf_counter() - started)
            except OSError:
                outcome = "disconnected"
                events.abort("client disconnected")
            if outcome == "completed" and events.aborted:
                outcome = "aborted"  # backpressure tore the stream down
            stream.end()
        finally:
            if span_open:
                first_span.__exit__(None, None, None)
            gate.release()
            active_gauge.dec()
            self.metrics.histogram(
                "repro_stream_seconds", "Total lifetime of one SSE stream"
            ).observe(time.perf_counter() - started)
            streams_total.inc(outcome=outcome)
            _log.debug(
                "stream closed (%s) after %d event(s)",
                outcome, stream.events_sent,
                extra={"trace_id": self._trace_id},
            )

    def _stream_label_view(self, session: DemoSession) -> None:
        """``GET .../label.stream``: the label as staged SSE events."""
        # one consistent design snapshot, taken under the session lock;
        # the build itself runs on the executor pool so this handler
        # thread only relays events (and the session stays unlocked)
        table, design, dataset_name = session.label_inputs()
        service = self.registry.service
        self._stream_response(
            lambda events: service.stream_label(
                table, design, dataset_name, events=events
            )
        )

    def _get_session_view(self, session: DemoSession, view: str) -> None:
        if view == "label":
            facts = self._label_for(session)
            self._send(200, "application/json", render_json(facts.label))
        elif view == "label.stream":
            self._stream_label_view(session)
        elif view == "label.html":
            facts = self._label_for(session)
            self._send(200, "text/html", render_html(facts.label))
        elif view == "preview":
            facts = self._label_for(session)
            records = facts.ranking.top_k(
                min(facts.label.k, facts.ranking.size)
            ).to_records()
            self._send_json(200, {"preview": records})
        elif view == "attributes":
            self._send_json(200, {"attributes": session.attribute_overview()})
        elif view == "status":
            self._send_json(
                200,
                {
                    "stage": session.stage.value,
                    "cached": session.last_label_was_cached(),
                },
            )
        else:
            raise RankingFactsError(f"unknown session view {view!r}")

    def _post_session_action(self, session: DemoSession, action: str) -> None:
        body = self._read_json_body()
        if action == "dataset":
            _apply_dataset(session, body)
            self._send_json(
                200,
                {"ok": True, "dataset": body["name"], "stage": session.stage.value},
            )
        elif action == "design":
            _apply_design(session, body)
            self._send_json(200, {"ok": True, "stage": session.stage.value})
        else:
            raise RankingFactsError(f"unknown session action {action!r}")

    # -- GET routing ---------------------------------------------------------------

    def _route_get(self) -> None:
        parts, _ = self._split()
        if not parts:
            self._send(200, "text/html", _LANDING_PAGE)
        elif parts == ["health"]:
            sessions = self.registry.tokens()
            self._send_json(
                200, {"status": "ok", "sessions": len(sessions)}
            )
        elif parts == ["healthz"]:
            self._get_healthz()
        elif parts == ["metrics"]:
            self._send_metrics()
        elif parts == ["datasets"]:
            self._send_json(200, {"datasets": list(list_datasets())})
        elif parts == ["engine", "stats"]:
            telemetry: dict[str, object] = {
                "metrics": self.metrics.snapshot(),
                "recent_traces": get_trace_buffer().recent(10),
                "trace_buffer": get_trace_buffer().snapshot(),
            }
            if self.trace_collector is not None:
                telemetry["trace_collector"] = self.trace_collector.stats()
            extra: dict[str, object] = {"telemetry": telemetry}
            if self.profiler is not None:
                extra["profiles"] = {"profiler": self.profiler.stats()}
            if self.resources is not None:
                extra["resources"] = self.resources.snapshot()
            if self.slo is not None:
                extra["slo"] = self.slo.evaluate()
            self._send_json(
                200, merged_stats(self.registry.service.stats, **extra)
            )
        elif parts == ["debug", "profile"]:
            self._get_debug_profile()
        elif parts[0] == "profiles":
            self._get_profiles(parts[1:])
        elif parts == ["sessions"]:
            self._send_json(200, {"sessions": self.registry.tokens()})
        elif parts[0] == "session" and len(parts) == 3:
            try:
                session = self.registry.get(parts[1])
            except EngineError as exc:
                self._send_json(404, {"error": str(exc)})
                return
            self._get_session_view(session, parts[2])
        elif parts[0] == "jobs" and len(parts) == 2:
            self._get_batch(parts[1])
        elif parts[0] == "labels":
            self._get_labels(parts[1:])
        elif parts[0] == "traces":
            self._get_traces(parts[1:])
        elif len(parts) == 1 and parts[0] in (
            "label", "label.html", "label.stream", "preview", "attributes",
        ):
            self._get_session_view(self._default(), parts[0])
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- the durable label archive (requires a store) --------------------------

    def _store(self):
        store = self.registry.service.store
        if store is None:
            raise RankingFactsError(
                "no label store configured; start the server with "
                "--store PATH (or REPRO_LABEL_STORE) to keep a durable "
                "label archive"
            )
        return store

    def _stored_facts(self, store, fingerprint_or_prefix: str):
        """Resolve a (possibly prefixed) fingerprint to its stored facts."""
        from repro.errors import StoreError

        try:
            fingerprint = store.resolve_prefix(fingerprint_or_prefix)
        except StoreError as exc:
            self._send_json(404, {"error": str(exc)})
            return None, None
        facts = store.get(fingerprint)
        if facts is None:  # expired between resolve and get
            self._send_json(
                404, {"error": f"no stored label {fingerprint_or_prefix!r}"}
            )
            return None, None
        return fingerprint, facts

    def _get_labels(self, parts: list[str]) -> None:
        store = self._store()
        if not parts:
            records = store.records()
            self._send_json(200, {"labels": records, "count": len(records)})
            return
        if len(parts) == 1:
            fingerprint, facts = self._stored_facts(store, parts[0])
            if fingerprint is None:
                return
            provenance = store.provenance(fingerprint)
            self._send_json(200, {
                "fingerprint": fingerprint,
                "label": json.loads(render_json(facts.label)),
                "provenance": None if provenance is None else provenance.as_dict(),
            })
            return
        if len(parts) == 3 and parts[1] == "diff":
            from repro.label.compare import diff_labels

            fp_a, facts_a = self._stored_facts(store, parts[0])
            if fp_a is None:
                return
            fp_b, facts_b = self._stored_facts(store, parts[2])
            if fp_b is None:
                return
            # LabelError (different dataset/k) surfaces as a 400 via
            # the RankingFactsError boundary in do_GET
            drift = diff_labels(facts_a.label, facts_b.label)
            self._send_json(200, {
                "before": fp_a,
                "after": fp_b,
                "diff": drift.as_dict(),
                "summary": drift.summary_lines(),
            })
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _get_healthz(self) -> None:
        """``GET /healthz``: liveness plus advisory SLO burn.

        Always 200 — a burning error budget means "page a human", not
        "take the instance out of rotation"; the payload's ``status``
        flips to ``"degraded"`` so watchers see it.
        """
        payload: dict[str, object] = {
            "status": "ok",
            "sessions": len(self.registry.tokens()),
        }
        if self.slo is not None:
            health = self.slo.health()
            payload["status"] = health["status"]
            payload["slo"] = health
        self._send_json(200, payload)

    # -- profiling ---------------------------------------------------------------

    def _get_debug_profile(self) -> None:
        """``GET /debug/profile?seconds=N&format=collapsed|json``.

        Blocks this handler thread for the window (bounded by the
        profiler's cap) while the sampler captures every *other*
        thread; with ``archive=1`` and a store attached, the capture is
        persisted and its profile id returned.
        """
        if self.profiler is None:
            raise RankingFactsError("profiling is not available on this server")
        _, query = self._split()
        params = parse_qs(query)
        try:
            seconds = float(params.get("seconds", ["2"])[-1])
            hz = float(params.get("hz", [str(DEFAULT_WINDOW_HZ)])[-1])
        except ValueError as exc:
            raise RankingFactsError(f"bad profile parameter: {exc}") from exc
        fmt = params.get("format", ["json"])[-1]
        if fmt not in ("json", "collapsed"):
            raise RankingFactsError(
                f"unknown profile format {fmt!r}; use collapsed or json"
            )
        report = self.profiler.window(seconds, hz=hz)
        report.source = self.profile_source
        if fmt == "collapsed":
            self._send(200, "text/plain", report.to_collapsed())
            return
        payload = report.as_dict()
        if params.get("archive", ["0"])[-1] in ("1", "true", "yes"):
            store = self.registry.service.store
            if store is None:
                raise RankingFactsError(
                    "archive=1 needs a label store; start the server with "
                    "--store PATH (or REPRO_LABEL_STORE)"
                )
            profile_id = secrets.token_hex(16)
            store.put_profile(
                profile_id,
                source=report.source,
                started_at=report.started_at,
                duration=report.duration,
                hz=report.hz,
                sample_count=report.samples,
                report=payload,
            )
            payload["profile_id"] = profile_id
        self._send_json(200, payload)

    def _get_profiles(self, parts: list[str]) -> None:
        """``GET /profiles[/<id>]``: the archived-profile listing/detail."""
        from repro.errors import StoreError

        store = self.registry.service.store
        if store is None:
            raise RankingFactsError(
                "no profile archive configured; start the server with "
                "--store PATH (or REPRO_LABEL_STORE) to keep captured "
                "profiles"
            )
        if not parts:
            _, query = self._split()
            limit_values = parse_qs(query).get("limit", [])
            try:
                limit = int(limit_values[-1]) if limit_values else 50
            except ValueError as exc:
                raise RankingFactsError(f"bad limit: {exc}") from exc
            records = store.profile_records(limit=limit)
            self._send_json(200, {"profiles": records, "count": len(records)})
            return
        if len(parts) == 1:
            try:
                profile_id = store.resolve_profile_prefix(parts[0])
            except StoreError as exc:
                body: dict[str, object] = {"error": str(exc)}
                matches = getattr(exc, "matches", None)
                if matches:
                    body["matches"] = matches
                self._send_json(404, body)
                return
            record = store.get_profile(profile_id)
            if record is None:  # expired between resolve and get
                self._send_json(
                    404, {"error": f"no archived profile {parts[0]!r}"}
                )
                return
            self._send_json(200, {**record.summary(), "report": record.report})
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # -- the durable trace archive (requires a store) ---------------------------

    def _get_traces(self, parts: list[str]) -> None:
        from repro.errors import StoreError

        store = self.registry.service.store
        if store is None:
            raise RankingFactsError(
                "no trace archive configured; start the server with "
                "--store PATH (or REPRO_LABEL_STORE) to keep completed "
                "traces"
            )
        if not parts:
            _, query = self._split()
            limit_values = parse_qs(query).get("limit", [])
            try:
                limit = int(limit_values[-1]) if limit_values else 50
            except ValueError as exc:
                raise RankingFactsError(f"bad limit: {exc}") from exc
            records = store.trace_records(limit=limit)
            self._send_json(200, {"traces": records, "count": len(records)})
            return
        if len(parts) == 1:
            try:
                trace_id = store.resolve_trace_prefix(parts[0])
            except StoreError as exc:
                # an ambiguous prefix carries the candidate ids, so the
                # client can list them instead of dead-ending
                body: dict[str, object] = {"error": str(exc)}
                matches = getattr(exc, "matches", None)
                if matches:
                    body["matches"] = matches
                self._send_json(404, body)
                return
            record = store.get_trace(trace_id)
            if record is None:  # expired between resolve and get
                self._send_json(
                    404, {"error": f"no archived trace {parts[0]!r}"}
                )
                return
            spans = record.spans
            payload = {
                **record.summary(),
                "spans": spans,
                "tree": span_tree(spans),
            }
            # a slow trace archived while continuous profiling ran has
            # a linked capture: surface it so clients can print the
            # top frames under the slow spans
            profile = store.profile_for_trace(trace_id)
            if profile is not None:
                payload["profile_id"] = profile.profile_id
                payload["profile"] = profile.report
            self._send_json(200, payload)
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _get_batch(self, batch_id: str) -> None:
        _, query = self._split()
        try:
            handle = self.registry.service.batch(batch_id)
        except EngineError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        status = handle.status()
        if "labels" in parse_qs(query).get("include", []):
            labels: dict[str, object] = {}
            for result in handle.completed_results():
                if result is not None and result.status is JobStatus.DONE:
                    labels[result.job_id] = json.loads(
                        render_json(result.facts.label)
                    )
            status["labels"] = labels
        self._send_json(200, status)

    # -- POST routing -----------------------------------------------------------------

    def _route_post(self) -> None:
        parts, _ = self._split()
        if not parts:
            self._send_json(404, {"error": "unknown POST path '/'"})
        elif parts == ["session"]:
            self._post_new_session()
        elif parts[0] == "session" and len(parts) == 3 and parts[2] == "close":
            closed = self.registry.close(parts[1])
            if closed:
                self._send_json(200, {"ok": True, "closed": parts[1]})
            else:
                self._send_json(
                    404, {"error": f"unknown session token {parts[1]!r}"}
                )
        elif parts[0] == "session" and len(parts) == 3:
            try:
                session = self.registry.get(parts[1])
            except EngineError as exc:
                self._send_json(404, {"error": str(exc)})
                return
            self._post_session_action(session, parts[2])
        elif parts == ["jobs"]:
            self._post_jobs()
        elif parts == ["dataset"]:
            self._post_session_action(self._default(), "dataset")
        elif parts == ["design"]:
            self._post_session_action(self._default(), "design")
        else:
            self._send_json(404, {"error": f"unknown POST path {self.path!r}"})

    def _post_new_session(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self._read_json_body() if length > 0 else {}
        token, session = self.registry.create()
        try:
            if "dataset" in body:
                session.load_builtin(str(body["dataset"]))
            if "design" in body:
                design = body["design"]
                if not isinstance(design, dict):
                    raise RankingFactsError('"design" must be a JSON object')
                _apply_design(session, design)
        except RankingFactsError:
            self.registry.close(token)
            raise
        self._send_json(
            201, {"token": token, "stage": session.stage.value}
        )

    def _post_jobs(self) -> None:
        body = self._read_json_body()
        jobs_spec = body.get("jobs")
        if not isinstance(jobs_spec, list) or not jobs_spec:
            raise RankingFactsError('POST /jobs needs a non-empty "jobs" array')
        jobs = [
            LabelJob.from_mapping(spec, job_id=f"job-{index}")
            for index, spec in enumerate(jobs_spec)
        ]
        for job in jobs:
            if job.csv_path is None:
                continue
            # a server-side path is a remote file-read primitive:
            # reject the whole batch before anything is queued
            if self.local_path_root is None:
                raise RankingFactsError(
                    f'job {job.job_id!r} names a server-side "csv" path; '
                    "local paths are disabled unless the server is "
                    "started with --allow-local-paths DIR"
                )
            # resolve() follows symlinks, so a link inside the sandbox
            # pointing outside it is rejected too
            resolved = Path(job.csv_path).resolve()
            if not resolved.is_relative_to(self.local_path_root):
                raise RankingFactsError(
                    f'job {job.job_id!r}: server-side "csv" path '
                    f"{job.csv_path!r} resolves outside the allowed "
                    f"directory {str(self.local_path_root)!r}"
                )
        _, query = self._split()
        if parse_qs(query).get("stream", ["0"])[-1] in ("1", "true", "yes"):
            # stream=1: relay per-job widget/label events as SSE instead
            # of returning a batch handle to poll
            service = self.registry.service
            self._stream_response(
                lambda events: service.stream_batch(jobs, events=events)
            )
            return
        handle = self.registry.service.submit_batch(jobs)
        self._send_json(
            202,
            {"batch_id": handle.batch_id, "total": len(jobs), "done": handle.done()},
        )


class ServerHandle:
    """A running server plus its background thread (context manager)."""

    def __init__(
        self,
        server: ThreadingHTTPServer,
        registry: SessionRegistry,
        trace_collector: "TraceCollector | None" = None,
        resources: "ResourceCollector | None" = None,
    ):
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)
        self.registry = registry
        self.trace_collector = trace_collector
        self.resources = resources
        #: the process profiler serving this daemon, and whether this
        #: daemon started its continuous sink (set by make_server)
        self.profiler: "SamplingProfiler | None" = None
        self.owns_continuous = False

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the server is bound to."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL for client requests."""
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "ServerHandle":
        self._thread.start()
        return self

    @property
    def stream_gate(self) -> "_StreamGate":
        """The SSE admission gate (tests poke it directly)."""
        return self._server.stream_gate

    def stop(self, grace: float = 5.0) -> None:
        """Shut down gracefully: drain live streams, then close.

        New streams are rejected immediately (503); open streams get up
        to ``grace`` seconds to finish their current build, after which
        any connection still alive is severed so the accept loop and
        handler threads cannot hang on a stalled client.  Idempotent.
        """
        gate = self._server.stream_gate
        gate.draining.set()
        gate.wait_idle(grace)
        self._server.shutdown()
        # handler loops see draining and close their streams; anything
        # still connected now (e.g. a client that stopped reading) is
        # cut off at the socket so finish()/join below cannot block
        with self._server.live_lock:
            leftover = list(self._server.live_connections)
        for conn in leftover:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._server.server_close()
        self._thread.join(timeout=grace)
        if self.trace_collector is not None:
            # detach the buffer listener so a later server in the same
            # process doesn't archive into a closed store
            self.trace_collector.close()
        if self.resources is not None:
            # unhook the gc callback so repeated make_server calls in
            # one process (tests) don't stack dead collectors
            self.resources.close()
        if self.owns_continuous and self.profiler is not None:
            # the continuous sink we started dies with us, so a stopped
            # server leaves the process profiler fully idle
            self.profiler.stop_continuous()
            self.owns_continuous = False

    def __exit__(self, *exc_info) -> None:
        self.stop()


def resolve_service_env(
    store_path: str | None = None,
    cache_max_bytes: int | None = None,
    cache_ttl: float | None = None,
) -> tuple[str | None, int | None, float | None]:
    """Flag-or-environment resolution for the service durability knobs.

    Explicit arguments win; otherwise ``REPRO_LABEL_STORE``,
    ``REPRO_CACHE_MAX_BYTES``, and ``REPRO_CACHE_TTL`` fill in.  Shared
    by :func:`make_server` and the CLI's ``serve`` so the two entry
    points cannot drift.
    """
    store_path = store_path or os.environ.get("REPRO_LABEL_STORE") or None
    if cache_max_bytes is None and os.environ.get("REPRO_CACHE_MAX_BYTES"):
        cache_max_bytes = int(os.environ["REPRO_CACHE_MAX_BYTES"])
    if cache_ttl is None and os.environ.get("REPRO_CACHE_TTL"):
        cache_ttl = float(os.environ["REPRO_CACHE_TTL"])
    return store_path, cache_max_bytes, cache_ttl


def _resolve_local_path_root(allow_local_paths) -> Path | None:
    """Normalize the ``allow_local_paths`` sandbox argument.

    ``None``/``False`` disables server-side paths; a string or path
    names the allow-list directory (resolved once, symlinks included,
    so later checks compare against the real location).  The old
    all-or-nothing ``True`` is rejected with a pointer to the new
    shape — silently allowing everything would be the worst reading.
    """
    if allow_local_paths is None or allow_local_paths is False:
        return None
    if allow_local_paths is True:
        raise EngineError(
            "allow_local_paths now takes the allow-list directory "
            "server-side csv paths must live under (was: a boolean); "
            "pass the directory path instead of True"
        )
    root = Path(os.fspath(allow_local_paths)).resolve()
    if not root.is_dir():
        raise EngineError(
            f"allow_local_paths directory {str(allow_local_paths)!r} "
            "does not exist or is not a directory"
        )
    return root


def make_server(
    session: DemoSession | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    service: LabelService | None = None,
    max_sessions: int = 256,
    session_ttl: float | None = None,
    allow_local_paths: "str | os.PathLike | None | bool" = None,
    store_path: str | None = None,
    cache_max_bytes: int | None = None,
    cache_ttl: float | None = None,
    metrics_registry: MetricsRegistry | None = None,
    max_streams: int = 32,
    metrics_exemplars: bool | None = None,
    trace_sample_rate: int | None = None,
    trace_slow_threshold: float | None = None,
    profile: bool | None = None,
    profile_hz: float | None = None,
    track_allocations: bool = False,
) -> ServerHandle:
    """Bind a server (port 0 = ephemeral, for tests).

    With ``session`` the server keeps the seed's single-session
    contract: the session becomes the *default* target of the
    unprefixed routes (it must have data loaded), and its service is
    shared with every registry session unless ``service`` overrides it.
    Without ``session`` the server starts empty and clients open their
    own sessions via ``POST /session``.

    When the server builds its own service (no ``session``, no
    ``service``), the ``REPRO_TRIAL_BACKEND`` environment variable
    selects the Monte-Carlo trial backend (``serial``, ``thread``,
    ``process``, ``vectorized`` — the default batched-array-kernel
    path — or ``remote``, which shards trials across the worker
    daemons listed in ``REPRO_TRIAL_WORKERS`` as comma-separated
    ``host:port``; see :mod:`repro.cluster`); an unknown value fails
    here, at startup, not on the first label request.  The same goes
    for the durable label store and the cache bounds: ``store_path``
    (or ``REPRO_LABEL_STORE``) attaches a
    :class:`~repro.store.store.LabelStore` as the L2 tier, and
    ``cache_max_bytes``/``cache_ttl`` (or ``REPRO_CACHE_MAX_BYTES``/
    ``REPRO_CACHE_TTL``) bound the in-memory L1.  With a caller-built
    ``service`` or ``session``, configure those on the service itself.

    ``metrics_registry`` scopes the server's HTTP metrics (in-flight
    gauges, per-endpoint latency histograms, request counters) — tests
    pass a fresh one for isolation; by default everything lands in the
    process-wide registry, which ``GET /metrics`` renders alongside the
    service's component registries.

    ``max_sessions`` bounds the registry (oldest-idle eviction past
    the cap) and ``session_ttl`` expires sessions idle longer than
    that many seconds (the adopted default session is exempt from
    both).  ``allow_local_paths`` names the sandbox directory
    server-side ``"csv"`` paths in ``POST /jobs`` must resolve into
    (symlink-safe); by default they are rejected entirely, because
    they would let any client read files off the server host.

    ``max_streams`` caps concurrently-open SSE responses
    (``label.stream`` / ``POST /jobs?stream=1``); a request past the
    cap gets an immediate 503 instead of queueing, because each open
    stream pins a handler thread for its whole lifetime.

    ``metrics_exemplars`` (or ``REPRO_METRICS_EXEMPLARS``) renders
    ``/metrics`` as OpenMetrics with per-bucket trace-id exemplars;
    off by default, so existing scrapes are byte-identical.  When the
    service has a durable store, completed traces are archived into it
    through a :class:`~repro.telemetry.collect.TraceCollector` under
    tail-based sampling: errors and traces slower than
    ``trace_slow_threshold`` (or ``REPRO_TRACE_SLOW_THRESHOLD``,
    default 1s) are always kept, the rest 1-in-``trace_sample_rate``
    (``REPRO_TRACE_SAMPLE_RATE``, default 1 = keep everything).

    ``profile`` (or ``REPRO_PROFILE``) turns on *continuous* low-rate
    sampling profiling (``profile_hz``, default 19 Hz): ``GET
    /debug/profile`` windows work either way (the sampler only runs
    while a capture is open), but with continuous mode on, every slow
    archived trace also gets the profiler's rolling window archived
    beside it (``GET /traces/<id>`` then carries per-span top frames).
    ``track_allocations`` opts into ``tracemalloc`` top-allocator
    reporting in ``/engine/stats`` (real overhead; never ambient).
    """
    if session is not None and session.stage is SessionStage.EMPTY:
        raise RankingFactsError("the session has no dataset; load one before serving")
    local_path_root = _resolve_local_path_root(allow_local_paths)
    if service is None:
        if session is not None:
            service = session.service
        else:
            store_path, cache_max_bytes, cache_ttl = resolve_service_env(
                store_path, cache_max_bytes, cache_ttl
            )
            service = LabelService(
                trial_backend=os.environ.get("REPRO_TRIAL_BACKEND") or None,
                store_path=store_path,
                cache_max_bytes=cache_max_bytes,
                cache_ttl=cache_ttl,
            )
    registry = SessionRegistry(
        service, max_sessions=max_sessions, session_ttl=session_ttl
    )
    if session is not None:
        registry.adopt(session)
    if metrics_exemplars is None:
        metrics_exemplars = os.environ.get(
            "REPRO_METRICS_EXEMPLARS", ""
        ).lower() in ("1", "true", "yes")
    if trace_sample_rate is None and os.environ.get("REPRO_TRACE_SAMPLE_RATE"):
        trace_sample_rate = int(os.environ["REPRO_TRACE_SAMPLE_RATE"])
    if trace_slow_threshold is None and os.environ.get(
        "REPRO_TRACE_SLOW_THRESHOLD"
    ):
        trace_slow_threshold = float(os.environ["REPRO_TRACE_SLOW_THRESHOLD"])
    profiler = get_default_profiler()
    if profile is None:
        profile = env_profile_enabled()
    owns_continuous = False
    if profile:
        owns_continuous = profiler.start_continuous(
            hz=profile_hz if profile_hz is not None else DEFAULT_CONTINUOUS_HZ
        )
    resources = ResourceCollector(track_allocations=track_allocations).install()
    collector: TraceCollector | None = None
    if registry.service.store is not None:
        collector = TraceCollector(
            archive=registry.service.store,
            policy=SamplingPolicy(
                sample_rate=trace_sample_rate or 1,
                slow_threshold=(
                    trace_slow_threshold
                    if trace_slow_threshold is not None
                    else 1.0
                ),
            ),
            # with continuous profiling on, slow traces archive the
            # profiler's rolling window beside them
            profiler=profiler if profile else None,
        )
        collector.install()
    bound_metrics = (
        metrics_registry if metrics_registry is not None else get_default_registry()
    )
    handler = type(
        "BoundHandler",
        (_RankingFactsHandler,),
        {
            "registry": registry,
            "default_session": session,
            "local_path_root": local_path_root,
            "metrics": bound_metrics,
            "metrics_exemplars": metrics_exemplars,
            "trace_collector": collector,
            "profiler": profiler,
            "resources": resources,
        },
    )
    # the engine reads the same registry union /metrics renders, so the
    # burn it reports is exactly what a scraper would compute
    handler.slo = SLOEngine(
        registries=lambda: [bound_metrics, get_default_registry()]
        + list(registry.service.metrics_registries())
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.stream_gate = _StreamGate(max_streams)
    # every accepted connection, for stop()'s last-resort severing
    server.live_connections = set()
    server.live_lock = threading.Lock()
    handle = ServerHandle(
        server, registry, trace_collector=collector, resources=resources
    )
    handle.owns_continuous = owns_continuous
    handle.profiler = profiler
    return handle


def serve_forever(
    session: DemoSession | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    session_ttl: float | None = None,
    allow_local_paths: "str | os.PathLike | None" = None,
    log_level: str | None = None,
    max_streams: int = 32,
    metrics_exemplars: bool | None = None,
    trace_sample_rate: int | None = None,
    trace_slow_threshold: float | None = None,
    profile: bool | None = None,
    track_allocations: bool = False,
) -> None:
    """Run the demo server until interrupted (the CLI's ``serve``).

    ``log_level`` (or ``REPRO_LOG_LEVEL``) turns on structured JSON
    logs on stderr, each line carrying the request's trace id; unset,
    the server stays as quiet as it always was.
    """
    log_level = log_level or os.environ.get("REPRO_LOG_LEVEL") or None
    if log_level:
        configure_logging(log_level)
    with make_server(
        session,
        host=host,
        port=port,
        session_ttl=session_ttl,
        allow_local_paths=allow_local_paths,
        max_streams=max_streams,
        metrics_exemplars=metrics_exemplars,
        trace_sample_rate=trace_sample_rate,
        trace_slow_threshold=trace_slow_threshold,
        profile=profile,
        track_allocations=track_allocations,
    ) as handle:
        print(f"Ranking Facts demo serving on {handle.url} (Ctrl-C to stop)")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down")
