"""A stdlib-only HTTP server for the demo (the web-app substitution).

The original Ranking Facts is "a Web-based application"; this server
reproduces its workflow without Flask or network installs:

- ``GET /``            — landing page with links;
- ``GET /label``       — the label as JSON;
- ``GET /label.html``  — the label as the Figure-1 style HTML page;
- ``GET /preview``     — the ranking's top rows as JSON;
- ``GET /datasets``    — the built-in dataset registry as JSON;
- ``GET /attributes``  — the design view's attribute overview as JSON;
- ``GET /health``      — liveness probe;
- ``POST /dataset``    — ``{"name": "compas"}``: load a built-in dataset;
- ``POST /design``     — Figure 3 over HTTP: ``{"weights": {...},
  "sensitive": [...], "id_column": ..., "diversity": [...], "k": ...,
  "alpha": ..., "normalize": true}``; the next ``GET /label`` reflects it.

Use :func:`make_server` in tests (ephemeral port) and
:func:`serve_forever` from the CLI.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.app.session import DemoSession, SessionStage
from repro.datasets.loaders import list_datasets
from repro.errors import RankingFactsError
from repro.label.render_html import render_html
from repro.label.render_json import render_json

__all__ = ["make_server", "serve_forever", "ServerHandle"]

_LANDING_PAGE = """<!DOCTYPE html><html><head><meta charset="utf-8">
<title>Ranking Facts demo</title></head><body>
<h1>Ranking Facts</h1>
<p>A nutritional label for rankings (Yang et al., SIGMOD 2018 — reproduction).</p>
<ul>
<li><a href="/label.html">the label (HTML)</a></li>
<li><a href="/label">the label (JSON)</a></li>
<li><a href="/preview">ranking preview (JSON)</a></li>
<li><a href="/datasets">built-in datasets (JSON)</a></li>
</ul></body></html>"""


class _RankingFactsHandler(BaseHTTPRequestHandler):
    """Routes GET requests against the bound session."""

    # set by make_server on the subclass
    session: DemoSession = None  # type: ignore[assignment]

    server_version = "RankingFacts/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep tests and CLI output clean

    def _send(self, status: int, content_type: str, payload: str) -> None:
        body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, data: object) -> None:
        self._send(status, "application/json", json.dumps(data, indent=2))

    def _label_or_error(self):
        if self.session.stage is not SessionStage.LABELED:
            self.session.generate_label()
        return self.session.last_label()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route()
        except RankingFactsError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._send_json(500, {"error": f"internal error: {exc}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            self._route_post()
        except RankingFactsError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._send_json(500, {"error": f"internal error: {exc}"})

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RankingFactsError("POST body required")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RankingFactsError(f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise RankingFactsError("POST body must be a JSON object")
        return body

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/dataset":
            body = self._read_json_body()
            name = body.get("name")
            if not isinstance(name, str):
                raise RankingFactsError('POST /dataset needs {"name": "<dataset>"}')
            self.session.load_builtin(name)
            self._send_json(
                200, {"ok": True, "dataset": name, "stage": self.session.stage.value}
            )
        elif path == "/design":
            body = self._read_json_body()
            weights = body.get("weights")
            sensitive = body.get("sensitive")
            if not isinstance(weights, dict) or not weights:
                raise RankingFactsError(
                    'POST /design needs a non-empty "weights" object'
                )
            if isinstance(sensitive, str):
                sensitive = [sensitive]
            if not isinstance(sensitive, list) or not sensitive:
                raise RankingFactsError(
                    'POST /design needs "sensitive": attribute name or list'
                )
            self.session.set_normalization(bool(body.get("normalize", True)))
            self.session.design_scoring(
                weights={str(a): float(w) for a, w in weights.items()},
                sensitive_attribute=[str(s) for s in sensitive],
                id_column=body.get("id_column"),
                diversity_attributes=body.get("diversity"),
                k=int(body.get("k", 10)),
                alpha=float(body.get("alpha", 0.05)),
            )
            self._send_json(200, {"ok": True, "stage": self.session.stage.value})
        else:
            self._send_json(404, {"error": f"unknown POST path {path!r}"})

    def _route(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/":
            self._send(200, "text/html", _LANDING_PAGE)
        elif path == "/health":
            self._send_json(200, {"status": "ok", "stage": self.session.stage.value})
        elif path == "/datasets":
            self._send_json(200, {"datasets": list(list_datasets())})
        elif path == "/attributes":
            self._send_json(
                200, {"attributes": self.session.attribute_overview()}
            )
        elif path == "/label":
            facts = self._label_or_error()
            self._send(200, "application/json", render_json(facts.label))
        elif path == "/label.html":
            facts = self._label_or_error()
            self._send(200, "text/html", render_html(facts.label))
        elif path == "/preview":
            facts = self._label_or_error()
            records = facts.ranking.top_k(
                min(facts.label.k, facts.ranking.size)
            ).to_records()
            self._send_json(200, {"preview": records})
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})


class ServerHandle:
    """A running server plus its background thread (context manager)."""

    def __init__(self, server: ThreadingHTTPServer):
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) the server is bound to."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL for client requests."""
        host, port = self.address
        return f"http://{host}:{port}"

    def __enter__(self) -> "ServerHandle":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)


def make_server(
    session: DemoSession, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Bind a server for ``session`` (port 0 = ephemeral, for tests).

    The session must have data loaded; the label is generated lazily on
    the first request that needs it.
    """
    if session.stage is SessionStage.EMPTY:
        raise RankingFactsError("the session has no dataset; load one before serving")
    handler = type("BoundHandler", (_RankingFactsHandler,), {"session": session})
    server = ThreadingHTTPServer((host, port), handler)
    return ServerHandle(server)


def serve_forever(session: DemoSession, host: str = "127.0.0.1", port: int = 8000) -> None:
    """Run the demo server until interrupted (the CLI's ``serve``)."""
    with make_server(session, host=host, port=port) as handle:
        print(f"Ranking Facts demo serving on {handle.url} (Ctrl-C to stop)")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down")
