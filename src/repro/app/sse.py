"""Server-Sent Events over chunked transfer, on the stdlib server.

The streaming endpoints speak `text/event-stream
<https://html.spec.whatwg.org/multipage/server-sent-events.html>`_:
one ``event:`` line naming the event type, one ``data:`` line per
payload line (multi-line payloads — pretty-printed JSON — become
several ``data:`` lines the client reassembles with newlines), and a
blank line terminating each event.  Lines starting with ``:`` are
comments; the server sends them as heartbeats so a vanished client is
detected between widget events (the write raises ``EPIPE``).

``BaseHTTPRequestHandler`` has no response-streaming support, so
:class:`SSEStream` also owns the transfer encoding: the response
carries no ``Content-Length``, advertises ``Transfer-Encoding:
chunked`` (the handler must set ``protocol_version = "HTTP/1.1"``),
frames every event as a hex-length chunk, and ends the response with
the zero-length terminator chunk.  ``Connection: close`` is always
sent: re-using a connection after a stream would require strict
chunked-parser agreement with arbitrary clients for zero benefit.
"""

from __future__ import annotations

__all__ = ["format_sse_event", "format_sse_comment", "SSEStream"]


def format_sse_event(event: str, data: str) -> bytes:
    """One SSE frame: ``event:`` + one ``data:`` line per payload line.

    A multi-line ``data`` (e.g. indented JSON) is split per the spec —
    the client joins consecutive ``data:`` line values with ``\\n``,
    reconstructing the payload byte-for-byte.
    """
    lines = [f"event: {event}"]
    lines.extend(f"data: {line}" for line in data.split("\n"))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_sse_comment(text: str = "") -> bytes:
    """A comment frame (heartbeat); clients ignore it by spec."""
    return f": {text}\n\n".encode("utf-8")


class SSEStream:
    """One live event-stream response over a handler's socket.

    Usage, inside a ``BaseHTTPRequestHandler`` route::

        stream = SSEStream(handler)
        stream.begin()                      # status line + headers
        stream.send_event("widget", data)   # any number of times
        stream.send_comment("ping")         # heartbeats between events
        stream.end()                        # zero-chunk terminator

    Writes raise ``OSError`` (``BrokenPipeError`` when the client went
    away) — the caller's signal to abort the producer and stop.  After
    :meth:`end` (or a failed write) further sends are no-ops, so
    cleanup paths can call :meth:`end` unconditionally.
    """

    def __init__(self, handler):
        self._handler = handler
        self._open = False
        self.events_sent = 0

    @property
    def is_open(self) -> bool:
        """Whether the stream still accepts writes."""
        return self._open

    def begin(self, status: int = 200) -> None:
        """Send the response head; the body is chunked from here on."""
        handler = self._handler
        handler.send_response(status)
        handler.send_header("Content-Type", "text/event-stream; charset=utf-8")
        handler.send_header("Cache-Control", "no-cache")
        handler.send_header("Transfer-Encoding", "chunked")
        handler.send_header("Connection", "close")
        handler.send_header("X-Accel-Buffering", "no")  # proxies: don't buffer
        if getattr(handler, "_trace_id", None):
            handler.send_header("X-Trace-Id", handler._trace_id)
        handler.end_headers()
        # the terminator chunk ends the *response*; the connection
        # itself must not be reused for another exchange
        handler.close_connection = True
        handler._status = status
        self._open = True

    def _write_chunk(self, payload: bytes) -> None:
        if not payload:
            return  # a zero-length chunk would terminate the stream
        wfile = self._handler.wfile
        wfile.write(f"{len(payload):X}\r\n".encode("ascii"))
        wfile.write(payload)
        wfile.write(b"\r\n")
        wfile.flush()

    def send_event(self, event: str, data: str) -> None:
        """Write one event frame (no-op once the stream is closed)."""
        if not self._open:
            return
        try:
            self._write_chunk(format_sse_event(event, data))
        except OSError:
            self._open = False  # client is gone; stop writing
            raise
        self.events_sent += 1

    def send_comment(self, text: str = "") -> None:
        """Write a heartbeat comment (no-op once the stream is closed)."""
        if not self._open:
            return
        try:
            self._write_chunk(format_sse_comment(text))
        except OSError:
            self._open = False
            raise

    def end(self) -> None:
        """Write the chunked-transfer terminator (idempotent)."""
        if not self._open:
            return
        self._open = False
        try:
            self._handler.wfile.write(b"0\r\n\r\n")
            self._handler.wfile.flush()
        except OSError:
            pass  # the client left first; nothing to terminate
