"""The ``ranking-facts`` command-line interface.

Subcommands mirror the demo workflow:

- ``ranking-facts datasets`` — list the built-in demo datasets;
- ``ranking-facts inspect`` — the design view: attribute overview and
  optional histograms;
- ``ranking-facts preview`` — rank and show the top rows;
- ``ranking-facts label`` — generate the nutritional label (text,
  detailed text, JSON, or HTML);
- ``ranking-facts batch`` — run many labels from a JSON spec through
  the engine (shared cache, concurrent jobs) in one invocation;
- ``ranking-facts serve`` — start the demo web server;
- ``ranking-facts stats`` — one readable engine/telemetry snapshot from
  a running server (``--watch`` refreshes it in place);
- ``ranking-facts store ls|show|gc|diff`` — inspect and maintain a
  durable label store (the archive ``serve --store`` writes);
- ``ranking-facts trace ls|show`` — list archived traces and render one
  as an ASCII request waterfall (coordinator *and* worker spans; from a
  running server with ``--url`` or straight off a store file with
  ``--path``); slow traces with a linked profile also print per-span
  top frames under the waterfall;
- ``ranking-facts profile`` — capture a sampling-profiler window from a
  running server (``GET /debug/profile``) and, with ``--worker`` or
  ``--fleet``, from trial workers too — the whole fleet's flame
  summaries in one command;
- ``ranking-facts worker`` — run a Monte-Carlo trial worker daemon
  that the ``remote`` trial backend shards stability trials onto
  (see :mod:`repro.cluster`);
- ``ranking-facts registry`` — run the worker registry daemon: workers
  ``--register`` with it, coordinators discover the live fleet from it
  (``--registry`` on ``batch``/``serve``, no static worker list);
- ``ranking-facts fleet status`` — one view of a running fleet: the
  registry's membership table plus, with ``--url``, a serving
  coordinator's per-worker circuit-breaker and retry-budget state.

Weights are given as ``name=value`` pairs, e.g.::

    ranking-facts label --dataset cs-departments \\
        --weight PubCount=0.4 --weight Faculty=0.4 --weight GRE=0.2 \\
        --sensitive DeptSizeBin --diversity DeptSizeBin --diversity Region \\
        --id-column DeptName
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.app.session import DemoSession
from repro.errors import RankingFactsError
from repro.label.render_html import render_html
from repro.label.render_json import render_json
from repro.label.render_markdown import render_markdown
from repro.label.render_text import render_text

__all__ = ["main", "build_parser"]


def _parse_weights(pairs: Sequence[str]) -> dict[str, float]:
    weights: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise RankingFactsError(
                f"bad --weight {pair!r}; expected name=value (e.g. PubCount=0.4)"
            )
        try:
            weights[name] = float(value)
        except ValueError:
            raise RankingFactsError(
                f"bad --weight {pair!r}; {value!r} is not a number"
            ) from None
    return weights


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", help="built-in dataset name (see `ranking-facts datasets`)"
    )
    source.add_argument("--csv", help="path to a user-supplied CSV file")


def _add_design_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--weight", action="append", default=[], metavar="NAME=VALUE",
        help="scoring attribute weight; repeatable",
    )
    parser.add_argument(
        "--sensitive", action="append", default=[], metavar="ATTRIBUTE",
        help="sensitive categorical attribute; repeatable",
    )
    parser.add_argument(
        "--diversity", action="append", default=[], metavar="ATTRIBUTE",
        help="diversity attribute; repeatable (defaults to the sensitive ones)",
    )
    parser.add_argument("--id-column", help="column identifying items")
    parser.add_argument(
        "--raw", action="store_true",
        help="rank on raw values (skip min-max normalization)",
    )
    parser.add_argument("--top-k", type=int, default=10, help="headline k (default 10)")
    parser.add_argument(
        "--alpha", type=float, default=0.05, help="significance level (default 0.05)"
    )
    parser.add_argument(
        "--monte-carlo-trials", type=int, default=None, metavar="N",
        help="Monte-Carlo trials for the stability detail (0 disables; "
        "default: the session's built-in default)",
    )


def _load(session: DemoSession, args: argparse.Namespace) -> None:
    if args.dataset:
        session.load_builtin(args.dataset)
    else:
        session.load_csv(args.csv)


def _design(session: DemoSession, args: argparse.Namespace) -> None:
    session.set_normalization(not args.raw)
    if getattr(args, "monte_carlo_trials", None) is not None:
        session.set_monte_carlo(args.monte_carlo_trials)
    session.design_scoring(
        weights=_parse_weights(args.weight),
        sensitive_attribute=args.sensitive,
        id_column=args.id_column,
        diversity_attributes=args.diversity or None,
        k=args.top_k,
        alpha=args.alpha,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="ranking-facts",
        description="Generate nutritional labels for rankings (Yang et al., SIGMOD 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list built-in demo datasets")

    inspect = commands.add_parser("inspect", help="attribute overview and histograms")
    _add_data_arguments(inspect)
    inspect.add_argument(
        "--histogram", action="append", default=[], metavar="ATTRIBUTE",
        help="also print an ASCII histogram of this numeric attribute; repeatable",
    )
    inspect.add_argument("--bins", type=int, default=10, help="histogram bins")

    preview = commands.add_parser("preview", help="rank and print the top rows")
    _add_data_arguments(preview)
    _add_design_arguments(preview)
    preview.add_argument("--rows", type=int, default=10, help="rows to show")

    label = commands.add_parser("label", help="generate the nutritional label")
    _add_data_arguments(label)
    _add_design_arguments(label)
    label.add_argument(
        "--format", choices=("text", "detailed", "json", "html", "markdown"),
        default="text", help="output format (default text)",
    )
    label.add_argument("--output", help="write to this file instead of stdout")
    label.add_argument(
        "--stream", action="store_true",
        help="print each widget to stderr as it finishes building "
        "(cheapest first, Monte-Carlo stability last) before the "
        "final label; the label itself is unchanged",
    )

    mitigate = commands.add_parser(
        "mitigate",
        help="suggest modified scoring functions that restore fairness (§4)",
    )
    _add_data_arguments(mitigate)
    _add_design_arguments(mitigate)
    mitigate.add_argument(
        "--protected", required=True, metavar="CATEGORY",
        help="the protected feature (value of the first --sensitive attribute)",
    )
    mitigate.add_argument(
        "--suggestions", type=int, default=3, help="how many recipes to propose"
    )

    batch = commands.add_parser(
        "batch",
        help="label many datasets/designs in one run (the engine's batch path)",
    )
    batch.add_argument(
        "--spec", required=True,
        help='JSON file: {"jobs": [{"dataset"|"csv": ..., "design": {...}}, ...]}',
    )
    batch.add_argument(
        "--output-dir", help="write each finished label to DIR/<job_id>.json"
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="job-level concurrency (default: CPU count)",
    )
    batch.add_argument(
        "--no-cache", action="store_true",
        help="bypass the label cache (every job builds cold)",
    )
    batch.add_argument(
        "--stats", action="store_true",
        help="also print the engine's cache/executor statistics",
    )
    batch.add_argument(
        "--trial-backend",
        choices=("serial", "thread", "process", "vectorized", "remote"),
        default=None,
        help="Monte-Carlo trial execution backend (default: vectorized — "
        "all trials batched into array kernels; thread/process "
        "self-disable on single-CPU hosts; 'remote' shards trials across "
        "worker daemons, see --workers-from)",
    )
    batch.add_argument(
        "--workers-from", metavar="env|FILE", default=None,
        help="with --trial-backend remote: worker addresses from the "
        "REPRO_TRIAL_WORKERS environment variable ('env') or from a file "
        "of host:port lines",
    )
    batch.add_argument(
        "--registry", metavar="URL", default=None,
        help="with --trial-backend remote: discover workers from this "
        "registry service (see `ranking-facts registry`); workers may "
        "join and leave mid-run — composes with --workers-from "
        "(default: the REPRO_TRIAL_REGISTRY environment variable)",
    )

    serve = commands.add_parser("serve", help="start the demo web server")
    _add_data_arguments(serve)
    _add_design_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000)
    serve.add_argument(
        "--trial-backend",
        choices=("serial", "thread", "process", "vectorized", "remote"),
        default=None,
        help="Monte-Carlo trial execution backend (default: the "
        "REPRO_TRIAL_BACKEND environment variable, then vectorized; "
        "'remote' shards trials across worker daemons, see --workers-from)",
    )
    serve.add_argument(
        "--workers-from", metavar="env|FILE", default=None,
        help="with --trial-backend remote: worker addresses from the "
        "REPRO_TRIAL_WORKERS environment variable ('env') or from a file "
        "of host:port lines",
    )
    serve.add_argument(
        "--registry", metavar="URL", default=None,
        help="with --trial-backend remote: discover workers from this "
        "registry service (see `ranking-facts registry`); workers may "
        "join and leave mid-run — composes with --workers-from "
        "(default: the REPRO_TRIAL_REGISTRY environment variable)",
    )
    serve.add_argument(
        "--session-ttl", type=float, default=None, metavar="SECONDS",
        help="expire sessions idle longer than this many seconds "
        "(default: never; the server's default session is exempt)",
    )
    serve.add_argument(
        "--allow-local-paths", metavar="DIR", default=None,
        help='let POST /jobs read server-side "csv" paths that resolve '
        "inside DIR (off by default: a remote client could read any "
        "file on this host; symlinks escaping DIR are rejected)",
    )
    serve.add_argument(
        "--store", metavar="PATH", default=None,
        help="durable label store (SQLite, WAL): labels survive restarts "
        "and the /labels archive routes open up (default: the "
        "REPRO_LABEL_STORE environment variable, else no store)",
    )
    serve.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="in-memory label cache budget in (estimated pickled) bytes "
        "(default: REPRO_CACHE_MAX_BYTES, else unbounded)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=None, metavar="SECONDS",
        help="in-memory label time-to-live in seconds "
        "(default: REPRO_CACHE_TTL, else entries never expire)",
    )
    serve.add_argument(
        "--max-streams", type=int, default=32, metavar="N",
        help="maximum concurrently open SSE streams (label.stream / "
        "POST /jobs?stream=1); requests past the cap get 503 "
        "(default 32)",
    )
    serve.add_argument(
        "--metrics-exemplars", action="store_true",
        help="render /metrics as OpenMetrics with per-bucket trace-id "
        "exemplars (default: the REPRO_METRICS_EXEMPLARS environment "
        "variable, else plain Prometheus text — byte-identical to "
        "previous releases)",
    )
    serve.add_argument(
        "--trace-sample-rate", type=int, default=None, metavar="N",
        help="archive 1 in N sampled traces (errors and slow traces are "
        "always kept; default: REPRO_TRACE_SAMPLE_RATE, else 1 = all); "
        "needs --store",
    )
    serve.add_argument(
        "--trace-slow-threshold", type=float, default=None, metavar="SECONDS",
        help="traces slower than this are always archived "
        "(default: REPRO_TRACE_SLOW_THRESHOLD, else 1.0)",
    )
    serve.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit structured JSON logs on stderr at this level (debug, "
        "info, ...), each line tagged with the request's trace id "
        "(default: the REPRO_LOG_LEVEL environment variable, else quiet)",
    )
    serve.add_argument(
        "--profile", action="store_true", default=None,
        help="keep a low-rate continuous sampling profiler running; slow "
        "archived traces get a linked profile window and /debug/profile "
        "serves on-demand captures (default: the REPRO_PROFILE "
        "environment variable)",
    )

    stats = commands.add_parser(
        "stats",
        help="engine/telemetry snapshot from a running server's "
        "/engine/stats endpoint",
    )
    stats.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="base URL of the running server (default http://127.0.0.1:8000)",
    )
    stats.add_argument(
        "--watch", action="store_true",
        help="refresh the snapshot continuously until Ctrl-C",
    )
    stats.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period with --watch (default 2s)",
    )
    stats.add_argument(
        "--raw", action="store_true",
        help="print the raw /engine/stats JSON instead of the summary view",
    )

    store = commands.add_parser(
        "store",
        help="inspect and maintain a durable label store (see serve --store)",
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    def _store_path_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--path", default=None, metavar="FILE",
            help="the store file (default: the REPRO_LABEL_STORE "
            "environment variable)",
        )

    store_ls = store_commands.add_parser(
        "ls", help="list stored labels, newest first"
    )
    _store_path_argument(store_ls)
    store_ls.add_argument(
        "--limit", type=int, default=None, help="show at most this many rows"
    )

    store_show = store_commands.add_parser(
        "show", help="one stored label: provenance plus the label itself"
    )
    _store_path_argument(store_show)
    store_show.add_argument(
        "fingerprint", help="the label's fingerprint (any unambiguous prefix)"
    )
    store_show.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="label rendering (default text)",
    )

    store_gc = store_commands.add_parser(
        "gc", help="trim the store: expired labels first, then LRU past a budget"
    )
    _store_path_argument(store_gc)
    store_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="evict least-recently-accessed labels until the payload "
        "total fits this budget",
    )
    store_gc.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="drop labels created longer than this many seconds ago",
    )

    store_diff = store_commands.add_parser(
        "diff", help="drift report between two stored labels of one dataset"
    )
    _store_path_argument(store_diff)
    store_diff.add_argument("before", help="fingerprint (prefix) of the older label")
    store_diff.add_argument("after", help="fingerprint (prefix) of the newer label")

    trace = commands.add_parser(
        "trace",
        help="inspect the durable trace archive (request waterfalls)",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_source_arguments(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group()
        source.add_argument(
            "--url", default=None, metavar="URL",
            help="read traces from a running server's /traces routes",
        )
        source.add_argument(
            "--path", default=None, metavar="FILE",
            help="read traces straight off a store file (default: the "
            "REPRO_LABEL_STORE environment variable)",
        )

    trace_ls = trace_commands.add_parser(
        "ls", help="list archived traces, newest first"
    )
    _trace_source_arguments(trace_ls)
    trace_ls.add_argument(
        "--limit", type=int, default=20, help="show at most this many rows"
    )

    trace_show = trace_commands.add_parser(
        "show", help="one trace as an ASCII request waterfall"
    )
    _trace_source_arguments(trace_show)
    trace_show.add_argument(
        "trace_id", help="the trace id (any unambiguous prefix)"
    )
    trace_show.add_argument(
        "--raw", action="store_true",
        help="print the raw span JSON instead of the waterfall",
    )

    profile = commands.add_parser(
        "profile",
        help="capture sampling-profiler windows from a running server "
        "and its trial workers (flame summaries, collapsed stacks)",
    )
    profile.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="base URL of the running server (default http://127.0.0.1:8000)",
    )
    profile.add_argument(
        "--worker", action="append", default=[], metavar="HOST:PORT",
        help="also profile this trial worker daemon; repeatable",
    )
    profile.add_argument(
        "--fleet", action="store_true",
        help="also profile every live worker: from the registry "
        "(--registry / REPRO_TRIAL_REGISTRY) when given, else from the "
        "server's own cluster view (/engine/stats)",
    )
    profile.add_argument(
        "--registry", metavar="URL", default=None,
        help="with --fleet: discover workers from this registry service "
        "(default: the REPRO_TRIAL_REGISTRY environment variable, else "
        "the server's cluster view)",
    )
    profile.add_argument(
        "--seconds", type=float, default=2.0, metavar="N",
        help="length of each capture window (default 2s; capped server-side)",
    )
    profile.add_argument(
        "--hz", type=float, default=None, metavar="HZ",
        help="sampling rate (default: the profiler's window rate)",
    )
    profile.add_argument(
        "--format", choices=("summary", "collapsed", "json"),
        default="summary",
        help="summary: ASCII flame summaries (default); collapsed: "
        "folded stacks for flamegraph tools, one section per target; "
        "json: the raw report payloads",
    )

    worker = commands.add_parser(
        "worker",
        help="run a Monte-Carlo trial worker daemon (the remote backend's "
        "executing end; see repro.cluster)",
    )
    # one source of truth with `python -m repro.cluster.worker`
    from repro.cluster.worker import add_worker_arguments

    add_worker_arguments(worker)

    registry = commands.add_parser(
        "registry",
        help="run the worker registry daemon (workers --register with "
        "it; coordinators discover the live fleet from it)",
    )
    # one source of truth with `python -m repro.cluster.registry`
    from repro.cluster.registry import add_registry_arguments

    add_registry_arguments(registry)

    fleet = commands.add_parser(
        "fleet",
        help="operate on a running fleet (registry + workers + coordinators)",
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_commands.add_parser(
        "status",
        help="membership from the registry plus, with --url, a serving "
        "coordinator's breaker/budget state",
    )
    fleet_status.add_argument(
        "--registry", metavar="URL", default=None,
        help="the registry service to ask for live workers (default: "
        "the REPRO_TRIAL_REGISTRY environment variable)",
    )
    fleet_status.add_argument(
        "--url", metavar="URL", default=None,
        help="also show this running server's coordinator view "
        "(per-worker breaker states, retry budget) from /engine/stats",
    )
    fleet_status.add_argument(
        "--raw", action="store_true",
        help="print the raw JSON instead of the summary view",
    )

    return parser


def _resolve_trial_backend_arg(args: argparse.Namespace):
    """The ``--trial-backend``/``--workers-from``/``--registry`` trio
    as a service argument.

    Returns a backend *name* (or ``None``) in the common case; for
    ``remote`` with an explicit ``--workers-from`` or ``--registry``,
    returns a pre-built coordinator so the worker sources travel with
    it.  A static list and a registry compose: the list seeds the
    fleet, the registry grows and shrinks it.
    """
    name = getattr(args, "trial_backend", None)
    source = getattr(args, "workers_from", None)
    registry_url = getattr(args, "registry", None)
    if source is None and registry_url is None:
        return name
    if name != "remote":
        flag = "--workers-from" if source is not None else "--registry"
        raise RankingFactsError(
            f"{flag} only applies with --trial-backend remote"
        )
    from repro.cluster.coordinator import (
        RemoteTrialBackend,
        workers_from_env,
        workers_from_file,
    )

    if source is None:
        addresses: tuple[str, ...] = ()
    elif source == "env":
        addresses = workers_from_env()
        if not addresses:
            raise RankingFactsError(
                "--workers-from env: REPRO_TRIAL_WORKERS is empty or unset; "
                "expected comma-separated host:port addresses"
            )
    else:
        addresses = workers_from_file(source)
    return RemoteTrialBackend(addresses, registry_url=registry_url)


def _run_datasets(_: argparse.Namespace) -> str:
    lines = ["built-in datasets:"]
    lines += [f"  {name}" for name in DemoSession.available_datasets()]
    return "\n".join(lines)


def _run_inspect(args: argparse.Namespace) -> str:
    session = DemoSession()
    _load(session, args)
    lines = [f"dataset: {session.dataset_name()}"]
    for entry in session.attribute_overview():
        if entry["kind"] == "numeric":
            lines.append(
                f"  {entry['name']:<20} numeric      "
                f"min {entry['min']:g}  median {entry['median']:g}  max {entry['max']:g}"
                + (f"  ({entry['missing']} missing)" if entry["missing"] else "")
            )
        else:
            categories = ", ".join(entry["categories"])
            lines.append(
                f"  {entry['name']:<20} categorical  "
                f"{entry['num_categories']} categories: {categories}"
            )
    for attribute in args.histogram:
        lines.append("")
        lines.append(session.attribute_histogram_ascii(attribute, bins=args.bins))
    return "\n".join(lines)


def _run_preview(args: argparse.Namespace) -> str:
    session = DemoSession()
    _load(session, args)
    _design(session, args)
    ranking = session.preview(args.rows)
    lines = [f"{'rank':>4}  {'score':>10}  item"]
    for item in ranking:
        lines.append(f"{item.rank:>4}  {item.score:>10.4f}  {item.item_id}")
    return "\n".join(lines)


def _stream_label_to_stderr(session: DemoSession) -> None:
    """Consume a label event stream, narrating widgets on stderr.

    Uses the same event protocol as the server's SSE endpoint, so the
    CLI exercises (and demonstrates) incremental delivery: each widget
    prints the moment it finishes building, with the Monte-Carlo-heavy
    stability detail last.  The built label lands in the service cache;
    the caller re-requests it through the session afterwards (a cache
    hit) so rendering works on the real label object.
    """
    import sys

    table, design, dataset_name = session.label_inputs()
    events = session.service.stream_label(table, design, dataset_name)
    for event in events.events(timeout=0.5):
        if event is None:
            continue  # idle tick; keep waiting
        if event.kind == "widget":
            if event.streamed and event.seconds is not None:
                detail = f"built in {event.seconds:.3f}s"
            else:
                detail = "cached"  # replayed from a finished label
            print(
                f"  widget {event.name:<12} {detail}",
                file=sys.stderr, flush=True,
            )
        elif event.kind == "error":
            raise RankingFactsError(str(event.payload.get("error")))
    if events.aborted:
        raise RankingFactsError(f"label stream aborted: {events.abort_reason}")


def _run_label(args: argparse.Namespace) -> str:
    session = DemoSession()
    _load(session, args)
    _design(session, args)
    if args.stream:
        _stream_label_to_stderr(session)
    facts = session.generate_label()
    if args.format == "json":
        payload = render_json(facts.label)
    elif args.format == "html":
        payload = render_html(facts.label)
    elif args.format == "markdown":
        payload = render_markdown(facts.label, detailed=True)
    elif args.format == "detailed":
        payload = render_text(facts.label, detailed=True)
    else:
        payload = render_text(facts.label)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        return f"wrote {args.format} label to {args.output}"
    return payload


def _run_mitigate(args: argparse.Namespace) -> str:
    from repro.mitigation import suggest_fair_weights
    from repro.preprocess.pipeline import NormalizationPlan, TablePreprocessor
    from repro.ranking.scoring import LinearScoringFunction

    session = DemoSession()
    _load(session, args)
    _design(session, args)
    if not args.sensitive:
        raise RankingFactsError("mitigate needs at least one --sensitive attribute")
    facts = session.generate_label()

    weights = _parse_weights(args.weight)
    scorer = LinearScoringFunction(weights)
    # search on the same preprocessed table the label ranked
    suggestions = suggest_fair_weights(
        facts.scored_table,
        scorer,
        sensitive_attribute=args.sensitive[0],
        protected_category=args.protected,
        k=args.top_k,
        alpha=args.alpha,
        id_column=args.id_column,
        max_suggestions=args.suggestions,
    )
    if not suggestions:
        return (
            "no fair recipe found in the searched neighbourhood; "
            "consider post-processing with the FA*IR re-ranker instead"
        )
    lines = [
        f"recipes making {args.sensitive[0]}={args.protected} pass FA*IR "
        f"at k={args.top_k}, alpha={args.alpha} (smallest change first):"
    ]
    for i, suggestion in enumerate(suggestions, start=1):
        recipe = ", ".join(
            f"{attr}={weight:.3f}" for attr, weight in suggestion.weights.items()
        )
        lines.append(
            f"  {i}. {recipe}   (change {suggestion.distance:.2f}, "
            f"keeps {suggestion.top_k_overlap:.0%} of the original top-{args.top_k})"
        )
    return "\n".join(lines)


def _run_batch(args: argparse.Namespace) -> str:
    import json
    from pathlib import Path

    from repro.engine.jobs import JobStatus, LabelJob
    from repro.engine.service import LabelService

    spec_path = Path(args.spec)
    if not spec_path.is_file():
        raise RankingFactsError(f"batch spec not found: {args.spec}")
    try:
        spec = json.loads(spec_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise RankingFactsError(f"batch spec is not valid JSON: {exc}") from exc
    jobs_spec = spec.get("jobs") if isinstance(spec, dict) else None
    if not isinstance(jobs_spec, list) or not jobs_spec:
        raise RankingFactsError('batch spec needs a non-empty "jobs" array')
    jobs = [
        LabelJob.from_mapping(entry, job_id=f"job-{index}")
        for index, entry in enumerate(jobs_spec)
    ]

    output_dir = Path(args.output_dir) if args.output_dir else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)

    lines = [f"batch: {len(jobs)} job(s) from {spec_path.name}"]
    failures = 0
    with LabelService(
        max_workers=args.workers,
        use_cache=not args.no_cache,
        trial_backend=_resolve_trial_backend_arg(args),
    ) as service:
        for result in service.run_batch(jobs):
            if result.status is JobStatus.DONE:
                source = "cache" if result.cached else "built"
                line = (
                    f"  {result.job_id:<10} done    {result.dataset_name:<20} "
                    f"{source:<6} {result.seconds * 1000:8.1f} ms"
                )
                if output_dir is not None:
                    target = output_dir / f"{result.job_id}.json"
                    target.write_text(
                        render_json(result.facts.label) + "\n", encoding="utf-8"
                    )
                    line += f"  -> {target}"
                lines.append(line)
            else:
                failures += 1
                lines.append(
                    f"  {result.job_id:<10} FAILED  {result.dataset_name:<20} "
                    f"{result.error}"
                )
        if args.stats:
            stats = service.stats()
            cache = stats["cache"]
            executor = stats["executor"]
            lines.append(
                f"engine: {stats['service']['builds']} build(s) for "
                f"{stats['service']['requests']} request(s); cache "
                f"{cache['hits']} hit(s) / {cache['misses']} miss(es); "
                f"trials on the {executor['trial_backend_effective']} backend"
            )
    lines.append(
        f"{len(jobs) - failures}/{len(jobs)} job(s) succeeded"
        + (f", {failures} failed" if failures else "")
    )
    if failures:
        raise RankingFactsError("\n".join(lines[1:]))
    return "\n".join(lines)


def _run_serve(args: argparse.Namespace) -> str:
    # imported here so `label`/`preview` work even if sockets are restricted
    import os

    from repro.app.server import resolve_service_env, serve_forever
    from repro.engine.service import LabelService

    backend = (
        _resolve_trial_backend_arg(args)
        or os.environ.get("REPRO_TRIAL_BACKEND")
        or None
    )
    store_path, cache_max_bytes, cache_ttl = resolve_service_env(
        args.store, args.cache_max_bytes, args.cache_ttl
    )
    session = DemoSession(service=LabelService(
        trial_backend=backend,
        store_path=store_path,
        cache_max_bytes=cache_max_bytes,
        cache_ttl=cache_ttl,
    ))
    _load(session, args)
    _design(session, args)
    session.generate_label()
    serve_forever(
        session, host=args.host, port=args.port,
        session_ttl=args.session_ttl,
        allow_local_paths=args.allow_local_paths,
        log_level=args.log_level,
        max_streams=args.max_streams,
        # None defers to REPRO_METRICS_EXEMPLARS; the flag forces on
        metrics_exemplars=True if args.metrics_exemplars else None,
        trace_sample_rate=args.trace_sample_rate,
        trace_slow_threshold=args.trace_slow_threshold,
        # None defers to REPRO_PROFILE; the flag forces on
        profile=True if args.profile else None,
    )
    return ""  # serve_forever blocks; reached only on shutdown


def _format_slo_summary(slo: list) -> str:
    """One line of per-objective burn, shared by stats and fleet views."""
    parts = []
    for entry in slo:
        burn = entry.get("burn")
        burn_text = "-" if burn is None else f"{float(burn):.2f}"
        parts.append(
            f"{entry.get('name', '?')} {entry.get('state', '?')} "
            f"(burn {burn_text})"
        )
    return "; ".join(parts)


def _format_stats(stats: dict, previous: dict | None = None) -> str:
    """The ``ranking-facts stats`` summary view of one ``/engine/stats``
    snapshot.  Pure (dict in, text out) so tests need no server.

    ``previous`` — the prior snapshot in a ``--watch`` loop — turns the
    resources pane's CPU figure into a rate over the refresh interval
    (a lifetime average on the first frame).
    """
    lines: list[str] = []
    service = stats.get("service") or {}
    lines.append(
        f"service:   {service.get('requests', 0)} request(s), "
        f"{service.get('builds', 0)} build(s), cache "
        + ("on" if service.get("cache_enabled", True) else "off")
    )
    cache = stats.get("cache") or {}
    if cache:
        lines.append(
            f"cache:     {cache.get('hits', 0)} hit(s) / "
            f"{cache.get('misses', 0)} miss(es), "
            f"{cache.get('size', 0)} label(s) resident"
        )
    executor = stats.get("executor") or {}
    if executor:
        lines.append(
            f"executor:  {executor.get('jobs_submitted', 0)} job(s) in "
            f"{executor.get('batches_submitted', 0)} batch(es); trials on "
            f"{executor.get('trial_backend_effective', '?')}"
        )
        cluster = executor.get("trial_cluster")
        if isinstance(cluster, dict):
            lines.append(
                f"cluster:   {cluster.get('workers_alive', 0)}/"
                f"{cluster.get('workers_configured', 0)} worker(s) alive; "
                f"{cluster.get('chunks_remote', 0)} chunk(s) remote, "
                f"{cluster.get('chunks_failed_over', 0)} failed over, "
                f"{cluster.get('chunks_recovered_locally', 0)} recovered locally"
            )
            if cluster.get("breakers_open") or cluster.get("retries_spent"):
                lines.append(
                    f"           {cluster.get('breakers_open', 0)} breaker(s) "
                    f"open, {cluster.get('retries_spent', 0)} retry(s) spent, "
                    f"{cluster.get('budget_exhausted_runs', 0)} run(s) "
                    f"budget-exhausted"
                )
            workers_rows = cluster.get("workers")
            if isinstance(workers_rows, list) and workers_rows:
                states: dict[str, int] = {}
                for row in workers_rows:
                    state = str((row.get("breaker") or {}).get("state", "?"))
                    states[state] = states.get(state, 0) + 1
                lines.append(
                    "           breakers: "
                    + ", ".join(f"{n} {s}" for s, n in sorted(states.items()))
                )
            membership = cluster.get("membership")
            if isinstance(membership, dict):
                lines.append(
                    f"           membership via "
                    f"{membership.get('registry', '?')}: "
                    f"{membership.get('workers_joined', 0)} joined, "
                    f"{membership.get('workers_left', 0)} left"
                )
    tiers = stats.get("tiers")
    if isinstance(tiers, dict):
        lines.append(
            f"tiers:     l1 {tiers.get('l1_hits', 0)} hit(s), "
            f"l2 {tiers.get('l2_hits', 0)} hit(s), "
            f"{tiers.get('builds', 0)} build(s), "
            f"{tiers.get('writes', 0)} write(s)"
        )
    store = stats.get("store")
    if isinstance(store, dict):
        lines.append(
            f"store:     {store.get('labels', 0)} label(s), "
            f"{store.get('bytes', 0)} byte(s) at {store.get('path', '?')}"
        )
    resources = stats.get("resources")
    if isinstance(resources, dict):
        cpu = float(resources.get("cpu_seconds") or 0.0)
        uptime = float(resources.get("uptime_seconds") or 0.0)
        prior = (previous or {}).get("resources")
        if isinstance(prior, dict):
            interval = uptime - float(prior.get("uptime_seconds") or 0.0)
            burned = cpu - float(prior.get("cpu_seconds") or 0.0)
        else:  # first frame: lifetime average
            interval, burned = uptime, cpu
        cpu_pct = 100.0 * burned / interval if interval > 0 else 0.0
        parts = []
        rss = resources.get("rss_bytes")
        if isinstance(rss, (int, float)):
            rss_text = f"rss {rss / 1048576:.1f} MB"
            peak = resources.get("peak_rss_bytes")
            if isinstance(peak, (int, float)):
                rss_text += f" (peak {peak / 1048576:.1f})"
            parts.append(rss_text)
        parts.append(f"cpu {cpu:.1f}s ({cpu_pct:.1f}%)")
        parts.append(f"{resources.get('threads', 0)} thread(s)")
        if resources.get("open_fds") is not None:
            parts.append(f"{resources['open_fds']} fd(s)")
        gc_block = resources.get("gc") or {}
        parts.append(
            f"gc {gc_block.get('pauses', 0)} pause(s) / "
            f"{float(gc_block.get('pause_seconds') or 0.0) * 1000:.1f} ms"
        )
        lines.append("resources: " + ", ".join(parts))
    profiles = stats.get("profiles")
    if isinstance(profiles, dict):
        profiler = profiles.get("profiler") or {}
        continuous = profiler.get("continuous")
        if isinstance(continuous, dict):
            state = (
                f"continuous at {float(continuous.get('hz') or 0.0):g} hz, "
                f"{continuous.get('samples', 0)} sample(s) buffered"
            )
        else:
            state = "on demand only"
        lines.append(
            f"profiler:  {state}; {profiler.get('windows', 0)} window(s), "
            f"{profiler.get('samples_total', 0)} sample(s) ever"
        )
    telemetry = stats.get("telemetry")
    if isinstance(telemetry, dict):
        metrics = telemetry.get("metrics") or {}
        requests = (metrics.get("repro_http_requests_total") or {}).get(
            "series"
        ) or []
        served = sum(int(series.get("value", 0)) for series in requests)
        lines.append(
            f"telemetry: {served} HTTP request(s) across "
            f"{len(requests)} endpoint series, "
            f"{len(metrics)} metric famil"
            + ("y" if len(metrics) == 1 else "ies")
        )
        streams_active = sum(
            int(series.get("value", 0))
            for series in (metrics.get("repro_streams_active") or {}).get(
                "series"
            )
            or []
        )
        stream_series = (metrics.get("repro_streams_total") or {}).get(
            "series"
        ) or []
        if streams_active or stream_series:
            outcomes = ", ".join(
                f"{int(series.get('value', 0))} "
                f"{(series.get('tags') or {}).get('outcome', '?')}"
                for series in stream_series
            )
            lines.append(
                f"streams:   {streams_active} active"
                + (f"; {outcomes}" if outcomes else "")
            )
        registry_series = (metrics.get("repro_registry_workers") or {}).get(
            "series"
        ) or []
        if registry_series:
            leases = sum(
                int(series.get("value", 0)) for series in registry_series
            )
            lines.append(f"registry:  {leases} live worker lease(s)")
        buffer = telemetry.get("trace_buffer")
        if isinstance(buffer, dict):
            lines.append(
                f"traces:    buffer {buffer.get('buffered', 0)}/"
                f"{buffer.get('capacity', 0)}, "
                f"{buffer.get('completed', 0)} completed, "
                f"{buffer.get('dropped_spans', 0)} span(s) dropped"
            )
        collector = telemetry.get("trace_collector")
        if isinstance(collector, dict):
            lines.append(
                f"archive:   {collector.get('archived', 0)} trace(s) "
                f"archived, {collector.get('sampled_out', 0)} sampled out, "
                f"{collector.get('pending', 0)} pending"
            )
        for trace in (telemetry.get("recent_traces") or [])[:5]:
            duration = trace.get("duration")
            millis = "?" if duration is None else f"{duration * 1000:.1f}"
            lines.append(
                f"  trace {str(trace.get('trace_id', ''))[:12]}  "
                f"{trace.get('name', '?'):<18} {trace.get('status', '?'):<5} "
                f"{millis:>8} ms"
            )
    slo = stats.get("slo")
    if isinstance(slo, list) and slo:
        lines.append("slo:       " + _format_slo_summary(slo))
    return "\n".join(lines)


def _run_stats(args: argparse.Namespace) -> str:
    import json
    import time
    import urllib.request

    url = args.url.rstrip("/") + "/engine/stats"

    def fetch() -> dict:
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                payload = json.load(response)
        except (OSError, ValueError) as exc:
            raise RankingFactsError(f"cannot fetch {url}: {exc}") from exc
        if not isinstance(payload, dict):
            raise RankingFactsError(f"{url} did not return a JSON object")
        return payload

    def render(payload: dict, previous: dict | None = None) -> str:
        if args.raw:
            return json.dumps(payload, indent=2)
        return _format_stats(payload, previous)

    if not args.watch:
        return render(fetch())
    previous: dict | None = None
    try:
        while True:
            payload = fetch()
            # clear + home, like `watch(1)`, so the view updates in place
            print("\x1b[2J\x1b[H" + f"{args.url}  (Ctrl-C to stop)")
            # the prior frame turns the CPU figure into a live rate
            print(render(payload, previous), flush=True)
            previous = payload
            time.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return ""


def _open_store(args: argparse.Namespace):
    import os

    from repro.store.store import LabelStore

    path = args.path or os.environ.get("REPRO_LABEL_STORE") or None
    if not path:
        raise RankingFactsError(
            "no store file given; pass --path FILE or set REPRO_LABEL_STORE"
        )
    if not os.path.exists(path):
        # opening would create an empty store, which for every read-side
        # command just means confusing "no such label" errors later
        raise RankingFactsError(f"label store not found: {path}")
    return LabelStore(path)


def _format_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _run_store(args: argparse.Namespace) -> str:
    import json
    import time

    if args.store_command == "ls":
        with _open_store(args) as store:
            records = store.records(limit=args.limit)
            stats = store.stats()
        if not records:
            return f"store {stats['path']}: empty"
        now = time.time()
        lines = [
            f"store {stats['path']}: {stats['labels']} label(s), "
            f"{stats['bytes']} payload byte(s)",
            f"  {'fingerprint':<16} {'dataset':<24} {'size':>9} "
            f"{'age':>6} {'hits':>5}  engine",
        ]
        for record in records:
            lines.append(
                f"  {record['fingerprint'][:16]:<16} "
                f"{(record['dataset_name'] or '-'):<24} "
                f"{record['size_bytes']:>9} "
                f"{_format_age(now - record['created_at']):>6} "
                f"{record['hits']:>5}  {record['engine_version'] or '-'}"
            )
        return "\n".join(lines)

    if args.store_command == "show":
        with _open_store(args) as store:
            fingerprint = store.resolve_prefix(args.fingerprint)
            facts = store.get(fingerprint)
            provenance = store.provenance(fingerprint)
        if facts is None:
            raise RankingFactsError(f"no stored label {args.fingerprint!r}")
        if args.format == "json":
            return json.dumps({
                "fingerprint": fingerprint,
                "label": json.loads(render_json(facts.label)),
                "provenance": (
                    None if provenance is None else provenance.as_dict()
                ),
            }, indent=2)
        lines = [f"fingerprint: {fingerprint}"]
        if provenance is not None:
            lines += [
                f"dataset:     {provenance.dataset_name}",
                f"built:       {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(provenance.created_at))} "
                f"by engine {provenance.engine_version} "
                f"in {provenance.build_seconds * 1000:.1f} ms",
                f"trials:      {provenance.monte_carlo_trials} x "
                f"{provenance.epsilon_count} epsilon(s) on "
                f"{provenance.trial_backend_effective} "
                f"(requested {provenance.trial_backend_requested})",
                f"table hash:  {provenance.table_fingerprint[:16]}",
                f"design hash: {provenance.design_fingerprint[:16]}",
            ]
        lines += ["", render_text(facts.label)]
        return "\n".join(lines)

    if args.store_command == "gc":
        if args.max_bytes is None and args.ttl is None:
            raise RankingFactsError("store gc needs --max-bytes and/or --ttl")
        with _open_store(args) as store:
            removed = store.gc(max_bytes=args.max_bytes, ttl=args.ttl)
            stats = store.stats()
        return (
            f"gc: dropped {removed['expired']} expired and evicted "
            f"{removed['evicted']} label(s); {stats['labels']} label(s), "
            f"{stats['bytes']} byte(s) remain"
        )

    assert args.store_command == "diff"
    from repro.label.compare import diff_labels

    with _open_store(args) as store:
        fp_before = store.resolve_prefix(args.before)
        fp_after = store.resolve_prefix(args.after)
        before = store.get(fp_before)
        after = store.get(fp_after)
    if before is None or after is None:
        raise RankingFactsError("a stored label expired while diffing")
    drift = diff_labels(before.label, after.label)
    lines = [f"diff {fp_before[:16]} -> {fp_after[:16]}:"]
    changes = drift.summary_lines()
    if changes:
        lines += [f"  {line}" for line in changes]
    else:
        lines.append("  no differences")
    return "\n".join(lines)


def _format_trace_listing(source: str, records: list[dict]) -> str:
    import time

    if not records:
        return f"trace archive {source}: empty"
    now = time.time()
    lines = [
        f"trace archive {source}: {len(records)} trace(s)",
        f"  {'trace id':<16} {'root':<22} {'status':<7} {'spans':>5} "
        f"{'duration':>10} {'age':>6}  kept",
    ]
    for record in records:
        lines.append(
            f"  {str(record.get('trace_id', '?'))[:16]:<16} "
            f"{str(record.get('root_name', '?'))[:22]:<22} "
            f"{str(record.get('status', '?')):<7} "
            f"{record.get('span_count', 0):>5} "
            f"{float(record.get('duration') or 0.0) * 1000:>8.1f}ms "
            f"{_format_age(now - float(record.get('created_at') or now)):>6}  "
            f"{record.get('sampled', '?')}"
        )
    return "\n".join(lines)


def _format_waterfall(
    summary: dict,
    spans: list[dict],
    tree: list[dict],
    profile: dict | None = None,
) -> str:
    """One archived trace as an ASCII request waterfall.

    Pure (dicts in, text out) so tests need neither a server nor a
    store.  Each span prints tree-indented with its offset from the
    trace start, duration, worker, and outcome — failover attempts show
    up as sibling ``cluster.chunk`` rows tagged with their failure
    class — plus a proportional timeline bar.

    ``profile`` — the report dict of a linked sampling-profiler window
    (slow traces archived by a ``--profile`` server carry one) — adds a
    "top frames by span" section under the waterfall, answering *what
    code* the slow spans were actually running.
    """
    start = min(
        (float(s.get("started_at") or 0.0) for s in spans), default=0.0
    )
    end = max(
        (
            float(s.get("started_at") or 0.0) + float(s.get("duration") or 0.0)
            for s in spans
        ),
        default=start,
    )
    total = max(end - start, 0.0)
    bar_width = 24
    lines = [
        f"trace {summary.get('trace_id', '?')}",
        f"root {summary.get('root_name', '?')}  "
        f"status {summary.get('status', '?')}  "
        f"{float(summary.get('duration') or 0.0) * 1000:.1f} ms  "
        f"{summary.get('span_count', len(spans))} span(s)  "
        f"kept: {summary.get('sampled', '?')}",
        "",
        f"  {'span':<40} {'offset':>10} {'duration':>11}  "
        f"{'worker':<21} {'outcome':<28} timeline",
    ]

    def bar(offset: float, duration: float) -> str:
        if total <= 0:
            return "#" * bar_width
        lead = min(int(round(bar_width * offset / total)), bar_width - 1)
        fill = max(1, int(round(bar_width * duration / total)))
        return ("." * lead + "#" * fill)[:bar_width].ljust(bar_width, ".")

    def walk(nodes: list[dict], depth: int) -> None:
        for node in nodes:
            offset = float(node.get("started_at") or 0.0) - start
            duration = float(node.get("duration") or 0.0)
            tags = node.get("tags") or {}
            outcome = str(tags.get("outcome") or node.get("status") or "?")
            if tags.get("failure_class"):
                outcome += f" ({tags['failure_class']})"
            name = "  " * depth + str(node.get("name", "?"))
            lines.append(
                f"  {name:<40.40} {offset * 1000:>8.1f}ms "
                f"{duration * 1000:>9.1f}ms  "
                f"{str(tags.get('worker', '-')):<21.21} {outcome:<28} "
                f"|{bar(offset, duration)}|"
            )
            walk(node.get("children") or [], depth + 1)

    walk(tree, 0)
    if profile:
        from repro.telemetry import ProfileReport

        report = ProfileReport.from_dict(profile)
        per_span = report.span_top_frames(3)
        if not report.is_empty:
            lines.append("")
            lines.append(
                f"  linked profile ({report.source}, "
                f"{report.samples} samples at {report.hz:g} hz) — "
                "top frames by span:"
            )
            if per_span:
                ranked = sorted(
                    per_span.items(),
                    key=lambda item: -report.span_samples.get(item[0], 0),
                )
                for name, frames in ranked:
                    span_count = report.span_samples.get(name, 0)
                    lines.append(f"    {name}  ({span_count} samples)")
                    for frame, count in frames:
                        share = count / span_count if span_count else 0.0
                        lines.append(f"      {share:6.1%} {count:>6}  {frame}")
            else:  # nothing ran under a span that window; show the process
                for frame, count in report.top_frames(3):
                    share = count / report.samples if report.samples else 0.0
                    lines.append(f"      {share:6.1%} {count:>6}  {frame}")
    return "\n".join(lines)


def _ambiguous_id_error(
    kind: str, prefix: str, matches: list, message: str
) -> RankingFactsError:
    """An ambiguous-prefix failure that *lists the candidates*.

    ``trace show ab`` matching several archived traces used to die with
    a bare "ambiguous" — the operator's next move (pick one) required a
    separate ``trace ls``.  Now the error itself is the listing.
    """
    lines = [message, f"matching {kind}s:"]
    lines += [f"  {match}" for match in matches]
    lines.append(f"(pass a longer prefix of the {kind} you meant)")
    return RankingFactsError("\n".join(lines))


def _run_trace(args: argparse.Namespace) -> str:
    import json
    import urllib.error
    import urllib.request

    from repro.telemetry import span_tree

    if args.url is not None:
        base = args.url.rstrip("/")

        def fetch(path: str) -> dict:
            try:
                with urllib.request.urlopen(base + path, timeout=10) as response:
                    payload = json.load(response)
            except urllib.error.HTTPError as exc:
                # a 404 body carries the reason — and, for an ambiguous
                # prefix, the candidate ids; surface them, not the code
                try:
                    body = json.load(exc)
                except ValueError:
                    body = {}
                matches = body.get("matches")
                error = str(body.get("error") or exc)
                if isinstance(matches, list) and matches:
                    raise _ambiguous_id_error(
                        "trace id", args.trace_id, matches, error
                    ) from exc
                raise RankingFactsError(error) from exc
            except (OSError, ValueError) as exc:
                raise RankingFactsError(
                    f"cannot fetch {base + path}: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise RankingFactsError(
                    f"{base + path} did not return a JSON object"
                )
            return payload

        if args.trace_command == "ls":
            payload = fetch(f"/traces?limit={args.limit}")
            return _format_trace_listing(base, payload.get("traces") or [])
        payload = fetch(f"/traces/{args.trace_id}")
        if args.raw:
            return json.dumps(payload, indent=2)
        spans = payload.get("spans") or []
        tree = payload.get("tree") or span_tree(spans)
        profile = payload.get("profile")
        return _format_waterfall(
            payload, spans, tree,
            profile=profile if isinstance(profile, dict) else None,
        )

    from repro.errors import StoreError

    with _open_store(args) as store:
        if args.trace_command == "ls":
            records = store.trace_records(limit=args.limit)
            return _format_trace_listing(store.path, records)
        try:
            trace_id = store.resolve_trace_prefix(args.trace_id)
        except StoreError as exc:
            matches = getattr(exc, "matches", None)
            if matches:
                raise _ambiguous_id_error(
                    "trace id", args.trace_id, matches, str(exc)
                ) from exc
            raise
        record = store.get_trace(trace_id)
        if record is None:  # expired between resolve and get
            raise RankingFactsError(f"no archived trace {args.trace_id!r}")
        spans = record.spans
        if args.raw:
            return json.dumps(
                {**record.summary(), "spans": spans}, indent=2
            )
        linked = store.profile_for_trace(trace_id)
        return _format_waterfall(
            record.summary(), spans, span_tree(spans),
            profile=None if linked is None else linked.report,
        )


def _run_profile(args: argparse.Namespace) -> str:
    import json
    import os
    import threading
    import urllib.request

    from repro.telemetry import ProfileReport

    # each capture blocks its handler for the whole window; give the
    # socket timeout generous headroom past it
    timeout = max(30.0, args.seconds * 2 + 10.0)

    def fetch_json(url: str) -> dict:
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                payload = json.load(response)
        except (OSError, ValueError) as exc:
            raise RankingFactsError(f"cannot fetch {url}: {exc}") from exc
        if not isinstance(payload, dict):
            raise RankingFactsError(f"{url} did not return a JSON object")
        return payload

    base = args.url.rstrip("/")
    addresses: list[str] = list(args.worker)
    if args.fleet:
        registry_url = (
            args.registry or os.environ.get("REPRO_TRIAL_REGISTRY") or None
        )
        if registry_url:
            rows = (
                fetch_json(registry_url.rstrip("/") + "/workers").get("workers")
                or []
            )
            discovered = [
                str(row.get("address")) for row in rows if row.get("address")
            ]
        else:  # no registry: the coordinator already knows its fleet
            stats = fetch_json(base + "/engine/stats")
            cluster = (stats.get("executor") or {}).get("trial_cluster") or {}
            discovered = [
                str(row.get("address"))
                for row in cluster.get("workers") or []
                if row.get("address")
            ]
        for address in discovered:
            if address not in addresses:
                addresses.append(address)

    query = f"/debug/profile?seconds={args.seconds:g}&format=json"
    if args.hz is not None:
        query += f"&hz={args.hz:g}"
    targets = [("server", base + query)]
    for address in addresses:
        worker_base = address if "://" in address else f"http://{address}"
        targets.append((address, worker_base.rstrip("/") + query))

    # sweep the fleet concurrently: the whole capture costs one
    # window's wall clock, not one per target
    results: list[dict | RankingFactsError] = [
        RankingFactsError("not captured")
    ] * len(targets)

    def capture(index: int, url: str) -> None:
        try:
            results[index] = fetch_json(url)
        except RankingFactsError as exc:
            results[index] = exc

    threads = [
        threading.Thread(target=capture, args=(i, url), daemon=True)
        for i, (_, url) in enumerate(targets)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    failures = [
        f"{name}: {result}"
        for (name, _), result in zip(targets, results)
        if isinstance(result, RankingFactsError)
    ]
    if len(failures) == len(targets):
        raise RankingFactsError(
            "no profile captured:\n  " + "\n  ".join(failures)
        )

    if args.format == "json":
        payload = {
            name: (
                {"error": str(result)}
                if isinstance(result, RankingFactsError)
                else result
            )
            for (name, _), result in zip(targets, results)
        }
        return json.dumps({"profiles": payload}, indent=2)

    sections: list[str] = []
    for (name, _), result in zip(targets, results):
        if isinstance(result, RankingFactsError):
            prefix = "# " if args.format == "collapsed" else ""
            sections.append(f"{prefix}profile {name}: error: {result}")
            continue
        report = ProfileReport.from_dict(result)
        if args.format == "collapsed":
            collapsed = report.to_collapsed().rstrip("\n")
            sections.append(
                f"# ==== {report.source or name}: {report.samples} "
                f"sample(s) over {report.duration:.1f}s at "
                f"{report.hz:g} hz ====\n"
                + (collapsed if collapsed else "# (no samples)")
            )
        else:
            sections.append(report.render())
    return "\n\n".join(sections)


def _run_worker(args: argparse.Namespace) -> str:
    # imported here so the cluster package only loads when asked for
    from repro.cluster.worker import serve_worker_forever

    serve_worker_forever(
        host=args.host, port=args.port, backend=args.backend,
        workers=args.workers, log_level=args.log_level,
        register=args.register, advertise=args.advertise,
        heartbeat_ttl=args.heartbeat_ttl, profile=args.profile,
    )
    return ""  # blocks; reached only on shutdown


def _run_registry(args: argparse.Namespace) -> str:
    # imported here so the cluster package only loads when asked for
    from repro.cluster.registry import serve_registry_forever

    serve_registry_forever(
        host=args.host, port=args.port, log_level=args.log_level
    )
    return ""  # blocks; reached only on shutdown


def _format_fleet_registry(url: str, workers: dict, stats: dict) -> list[str]:
    """The registry half of ``fleet status`` (pure: dicts in, lines out)."""
    rows = workers.get("workers") or []
    lines = [
        f"registry {url}: {len(rows)} worker(s); "
        f"{stats.get('registrations', 0)} registration(s), "
        f"{stats.get('heartbeats', 0)} heartbeat(s), "
        f"{stats.get('expirations', 0)} expiration(s), "
        f"{stats.get('deregistrations', 0)} deregistration(s)"
    ]
    if rows:
        lines.append(
            f"  {'address':<21} {'backend':<11} {'lease':>8} {'beats':>6}"
        )
    for row in rows:
        meta = row.get("meta") or {}
        lines.append(
            f"  {str(row.get('address', '?')):<21} "
            f"{str(meta.get('backend', '-')):<11} "
            f"{float(row.get('expires_in', 0.0)):>7.1f}s "
            f"{row.get('beats', 0):>6}"
        )
    return lines


def _format_fleet_cluster(url: str, cluster: dict | None) -> list[str]:
    """The coordinator half of ``fleet status`` (pure: dict in, lines out)."""
    if not isinstance(cluster, dict):
        return [f"server {url}: no remote trial cluster configured"]
    budget = cluster.get("retry_budget")
    lines = [
        f"server {url}: {cluster.get('workers_alive', 0)}/"
        f"{cluster.get('workers_configured', 0)} worker(s) alive, "
        f"{cluster.get('breakers_open', 0)} breaker(s) open; "
        f"{cluster.get('retries_spent', 0)} retry(s) spent "
        f"(budget {'auto' if budget is None else budget}), "
        f"{cluster.get('budget_exhausted_runs', 0)} run(s) budget-exhausted"
    ]
    for row in cluster.get("workers") or []:
        breaker = row.get("breaker") or {}
        state = str(breaker.get("state", "?"))
        detail = (
            f"{row.get('chunks', 0)} chunk(s), "
            f"{row.get('failures', 0)} failure(s)"
        )
        if state == "open":
            detail += f", reprobe in {float(breaker.get('retry_in', 0.0)):.1f}s"
        lines.append(
            f"  {str(row.get('address', '?')):<21} {state:<9} "
            f"({row.get('source', 'static')})  {detail}"
        )
    membership = cluster.get("membership")
    if isinstance(membership, dict):
        lines.append(
            f"  membership via {membership.get('registry', '?')}: "
            f"{membership.get('workers_joined', 0)} joined, "
            f"{membership.get('workers_left', 0)} left, "
            f"{membership.get('poll_failures', 0)} poll failure(s)"
        )
    return lines


def _run_fleet(args: argparse.Namespace) -> str:
    import json
    import os
    import urllib.request

    assert args.fleet_command == "status"
    registry_url = (
        args.registry or os.environ.get("REPRO_TRIAL_REGISTRY") or None
    )
    if registry_url is None and args.url is None:
        raise RankingFactsError(
            "fleet status needs --registry URL (or REPRO_TRIAL_REGISTRY) "
            "and/or --url SERVER"
        )

    def fetch(url: str) -> dict:
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                payload = json.load(response)
        except (OSError, ValueError) as exc:
            raise RankingFactsError(f"cannot fetch {url}: {exc}") from exc
        if not isinstance(payload, dict):
            raise RankingFactsError(f"{url} did not return a JSON object")
        return payload

    raw: dict = {}
    lines: list[str] = []
    if registry_url is not None:
        base = registry_url.rstrip("/")
        workers = fetch(base + "/workers")
        stats = fetch(base + "/stats")
        raw["registry"] = {"workers": workers, "stats": stats}
        lines += _format_fleet_registry(base, workers, stats)
    if args.url is not None:
        stats = fetch(args.url.rstrip("/") + "/engine/stats")
        raw["server"] = stats
        cluster = (stats.get("executor") or {}).get("trial_cluster")
        lines += _format_fleet_cluster(args.url, cluster)
        slo = stats.get("slo")
        if isinstance(slo, list) and slo:
            lines.append("  slo: " + _format_slo_summary(slo))
    if args.raw:
        return json.dumps(raw, indent=2)
    return "\n".join(lines)


_RUNNERS = {
    "datasets": _run_datasets,
    "inspect": _run_inspect,
    "preview": _run_preview,
    "label": _run_label,
    "mitigate": _run_mitigate,
    "batch": _run_batch,
    "serve": _run_serve,
    "stats": _run_stats,
    "store": _run_store,
    "trace": _run_trace,
    "profile": _run_profile,
    "worker": _run_worker,
    "registry": _run_registry,
    "fleet": _run_fleet,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        output = _RUNNERS[args.command](args)
    except RankingFactsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output:
        print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
