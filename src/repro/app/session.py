"""The demo workflow as a state machine.

Paper §3 describes the interaction: the user picks a dataset (or
uploads a CSV), decides "whether to work with raw data or to normalize
and standardize the attributes", chooses at least one categorical
sensitive attribute and at least one weighted numeric scoring
attribute, previews the ranking, "and will then either refine it, or go
on to generate Ranking Facts".

:class:`DemoSession` encodes those stages explicitly so every client
(CLI, HTTP server, notebooks) drives the same object and out-of-order
calls fail with :class:`~repro.errors.SessionStateError` instead of
producing half-configured labels.

Label computation goes through a
:class:`~repro.engine.service.LabelService` rather than the builder
directly: a session constructed with a shared service (the HTTP
server's registry does this) gets content-addressed caching across
*all* sessions — two users asking for the same design on the same data
cost one Monte-Carlo loop.  A session constructed bare owns a private
service, so caching still applies to its own repeated requests.

Sessions are served by ``ThreadingHTTPServer``, so every state
transition and every read of the committed design happens under one
re-entrant lock: a ``POST /design`` racing a ``GET /label`` either
sees the old design or the new one, never a half-committed mix.
"""

from __future__ import annotations

import enum
import functools
import threading
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.app.design import attribute_preview, histogram_ascii
from repro.datasets.loaders import dataset_by_name, list_datasets, load_csv_dataset
from repro.engine.jobs import LabelDesign
from repro.engine.service import LabelService
from repro.errors import SessionStateError
from repro.label.builder import RankingFacts
from repro.preprocess.pipeline import NormalizationPlan
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.tabular.summary import Histogram, histogram
from repro.tabular.table import Table

__all__ = ["SessionStage", "DemoSession"]


def _locked(method):
    """Run ``method`` under the session's re-entrant state lock.

    The design fields (weights, sensitive, k, seed, ...) are committed
    by several setters; without the lock a concurrent label build could
    read a mix of old and new fields mid-redesign.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class SessionStage(enum.Enum):
    """Where in the workflow a session currently is."""

    EMPTY = "empty"                    # nothing loaded
    DATA_LOADED = "data-loaded"        # table present
    SCORER_DESIGNED = "scorer-designed"  # scoring + sensitive chosen
    PREVIEWED = "previewed"            # ranking previewed at least once
    LABELED = "labeled"                # label generated


class DemoSession:
    """One user's pass through the Ranking Facts workflow.

    Example
    -------
    >>> session = DemoSession()
    >>> session.load_builtin("cs-departments")
    >>> session.design_scoring(
    ...     weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    ...     sensitive_attribute="DeptSizeBin",
    ...     id_column="DeptName",
    ... )
    >>> session.preview(3).size
    3
    >>> facts = session.generate_label()
    >>> facts.label.dataset_name
    'cs-departments'
    """

    def __init__(self, service: LabelService | None = None):
        self._service = service if service is not None else LabelService()
        self._lock = threading.RLock()  # guards every stage/design transition
        self._stage = SessionStage.EMPTY
        self._table: Table | None = None
        self._dataset_name = ""
        self._normalize = True
        self._weights: dict[str, float] = {}
        self._sensitive: list[str] = []
        self._diversity: list[str] = []
        self._id_column: str | None = None
        self._k = 10
        self._alpha = 0.05
        self._monte_carlo_trials = 0
        self._monte_carlo_epsilons: tuple[float, ...] = (0.05, 0.1, 0.2)
        self._seed = 20180610
        self._facts: RankingFacts | None = None
        self._last_cached = False

    @property
    def service(self) -> LabelService:
        """The label service this session computes through."""
        return self._service

    # -- stage bookkeeping -------------------------------------------------------

    @property
    def stage(self) -> SessionStage:
        """The session's current workflow stage."""
        return self._stage

    def _require_stage(self, *allowed: SessionStage) -> None:
        if self._stage not in allowed:
            names = " or ".join(s.value for s in allowed)
            raise SessionStateError(
                f"operation requires stage {names}, session is {self._stage.value}"
            )

    def _require_table(self) -> Table:
        if self._table is None:
            raise SessionStateError("no dataset loaded; call load_builtin()/load_csv()")
        return self._table

    # -- stage 1: load data --------------------------------------------------------

    @_locked
    def load_builtin(self, name: str, **kwargs) -> None:
        """Load one of the paper's demo datasets (any stage; resets)."""
        table = dataset_by_name(name, **kwargs)
        self._reset_with(table, name)

    @_locked
    def load_csv(self, path: str | Path) -> None:
        """Load a user CSV (the paper's upload option; resets)."""
        table = load_csv_dataset(path)
        self._reset_with(table, Path(path).stem)

    @_locked
    def load_table(self, table: Table, name: str = "in-memory table") -> None:
        """Adopt an already-built table (programmatic clients)."""
        table.require_rows(2)
        self._reset_with(table, name)

    def _reset_with(self, table: Table, name: str) -> None:
        self._table = table
        self._dataset_name = name
        self._weights = {}
        self._sensitive = []
        self._diversity = []
        self._id_column = None
        self._monte_carlo_trials = 0
        self._monte_carlo_epsilons = (0.05, 0.1, 0.2)
        self._seed = 20180610  # a stale seed would silently change label bytes
        self._facts = None
        self._last_cached = False
        self._stage = SessionStage.DATA_LOADED

    @staticmethod
    def available_datasets() -> tuple[str, ...]:
        """The built-in dataset names."""
        return list_datasets()

    # -- stage 2: inspect (Figure 3's preview panel) ----------------------------------

    def dataset_name(self) -> str:
        """Name of the loaded dataset."""
        self._require_table()
        return self._dataset_name

    def preview_data(self, rows: int = 5) -> list[dict[str, object]]:
        """The design view's data preview: the first ``rows`` rows."""
        return list(self._require_table().head(rows).iter_rows())

    def attribute_overview(self) -> list[dict[str, object]]:
        """Per-attribute summary for the design view's attribute panel."""
        return attribute_preview(self._require_table())

    def attribute_histogram(self, attribute: str, bins: int = 10) -> Histogram:
        """Histogram of a numeric attribute (Figure 3 shows GRE's)."""
        return histogram(self._require_table().column(attribute), bins=bins)

    def attribute_histogram_ascii(self, attribute: str, bins: int = 10) -> str:
        """Terminal rendering of :meth:`attribute_histogram`."""
        return histogram_ascii(self.attribute_histogram(attribute, bins=bins))

    # -- stage 3: design the scoring function ------------------------------------------

    @_locked
    def set_normalization(self, enabled: bool) -> None:
        """Figure 3's normalize-and-standardize checkbox."""
        self._require_table()
        self._normalize = bool(enabled)

    @_locked
    def set_monte_carlo(
        self, trials: int, epsilons: Sequence[float] = (0.05, 0.1, 0.2)
    ) -> None:
        """Enable (trials > 0) or disable (0) the Monte-Carlo stability detail."""
        self._require_table()
        if trials < 0:
            raise SessionStateError(f"trials must be >= 0, got {trials}")
        self._monte_carlo_trials = int(trials)
        self._monte_carlo_epsilons = tuple(float(e) for e in epsilons)
        self._invalidate_label()

    @_locked
    def set_seed(self, seed: int) -> None:
        """Seed for the Monte-Carlo stability estimators."""
        self._require_table()
        self._seed = int(seed)
        self._invalidate_label()

    def _invalidate_label(self) -> None:
        """Drop a stale label; LABELED must always mean last_label() works."""
        self._facts = None
        if self._stage is SessionStage.LABELED:
            self._stage = SessionStage.SCORER_DESIGNED

    @_locked
    def design_scoring(
        self,
        weights: Mapping[str, float],
        sensitive_attribute: str | Sequence[str],
        id_column: str | None = None,
        diversity_attributes: Sequence[str] | None = None,
        k: int = 10,
        alpha: float = 0.05,
    ) -> None:
        """Commit the scoring design (weights + sensitive attribute).

        Mirrors the paper's constraints: "at least one categorical
        attribute must be chosen as the sensitive attribute" and "the
        user selects at least one numerical attribute for the scoring
        function, and assigns a weight" (§3) — both are enforced by the
        underlying builder/scorer constructors.
        """
        self._require_stage(
            SessionStage.DATA_LOADED, SessionStage.SCORER_DESIGNED,
            SessionStage.PREVIEWED, SessionStage.LABELED,
        )
        table = self._require_table()
        scorer = LinearScoringFunction(dict(weights))  # validates weights
        for attr in scorer.attributes():
            table.numeric_column(attr)  # raise early on bad attributes
        sensitive = (
            [sensitive_attribute]
            if isinstance(sensitive_attribute, str)
            else list(sensitive_attribute)
        )
        if not sensitive:
            raise SessionStateError(
                "at least one sensitive attribute must be chosen (paper §3)"
            )
        for attr in sensitive:
            table.categorical_column(attr)
        if id_column is not None and id_column not in table:
            raise SessionStateError(f"id column {id_column!r} not in table")
        self._weights = scorer.weights
        self._sensitive = sensitive
        self._diversity = list(diversity_attributes or sensitive)
        self._id_column = id_column
        self._k = k
        self._alpha = alpha
        self._facts = None
        self._stage = SessionStage.SCORER_DESIGNED

    # -- stage 4: preview ------------------------------------------------------------------

    @_locked
    def preview(self, rows: int = 10) -> Ranking:
        """Rank with the current design and return the top ``rows``.

        The user "will preview the ranking, and will then either refine
        it, or go on to generate Ranking Facts" (§3).
        """
        self._require_stage(
            SessionStage.SCORER_DESIGNED, SessionStage.PREVIEWED, SessionStage.LABELED
        )
        table = self._require_table()
        scorer = LinearScoringFunction(self._weights)
        plan = (
            NormalizationPlan.minmax_all(scorer.attributes())
            if self._normalize
            else NormalizationPlan.raw()
        )
        from repro.preprocess.pipeline import TablePreprocessor

        prepared = TablePreprocessor(plan).fit_transform(table)
        ranking = rank_table(prepared, scorer, self._id_column)
        self._stage = SessionStage.PREVIEWED
        return ranking.top_k(min(rows, ranking.size))

    # -- stage 5: the label -----------------------------------------------------------------

    @_locked
    def current_design(self) -> LabelDesign:
        """The committed design as the engine's frozen value object."""
        self._require_stage(
            SessionStage.SCORER_DESIGNED, SessionStage.PREVIEWED, SessionStage.LABELED
        )
        return LabelDesign.create(
            weights=self._weights,
            sensitive=self._sensitive,
            diversity=self._diversity,
            id_column=self._id_column,
            k=self._k,
            alpha=self._alpha,
            normalize=self._normalize,
            monte_carlo_trials=self._monte_carlo_trials,
            monte_carlo_epsilons=self._monte_carlo_epsilons,
            seed=self._seed,
        )

    @_locked
    def generate_label(self) -> RankingFacts:
        """Serve the nutritional label for the current design.

        Computation goes through the label service: a repeat of an
        unchanged design (from this session or any other sharing the
        service) is a cache hit and performs zero rebuilds.
        """
        design = self.current_design()
        table = self._require_table()
        outcome = self._service.build_label(
            table, design, dataset_name=self._dataset_name
        )
        self._facts = outcome.facts
        self._last_cached = outcome.cached
        self._stage = SessionStage.LABELED
        return outcome.facts

    @_locked
    def label_inputs(self):
        """The committed ``(table, design, dataset_name)`` triple.

        One consistent snapshot for callers that run the build *outside*
        the session lock — the streaming endpoint must not hold every
        other request on this session hostage for the length of a
        Monte-Carlo loop.  Raises like :meth:`current_design` when no
        design is committed.
        """
        design = self.current_design()
        return self._require_table(), design, self._dataset_name

    @_locked
    def last_label(self) -> RankingFacts:
        """The most recently generated label."""
        if self._facts is None:
            raise SessionStateError("no label generated yet; call generate_label()")
        return self._facts

    @_locked
    def last_label_was_cached(self) -> bool:
        """Whether the last ``generate_label()`` was served from cache."""
        return self._last_cached
