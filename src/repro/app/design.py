"""Scoring-function design helpers (the Figure-3 panel's pieces).

The design view shows, for each attribute, enough context to assign a
weight sensibly: type, missing counts, range and distribution
("[scoring attribute selection] can be informed by the range and
distribution of values for a given attribute", paper §3).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import RankingFactsError
from repro.tabular.summary import Histogram, describe
from repro.tabular.table import Table

__all__ = ["attribute_preview", "histogram_ascii", "suggest_weights"]


def attribute_preview(table: Table) -> list[dict[str, object]]:
    """One summary row per column for the design view's attribute panel.

    Numeric columns report min/median/max; categorical columns report
    their categories (truncated at 8 for display).
    """
    rows: list[dict[str, object]] = []
    for name in table.column_names:
        column = table.column(name)
        entry: dict[str, object] = {
            "name": name,
            "kind": column.kind,
            "missing": column.num_missing(),
        }
        if column.kind == "numeric":
            summary = describe(column)
            entry.update(
                {
                    "min": summary.minimum,
                    "median": summary.median,
                    "max": summary.maximum,
                }
            )
        else:
            categories = column.as_categorical().categories()
            entry["num_categories"] = len(categories)
            entry["categories"] = list(categories[:8])
        rows.append(entry)
    return rows


def histogram_ascii(hist: Histogram, width: int = 40) -> str:
    """Render a histogram as horizontal ASCII bars.

    >>> from repro.tabular import Table, histogram
    >>> h = histogram(Table.from_dict({"x": [1.0, 1.5, 3.0]}).column("x"), bins=2)
    >>> print(histogram_ascii(h, width=4))  # doctest: +NORMALIZE_WHITESPACE
    x (n=3)
    [     1,      2) ##    2
    [     2,      3] #     1
    """
    if width < 1:
        raise RankingFactsError(f"histogram width must be >= 1, got {width}")
    peak = max(hist.counts) if hist.counts else 0
    lines = [f"{hist.name} (n={hist.total})"]
    for i, count in enumerate(hist.counts):
        lo, hi = hist.edges[i], hist.edges[i + 1]
        closing = "]" if i == len(hist.counts) - 1 else ")"
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"[{lo:6g}, {hi:6g}{closing} {bar:<{width}} {count}")
    return "\n".join(lines)


def suggest_weights(
    table: Table, attributes: Sequence[str], scheme: str = "equal"
) -> dict[str, float]:
    """Starting weights for the chosen scoring attributes.

    Schemes:

    - ``"equal"`` — 1/m each (the neutral default the demo pre-fills);
    - ``"variance"`` — proportional to each attribute's coefficient of
      variation, so attributes that actually discriminate between items
      start with more influence.
    """
    chosen = list(attributes)
    if not chosen:
        raise RankingFactsError("suggest_weights needs at least one attribute")
    for name in chosen:
        table.numeric_column(name)
    if scheme == "equal":
        return {name: 1.0 / len(chosen) for name in chosen}
    if scheme == "variance":
        dispersions: dict[str, float] = {}
        for name in chosen:
            summary = describe(table.column(name))
            scale = abs(summary.mean)
            dispersions[name] = summary.std / scale if scale > 0 else summary.std
        total = sum(dispersions.values())
        if total == 0.0:
            return {name: 1.0 / len(chosen) for name in chosen}
        return {name: value / total for name, value in dispersions.items()}
    raise RankingFactsError(
        f"unknown weight scheme {scheme!r}; use 'equal' or 'variance'"
    )
