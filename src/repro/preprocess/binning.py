"""Binarization of attributes into two-category sensitive features.

Ranking Facts "is currently limited to binary [sensitive] attributes"
(paper §3).  The CS-departments walkthrough derives ``DeptSizeBin``
("large"/"small") from the numeric ``Faculty`` count; these helpers
perform that derivation for numeric and categorical sources.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ColumnTypeError, ProtectedGroupError
from repro.tabular.column import CategoricalColumn, Column
from repro.tabular.table import Table

__all__ = ["binarize_numeric", "binarize_categorical", "intersect_attributes"]


def binarize_numeric(
    table: Table,
    source: str,
    new_name: str,
    threshold: float | None = None,
    above_label: str = "high",
    below_label: str = "low",
) -> Table:
    """Add a binary categorical column splitting ``source`` at a threshold.

    Parameters
    ----------
    table:
        Input table (unchanged; a new table is returned).
    source:
        Name of the numeric column to split.
    new_name:
        Name of the derived categorical column.
    threshold:
        Split point; values >= threshold get ``above_label``.  Defaults
        to the median, which is how the demo derives ``DeptSizeBin``.
    above_label / below_label:
        Category names for the two sides.  Missing source values map to
        the missing category ("").

    Raises
    ------
    ProtectedGroupError
        If the split would put every row on one side (the resulting
        attribute could not serve as a sensitive attribute).
    """
    column = table.numeric_column(source)
    values = column.values
    non_missing = column.dropna_values()
    if non_missing.size == 0:
        raise ProtectedGroupError(
            f"cannot binarize {source!r}: no non-missing values"
        )
    if above_label == below_label:
        raise ProtectedGroupError(
            f"binarize labels must differ, both are {above_label!r}"
        )
    cut = float(np.median(non_missing)) if threshold is None else float(threshold)
    labels = []
    for v in values:
        if np.isnan(v):
            labels.append("")
        elif v >= cut:
            labels.append(above_label)
        else:
            labels.append(below_label)
    distinct = {lab for lab in labels if lab != ""}
    if len(distinct) < 2:
        raise ProtectedGroupError(
            f"binarizing {source!r} at {cut:g} puts all rows in "
            f"{distinct.pop()!r}; choose a different threshold"
        )
    return table.with_column(CategoricalColumn(new_name, labels))


def intersect_attributes(
    table: Table,
    sources: Sequence[str],
    new_name: str,
    separator: str = "&",
) -> Table:
    """Add a combined categorical column crossing two or more attributes.

    Intersectional audits (race x sex, size x region, ...) need a single
    sensitive attribute whose categories are the attribute combinations;
    this derives it: the new category of a row is the ``separator``-join
    of its source values (e.g. ``"Female&African-American"``).  Rows with
    any missing source value get the missing category.

    Feed the result to
    :func:`repro.fairness.evaluate_fairness_multivalued` (combinations
    are usually more than two) or collapse it further with
    :func:`binarize_categorical`.

    Raises
    ------
    ProtectedGroupError
        With fewer than two sources, or when the combination collapses
        to a single category (nothing to audit).
    ColumnTypeError
        If a source column is numeric (binarize it first).
    """
    names = list(sources)
    if len(names) < 2:
        raise ProtectedGroupError(
            f"intersect_attributes needs at least 2 sources, got {len(names)}"
        )
    columns = [table.categorical_column(name) for name in names]
    combined: list[str] = []
    for i in range(table.num_rows):
        parts = [str(column.values[i]) for column in columns]
        combined.append("" if any(p == "" for p in parts) else separator.join(parts))
    distinct = {value for value in combined if value != ""}
    if len(distinct) < 2:
        raise ProtectedGroupError(
            f"intersecting {', '.join(names)} yields a single category; "
            "nothing to audit"
        )
    return table.with_column(CategoricalColumn(new_name, combined))


def binarize_categorical(
    table: Table,
    source: str,
    new_name: str,
    protected_categories: Sequence[str],
    protected_label: str | None = None,
    other_label: str = "other",
) -> Table:
    """Add a binary column: protected categories vs everything else.

    This is how a multi-valued sensitive attribute (e.g. race in the
    COMPAS data) is reduced to the binary form the fairness measures
    require: ``protected_categories`` collapse to one label, all other
    categories to ``other_label``.

    Parameters
    ----------
    protected_label:
        Label for the protected side.  Defaults to the single protected
        category when one is given, else ``"protected"``.
    """
    column = table.categorical_column(source)
    protected = list(protected_categories)
    if not protected:
        raise ProtectedGroupError(
            f"binarize_categorical on {source!r}: no protected categories given"
        )
    existing = set(column.categories())
    unknown = [c for c in protected if c not in existing]
    if unknown:
        raise ProtectedGroupError(
            f"column {source!r} has no categor{'y' if len(unknown)==1 else 'ies'} "
            f"{', '.join(repr(u) for u in unknown)}; "
            f"present: {', '.join(sorted(existing))}"
        )
    if set(protected) >= existing:
        raise ProtectedGroupError(
            f"binarize_categorical on {source!r}: every category is protected, "
            "the complement group would be empty"
        )
    if protected_label is None:
        protected_label = protected[0] if len(protected) == 1 else "protected"
    if protected_label == other_label:
        raise ProtectedGroupError(
            f"binarize labels must differ, both are {protected_label!r}"
        )
    protected_set = set(protected)
    labels = [
        "" if v == "" else (protected_label if v in protected_set else other_label)
        for v in column.values
    ]
    return table.with_column(CategoricalColumn(new_name, labels))
