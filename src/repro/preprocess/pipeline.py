"""Table-level preprocessing: apply one normalizer per column, remember fits.

The design view's normalization checkbox (Figure 3) toggles preprocessing
for *all* scoring attributes at once; :class:`TablePreprocessor` is the
object behind that checkbox.  It records each column's fitted parameters
so the Recipe widget can disclose exactly how raw attribute values were
rescaled before weighting — part of the label's transparency story.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import NormalizationError
from repro.preprocess.normalize import Normalizer, make_normalizer
from repro.tabular.table import Table

__all__ = ["NormalizationPlan", "TablePreprocessor"]


@dataclass(frozen=True)
class NormalizationPlan:
    """Declares which scheme to use for which columns.

    Parameters
    ----------
    default_scheme:
        Scheme applied to every listed column unless overridden.
    columns:
        The numeric columns to preprocess.  Columns not listed pass
        through untouched.
    overrides:
        Per-column scheme exceptions, e.g. ``{"GRE": "zscore"}``.
    """

    columns: tuple[str, ...]
    default_scheme: str = "minmax"
    overrides: Mapping[str, str] = field(default_factory=dict)

    def scheme_for(self, column: str) -> str:
        """The scheme that will be applied to ``column``."""
        if column not in self.columns:
            return "identity"
        return dict(self.overrides).get(column, self.default_scheme)

    @classmethod
    def raw(cls) -> "NormalizationPlan":
        """The unchecked checkbox: no column is rescaled."""
        return cls(columns=())

    @classmethod
    def minmax_all(cls, columns: Sequence[str]) -> "NormalizationPlan":
        """Min-max scale every listed column (the demo default)."""
        return cls(columns=tuple(columns), default_scheme="minmax")


class TablePreprocessor:
    """Fits a :class:`NormalizationPlan` on a table and transforms tables.

    The fit/transform split matters: the preprocessor is fit **once** on
    the full dataset, and the same fitted scalers are reused on slices
    (e.g. the top-10 table), so a value's normalized form is identical
    wherever it appears.

    Example
    -------
    >>> from repro.tabular import Table
    >>> t = Table.from_dict({"x": [0.0, 5.0, 10.0]})
    >>> prep = TablePreprocessor(NormalizationPlan.minmax_all(["x"]))
    >>> prep.fit(t).transform(t).numeric_column("x").values.tolist()
    [0.0, 0.5, 1.0]
    """

    def __init__(self, plan: NormalizationPlan):
        self._plan = plan
        self._normalizers: dict[str, Normalizer] = {}
        self._fitted = False

    @property
    def plan(self) -> NormalizationPlan:
        """The plan this preprocessor was constructed with."""
        return self._plan

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._fitted

    def fit(self, table: Table) -> "TablePreprocessor":
        """Fit one normalizer per planned column; returns self."""
        normalizers: dict[str, Normalizer] = {}
        for name in self._plan.columns:
            column = table.numeric_column(name)  # raises on missing/categorical
            normalizer = make_normalizer(self._plan.scheme_for(name))
            normalizer.fit(column)
            normalizers[name] = normalizer
        self._normalizers = normalizers
        self._fitted = True
        return self

    def transform(self, table: Table) -> Table:
        """Return a copy of ``table`` with planned columns rescaled."""
        if not self._fitted:
            raise NormalizationError("TablePreprocessor used before fit()")
        out = table
        for name, normalizer in self._normalizers.items():
            if name not in table:
                raise NormalizationError(
                    f"fitted column {name!r} is missing from the table to transform"
                )
            out = out.with_column(normalizer.transform(table.numeric_column(name)))
        return out

    def fit_transform(self, table: Table) -> Table:
        """Fit on ``table`` and transform it."""
        return self.fit(table).transform(table)

    def fitted_params(self) -> dict[str, dict[str, float]]:
        """``{column: fitted-parameters}`` for the label's Recipe detail."""
        return {name: norm.params() for name, norm in self._normalizers.items()}

    def schemes(self) -> dict[str, str]:
        """``{column: scheme}`` actually applied."""
        return {name: norm.scheme for name, norm in self._normalizers.items()}
