"""Column normalizers with an explicit fit/transform split.

Scoring functions combine attributes with very different ranges
(publication counts in the tens, GRE scores in the hundreds), so the
design view offers normalization before weighting.  Each normalizer is
fit on a column once and can then transform any compatible column —
which is what lets the Recipe widget report statistics of *normalized*
attributes for both the top-10 slice and the full table using the same
fit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NormalizationError
from repro.tabular.column import NumericColumn

__all__ = [
    "Normalizer",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "IdentityNormalizer",
    "make_normalizer",
]


class Normalizer:
    """Base class: fit on one column, transform many.

    Subclasses implement :meth:`_fit_params` and :meth:`_apply`.
    """

    #: machine-readable scheme name used in label JSON and the CLI
    scheme: str = "abstract"

    def __init__(self):
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._fitted

    def fit(self, column: NumericColumn) -> "Normalizer":
        """Learn scaling parameters from ``column``; returns self."""
        values = column.as_numeric().dropna_values()
        if values.size == 0:
            raise NormalizationError(
                f"cannot fit {self.scheme} normalizer on {column.name!r}: "
                "no non-missing values"
            )
        self._fit_params(values, column.name)
        self._fitted = True
        return self

    def transform(self, column: NumericColumn) -> NumericColumn:
        """Return a normalized copy of ``column`` (NaNs pass through)."""
        if not self._fitted:
            raise NormalizationError(
                f"{self.scheme} normalizer used before fit()"
            )
        numeric = column.as_numeric()
        return NumericColumn(numeric.name, self._apply(numeric.values.copy()))

    def fit_transform(self, column: NumericColumn) -> NumericColumn:
        """Fit on ``column`` and transform it in one call."""
        return self.fit(column).transform(column)

    def params(self) -> dict[str, float]:
        """The learned parameters (empty before fit)."""
        return {}

    # -- subclass hooks ------------------------------------------------------

    def _fit_params(self, values: np.ndarray, name: str) -> None:
        raise NotImplementedError

    def _apply(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MinMaxNormalizer(Normalizer):
    """Scales values linearly onto [0, 1] using the fitted min and max.

    A constant column cannot be min-max scaled; :meth:`fit` raises
    :class:`~repro.errors.NormalizationError` so the design view can
    tell the user to drop the attribute instead of silently producing
    zeros.
    """

    scheme = "minmax"

    def __init__(self):
        super().__init__()
        self._lo = float("nan")
        self._hi = float("nan")

    def _fit_params(self, values: np.ndarray, name: str) -> None:
        lo, hi = float(values.min()), float(values.max())
        if lo == hi:
            raise NormalizationError(
                f"cannot min-max normalize constant column {name!r} (value {lo:g})"
            )
        self._lo, self._hi = lo, hi

    def _apply(self, values: np.ndarray) -> np.ndarray:
        return (values - self._lo) / (self._hi - self._lo)

    def params(self) -> dict[str, float]:
        return {"min": self._lo, "max": self._hi} if self._fitted else {}


class ZScoreNormalizer(Normalizer):
    """Standardizes to zero mean and unit (population) standard deviation."""

    scheme = "zscore"

    def __init__(self):
        super().__init__()
        self._mean = float("nan")
        self._std = float("nan")

    def _fit_params(self, values: np.ndarray, name: str) -> None:
        std = float(values.std(ddof=0))
        if std == 0.0:
            raise NormalizationError(
                f"cannot z-score constant column {name!r} (std is 0)"
            )
        self._mean = float(values.mean())
        self._std = std

    def _apply(self, values: np.ndarray) -> np.ndarray:
        return (values - self._mean) / self._std

    def params(self) -> dict[str, float]:
        return {"mean": self._mean, "std": self._std} if self._fitted else {}


class IdentityNormalizer(Normalizer):
    """The "work with raw data" setting: a no-op with the same interface."""

    scheme = "identity"

    def _fit_params(self, values: np.ndarray, name: str) -> None:
        pass

    def _apply(self, values: np.ndarray) -> np.ndarray:
        return values


_SCHEMES = {
    "minmax": MinMaxNormalizer,
    "zscore": ZScoreNormalizer,
    "identity": IdentityNormalizer,
    "raw": IdentityNormalizer,  # alias used by the CLI
}


def make_normalizer(scheme: str) -> Normalizer:
    """Instantiate a normalizer by scheme name.

    >>> make_normalizer("minmax").scheme
    'minmax'
    """
    try:
        return _SCHEMES[scheme]()
    except KeyError:
        raise NormalizationError(
            f"unknown normalization scheme {scheme!r}; "
            f"expected one of {', '.join(sorted(set(_SCHEMES)))}"
        ) from None
