"""Attribute preprocessing: normalization, standardization, binning.

The scoring-function design view (paper Figure 3) lets the user "decide
whether to work with raw data or to normalize and standardize the
attributes".  This subpackage implements that toggle:

- :mod:`repro.preprocess.normalize` — min-max, z-score, and identity
  scalers with an explicit fit/transform split;
- :mod:`repro.preprocess.binning` — binarization of numeric attributes
  (how ``DeptSizeBin`` is derived from ``Faculty``) and grouping of
  categorical attributes into binary protected/other encodings;
- :mod:`repro.preprocess.pipeline` — applies a set of per-column
  normalizers to a table in one shot and remembers the fit parameters.
"""

from repro.preprocess.binning import (
    binarize_categorical,
    binarize_numeric,
    intersect_attributes,
)
from repro.preprocess.normalize import (
    IdentityNormalizer,
    MinMaxNormalizer,
    Normalizer,
    ZScoreNormalizer,
    make_normalizer,
)
from repro.preprocess.pipeline import NormalizationPlan, TablePreprocessor

__all__ = [
    "Normalizer",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "IdentityNormalizer",
    "make_normalizer",
    "binarize_numeric",
    "binarize_categorical",
    "intersect_attributes",
    "TablePreprocessor",
    "NormalizationPlan",
]
