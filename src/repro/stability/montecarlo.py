"""Shared Monte-Carlo plumbing for the stability estimators.

Every stability estimator runs the same shape of loop: ``trials``
independent draws, each of which re-ranks the table and compares the
result to a baseline.  Two properties make that loop safe to
parallelize:

- **Per-trial RNG streams.**  Trial ``i`` draws from
  ``default_rng([seed, i])`` instead of consuming a single sequential
  stream, so a trial's randomness does not depend on which trials ran
  before it (or on which worker ran it).  Results are therefore
  bit-identical whether the loop runs serially, on a thread pool, or
  in any interleaving — the property the engine's executor relies on.
- **Order-preserving fan-out.**  :func:`run_trials` maps the trial
  function over ``range(trials)`` either inline or via an executor's
  ``map`` (which yields results in submission order), so aggregation
  code never sees reordered outcomes.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import Executor
from typing import TypeVar

import numpy as np

__all__ = ["trial_rng", "run_trials"]

T = TypeVar("T")


def trial_rng(seed: int, trial: int) -> np.random.Generator:
    """An independent, deterministic generator for one Monte-Carlo trial."""
    return np.random.default_rng([seed, trial])


def run_trials(
    fn: Callable[[int], T], trials: int, executor: Executor | None = None
) -> list[T]:
    """Run ``fn(0..trials-1)``, inline or on ``executor``, in order.

    ``Executor.map`` yields results in submission order, so the output
    list is identical for both paths; with per-trial RNG streams the
    *values* are identical too.
    """
    if executor is None:
        return [fn(trial) for trial in range(trials)]
    return list(executor.map(fn, range(trials)))
