"""Shared Monte-Carlo plumbing for the stability estimators.

Every stability estimator runs the same shape of loop: ``trials``
independent draws, each of which re-ranks the table and compares the
result to a baseline.  Three properties make that loop safe to
parallelize — on threads *or* across processes:

- **Per-trial RNG streams.**  Trial ``i`` draws from
  ``default_rng([seed, i])`` instead of consuming a single sequential
  stream, so a trial's randomness does not depend on which trials ran
  before it (or on which worker ran it).  Results are therefore
  bit-identical whether the loop runs serially, on a thread pool, or
  in any interleaving — the property the engine's executor relies on.
- **Picklable trial work.**  The estimators package everything a trial
  needs into a plain payload (table arrays + design parameters) and
  run a *module-level* function over it, so a process backend can ship
  the work to workers by pickling one payload per chunk.
- **Order-preserving fan-out.**  :func:`run_payload_trials` maps the
  trial function over ``range(trials)`` inline or via a
  :class:`~repro.engine.backends.TrialBackend`, every one of which
  returns results in submission order — aggregation code never sees
  reordered outcomes.  (The ``vectorized`` backend exploits the same
  shape from the other direction: because the payload is plain data
  and the RNG streams are per-trial, the whole batch can be computed
  as one array program — see :mod:`repro.stability.kernels`.)

:func:`run_trials` is the closure-based predecessor (inline or over a
``concurrent.futures.Executor``); it remains for callers whose trial
function is not picklable, but cannot cross a process boundary.
"""

from __future__ import annotations

from collections.abc import Callable
from concurrent.futures import Executor
from typing import TYPE_CHECKING, Any, TypeVar

import numpy as np

if TYPE_CHECKING:  # engine imports stability; keep the reverse static-only
    from repro.engine.backends import TrialBackend

__all__ = ["trial_rng", "run_trials", "run_payload_trials", "backend_for"]

T = TypeVar("T")


def trial_rng(seed: int, trial: int) -> np.random.Generator:
    """An independent, deterministic generator for one Monte-Carlo trial."""
    return np.random.default_rng([seed, trial])


def run_trials(
    fn: Callable[[int], T], trials: int, executor: Executor | None = None
) -> list[T]:
    """Run ``fn(0..trials-1)``, inline or on ``executor``, in order.

    ``Executor.map`` yields results in submission order, so the output
    list is identical for both paths; with per-trial RNG streams the
    *values* are identical too.
    """
    if executor is None:
        return [fn(trial) for trial in range(trials)]
    return list(executor.map(fn, range(trials)))


def backend_for(
    executor: Executor | None, backend: "TrialBackend | None"
) -> "TrialBackend | None":
    """Resolve an estimator's legacy ``executor=`` against ``backend=``.

    ``backend`` wins; a bare ``executor`` is wrapped so the caller-owned
    pool keeps working through the backend interface.  (Imported lazily:
    the engine package imports stability at module load.)
    """
    if backend is not None or executor is None:
        return backend
    from repro.engine.backends import ExecutorTrialBackend

    return ExecutorTrialBackend(executor)


def run_payload_trials(
    fn: Callable[[Any, int], T],
    payload: Any,
    trials: int,
    backend: "TrialBackend | None" = None,
) -> list[T]:
    """Run ``fn(payload, 0..trials-1)`` on ``backend``, in trial order.

    ``fn`` must be a module-level function and ``payload`` plain
    picklable data when ``backend`` crosses a process boundary; with
    ``backend=None`` the trials run inline on the calling thread.
    """
    if backend is None:
        return [fn(payload, trial) for trial in range(trials)]
    return backend.run(fn, payload, trials)
