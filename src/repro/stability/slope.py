"""Score-distribution slope stability (paper §2.2, Figure 2).

"The stability of the ranking is quantified as the slope of the line
that is fit to the score distribution, at the top-10 and over-all.  A
score distribution is unstable if scores of items in adjacent ranks are
close to each other ... In this example the score distribution is
considered unstable if the slope is 0.25 or lower."

The fit regresses score on rank position; for a descending ranking the
slope is negative, and its magnitude is the average score separation
between adjacent ranks.  A large magnitude means small score noise
cannot reorder items.

One wrinkle: raw slopes are not comparable across scoring functions
with different output scales, so the widget fits on **scores rescaled
to [0, 1] over the full ranking and rank positions rescaled to [0, 1]
per segment** (the fit is then scale- and length-free, and the 0.25
threshold means "the top-to-bottom score drop across the segment is at
least a quarter of the overall score range").  Set
``rescale=False`` to fit on raw scores instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StabilityError
from repro.ranking.ranker import Ranking
from repro.stats.regression import LinearFit, fit_line_xy

__all__ = ["SlopeStabilityReport", "SlopeStability", "slope_stability"]

#: Paper's instability threshold: "unstable if the slope is 0.25 or lower".
DEFAULT_SLOPE_THRESHOLD = 0.25

#: The widget's headline prefix.
DEFAULT_TOP_K = 10


@dataclass(frozen=True)
class SlopeStabilityReport:
    """Figure 2's payload: fits at the top-k and over-all.

    ``slope_top_k`` / ``slope_overall`` are slope *magnitudes* (the raw
    fitted slopes are negative).  The single-number ``stability_score``
    on the overview widget is the smaller of the two — the ranking is
    only as stable as its weaker segment.
    """

    k: int
    threshold: float
    rescaled: bool
    fit_top_k: LinearFit
    fit_overall: LinearFit
    slope_top_k: float
    slope_overall: float
    stable_top_k: bool
    stable_overall: bool

    @property
    def stability_score(self) -> float:
        """The overview widget's single number."""
        return min(self.slope_top_k, self.slope_overall)

    @property
    def stable(self) -> bool:
        """Overall verdict: stable only when both segments are."""
        return self.stable_top_k and self.stable_overall

    @property
    def verdict(self) -> str:
        """``"stable"`` or ``"unstable"``, as printed on the label."""
        return "stable" if self.stable else "unstable"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "k": self.k,
            "threshold": self.threshold,
            "rescaled": self.rescaled,
            "stability_score": self.stability_score,
            "stable": self.stable,
            "top_k": {
                "slope": self.slope_top_k,
                "stable": self.stable_top_k,
                "fit": self.fit_top_k.as_dict(),
            },
            "overall": {
                "slope": self.slope_overall,
                "stable": self.stable_overall,
                "fit": self.fit_overall.as_dict(),
            },
        }


def _segment_fit(scores: np.ndarray, rescale: bool, span: float) -> LinearFit:
    """Fit score vs rank for one segment.

    With ``rescale`` the x axis is the segment's rank positions mapped
    onto [0, 1] and the y axis is assumed pre-scaled by the caller
    (``span`` divides the scores); the slope is then the score drop per
    full segment traversal, in units of the overall score range.
    """
    n = scores.size
    if n < 2:
        raise StabilityError(f"slope stability needs at least 2 items, got {n}")
    y = scores.astype(np.float64)
    if rescale:
        x = np.linspace(0.0, 1.0, n)
        y = y / span if span > 0 else y * 0.0
    else:
        x = np.arange(1, n + 1, dtype=np.float64)
    return fit_line_xy(x, y)


class SlopeStability:
    """The Figure-2 estimator with configurable k and threshold.

    Parameters
    ----------
    k:
        Top segment length (default 10).
    threshold:
        Slope magnitude at or below which a segment is unstable
        (default 0.25, the paper's example value).
    rescale:
        Fit in scale-free units (default, see module docstring).
    """

    name = "score-distribution slope"

    def __init__(
        self,
        k: int = DEFAULT_TOP_K,
        threshold: float = DEFAULT_SLOPE_THRESHOLD,
        rescale: bool = True,
    ):
        if k < 2:
            raise StabilityError(f"k must be >= 2 to fit a line, got {k}")
        if threshold <= 0.0:
            raise StabilityError(f"threshold must be positive, got {threshold}")
        self._k = k
        self._threshold = threshold
        self._rescale = rescale

    @property
    def k(self) -> int:
        """The top segment length."""
        return self._k

    @property
    def threshold(self) -> float:
        """The instability threshold."""
        return self._threshold

    def assess(self, ranking: Ranking) -> SlopeStabilityReport:
        """Fit both segments of ``ranking`` and return the report.

        Raises
        ------
        StabilityError
            When the ranking has NaN scores or fewer than 2 items.
        """
        scores = ranking.scores
        if np.isnan(scores).any():
            raise StabilityError(
                "slope stability is undefined with NaN scores; "
                "drop unscored items first"
            )
        if scores.size < 2:
            raise StabilityError(
                f"slope stability needs at least 2 items, got {scores.size}"
            )
        span = float(scores.max() - scores.min())
        k = min(self._k, scores.size)
        fit_top = _segment_fit(scores[:k], self._rescale, span)
        fit_all = _segment_fit(scores, self._rescale, span)
        slope_top = abs(fit_top.slope)
        slope_all = abs(fit_all.slope)
        return SlopeStabilityReport(
            k=k,
            threshold=self._threshold,
            rescaled=self._rescale,
            fit_top_k=fit_top,
            fit_overall=fit_all,
            slope_top_k=slope_top,
            slope_overall=slope_all,
            stable_top_k=slope_top > self._threshold,
            stable_overall=slope_all > self._threshold,
        )


def slope_stability(
    ranking: Ranking,
    k: int = DEFAULT_TOP_K,
    threshold: float = DEFAULT_SLOPE_THRESHOLD,
    rescale: bool = True,
) -> SlopeStabilityReport:
    """Functional shortcut for ``SlopeStability(...).assess(ranking)``."""
    return SlopeStability(k=k, threshold=threshold, rescale=rescale).assess(ranking)
