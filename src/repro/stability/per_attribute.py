"""Per-attribute stability: which ingredient is the ranking hostage to?

"Alternatively, stability can be computed with respect to each scoring
attribute" (paper §2.2).  For each scoring attribute this estimator
jitters *only that attribute's weight* and finds the smallest relative
change that more-likely-than-not alters the top-k — so an analyst can
read "the ranking survives a 40% change to GRE's weight but flips under
a 6% change to PubCount's" directly off the detailed widget.

The bisection probes run their trials through a module-level function
over a plain payload, so the loop parallelizes on any
:class:`~repro.engine.backends.TrialBackend` (threads or processes)
with byte-identical results; the ``vectorized`` backend computes each
probe's batch as one array program
(:func:`repro.stability.kernels.run_attribute_kernel`).
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StabilityError
from repro.ranking.ranker import rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.stability.montecarlo import backend_for, run_payload_trials, trial_rng
from repro.tabular.table import Table

if TYPE_CHECKING:
    from repro.engine.backends import TrialBackend

__all__ = ["AttributeStability", "AttributeTrialPayload", "per_attribute_stability"]


@dataclass(frozen=True)
class AttributeStability:
    """One attribute's sensitivity result.

    ``critical_epsilon`` is the smallest relative weight change at which
    the top-k changes with probability >= ``probability``; 1.0 (the
    search ceiling) means the ranking never flipped within a 100%
    change of this single weight.
    """

    attribute: str
    weight: float
    critical_epsilon: float
    probability: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "weight": self.weight,
            "critical_epsilon": self.critical_epsilon,
            "probability": self.probability,
        }


@dataclass(frozen=True)
class AttributeTrialPayload:
    """Everything one single-weight-jitter trial needs, picklable.

    The scorer travels as the object itself (the repo's scorers pickle
    cleanly), so subclass behaviour survives the process boundary.
    """

    table: Table
    scorer: LinearScoringFunction
    attribute: str
    epsilon: float
    scale: float
    id_column: str | None
    baseline_top: frozenset
    k: int
    seed: int


def _attribute_trial(payload: AttributeTrialPayload, trial: int) -> bool:
    """One Monte-Carlo draw; module-level so a process backend can ship it."""
    rng = trial_rng(payload.seed, trial)
    delta = float(rng.uniform(-payload.epsilon, payload.epsilon) * payload.scale)
    perturbed = payload.scorer.perturbed({payload.attribute: delta})
    ranking = rank_table(payload.table, perturbed, payload.id_column)
    return set(ranking.item_ids()[: payload.k]) != payload.baseline_top


def _change_probability(
    table: Table,
    scorer: LinearScoringFunction,
    attribute: str,
    epsilon: float,
    id_column: str | None,
    baseline_top: frozenset,
    k: int,
    trials: int,
    seed: int,
    backend: "TrialBackend | None" = None,
) -> float:
    weight = scorer.weights[attribute]
    scale = abs(weight) if weight != 0.0 else float(
        np.mean([abs(w) for w in scorer.weights.values()])
    )
    payload = AttributeTrialPayload(
        table=table,
        scorer=scorer,
        attribute=attribute,
        epsilon=float(epsilon),
        scale=scale,
        id_column=id_column,
        baseline_top=baseline_top,
        k=k,
        seed=seed,
    )
    return sum(run_payload_trials(_attribute_trial, payload, trials, backend)) / trials


def per_attribute_stability(
    table: Table,
    scorer: LinearScoringFunction,
    id_column: str | None = None,
    k: int = 10,
    trials: int = 30,
    probability: float = 0.5,
    iterations: int = 8,
    seed: int = 20180610,
    executor: Executor | None = None,
    backend: "TrialBackend | None" = None,
) -> list[AttributeStability]:
    """Critical single-weight change per attribute, most fragile first.

    Parameters
    ----------
    table:
        The (already preprocessed) data being ranked.
    scorer:
        The linear scoring function under audit.
    id_column:
        Item identifier column.
    k:
        Top-k whose composition defines "the ranking changed".
    trials:
        Monte-Carlo draws per probed epsilon.
    probability:
        Change-probability level defining the critical epsilon.
    iterations:
        Bisection steps (the search window is [0, 1] relative change).
    seed:
        RNG seed, fixed for reproducible labels.  Each Monte-Carlo
        trial draws from its own ``[seed, trial]`` stream, so results
        match between serial and parallel execution.
    executor:
        Optional :class:`concurrent.futures.Executor` the trials of
        each bisection probe fan out over (when ``backend`` is unset).
    backend:
        Optional :class:`~repro.engine.backends.TrialBackend`; takes
        precedence over ``executor`` and may cross process boundaries.
    """
    if k < 1:
        raise StabilityError(f"k must be >= 1, got {k}")
    if trials < 1:
        raise StabilityError(f"trials must be >= 1, got {trials}")
    if not 0.0 < probability <= 1.0:
        raise StabilityError(f"probability must be in (0, 1], got {probability}")
    backend = backend_for(executor, backend)
    baseline = rank_table(table, scorer, id_column)
    baseline_top = frozenset(baseline.item_ids()[: min(k, baseline.size)])
    k = min(k, baseline.size)

    results = []
    for attribute, weight in scorer.weights.items():
        def probe(epsilon: float, attr=attribute) -> float:
            return _change_probability(
                table, scorer, attr, epsilon, id_column,
                baseline_top, k, trials, seed, backend,
            )

        if probe(1.0) < probability:
            critical = 1.0  # never flips within the search window
        else:
            lo, hi = 0.0, 1.0
            for _ in range(iterations):
                mid = (lo + hi) / 2.0
                if probe(mid) >= probability:
                    hi = mid
                else:
                    lo = mid
            critical = hi
        results.append(
            AttributeStability(
                attribute=attribute,
                weight=float(weight),
                critical_epsilon=float(critical),
                probability=probability,
            )
        )
    results.sort(key=lambda r: (r.critical_epsilon, r.attribute))
    return results
