"""Vectorized Monte-Carlo trial kernels: a whole trial batch as array ops.

The scalar trial functions in :mod:`repro.stability.perturbation`,
:mod:`~repro.stability.uncertainty`, and
:mod:`~repro.stability.per_attribute` each re-rank the table once per
trial: materialize a scored :class:`~repro.ranking.ranker.Ranking`
(``Table.take`` over every column), convert ids to Python lists, and
compare via per-item dict lookups.  That per-trial interpretation
overhead is exactly what columnar engines avoid by batching — and these
kernels apply the same discipline to the stability widget's hot loop:

- the design matrix ``X (n_rows x n_attrs)`` is pulled from the table
  **once**;
- all ``T`` jitter/noise draws come from the unchanged per-trial RNG
  streams (``trial_rng(seed, trial)``), so results stay reproducible;
- the ``(n x T)`` score matrix is accumulated **per attribute in the
  scorer's declaration order** — the identical sequence of IEEE
  operations :meth:`LinearScoringFunction.score_table` performs, so
  every score is byte-identical to the scalar path's;
- all trials are stable-argsorted at once, and the movement metrics are
  computed on integer permutation arrays — Kendall tau via merge-sort
  inversion counting (:func:`repro.ranking.compare
  .count_inversions_batch`), top-k overlap via position prefixes.  No
  ``Table`` is constructed and no dict is consulted inside the loop.

**Byte-identity contract.**  For every payload a kernel accepts, its
result list is byte-identical to running the matching scalar trial
function over ``range(trials)``.  Anything a kernel cannot reproduce
exactly — a scorer that is not a plain
:class:`~repro.ranking.scoring.LinearScoringFunction` (a subclass may
override ``score_table``), duplicate item ids, a payload whose baseline
disagrees with its table — is **declined**, and
:func:`dispatch_kernel` reports the reason so the caller (the
``vectorized`` :class:`~repro.engine.backends.VectorizedTrialBackend`)
can fall back to the scalar path and surface the reason in
``GET /engine/stats``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.ranking.compare import count_inversions_batch, kendall_tau_from_discordant
from repro.ranking.scoring import LinearScoringFunction
from repro.stability.montecarlo import trial_rng
from repro.stability.per_attribute import AttributeTrialPayload, _attribute_trial
from repro.stability.perturbation import PerturbationTrialPayload, _perturbation_trial
from repro.stability.uncertainty import UncertaintyTrialPayload, _uncertainty_trial
from repro.tabular.table import Table

__all__ = [
    "dispatch_kernel",
    "kernel_for",
    "run_perturbation_kernel",
    "run_uncertainty_kernel",
    "run_attribute_kernel",
]


class _KernelFallback(Exception):
    """Raised inside a kernel when the scalar path must run instead."""


def _require(condition: bool, reason: str) -> None:
    if not condition:
        raise _KernelFallback(reason)


def _require_plain_linear_scorer(scorer: object) -> LinearScoringFunction:
    # an exact type check: a subclass may override score_table, and the
    # kernel's accumulation would silently diverge from it
    _require(
        type(scorer) is LinearScoringFunction,
        f"scorer {type(scorer).__name__} is not a plain LinearScoringFunction",
    )
    return scorer  # type: ignore[return-value]


def _design_matrix(
    table: Table, scorer: LinearScoringFunction
) -> tuple[list[np.ndarray], np.ndarray]:
    """Per-attribute value vectors (NaN -> 0) plus the any-missing mask.

    Mirrors the per-attribute preparation inside ``score_table``: the
    returned vectors are exactly the ``values`` arrays the scalar path
    multiplies by each weight.
    """
    columns: list[np.ndarray] = []
    any_missing = np.zeros(table.num_rows, dtype=bool)
    for attr in scorer.attributes():
        try:
            values = table.numeric_column(attr).values.copy()
        except Exception as exc:
            raise _KernelFallback(f"scoring attribute {attr!r} unusable: {exc}") from exc
        missing = np.isnan(values)
        any_missing |= missing
        values[missing] = 0.0
        columns.append(values)
    return columns, any_missing


def _accumulate_scores(
    columns: list[np.ndarray],
    weight_matrix: np.ndarray,
    any_missing: np.ndarray,
    missing_policy: str,
) -> np.ndarray:
    """The ``(n x T)`` score matrix, accumulated like ``score_table``.

    ``weight_matrix[a, t]`` is attribute ``a``'s weight in trial ``t``.
    Accumulation runs attribute-by-attribute in declaration order, so
    each element sees the same ``((0 + w1*x1) + w2*x2) + ...`` sequence
    as the scalar path — byte-identical floats.
    """
    n = columns[0].shape[0] if columns else 0
    scores = np.zeros((n, weight_matrix.shape[1]), dtype=np.float64)
    for index, values in enumerate(columns):
        scores += values[:, None] * weight_matrix[index][None, :]
    if missing_policy == "propagate":
        scores[any_missing, :] = np.nan
    return scores


def _stable_orders(scores: np.ndarray) -> np.ndarray:
    """Argsort every trial column exactly like ``Ranking.from_scores``."""
    keys = -scores
    keys[np.isnan(keys)] = np.inf  # NaN scores sort last
    return np.argsort(keys, axis=0, kind="stable")


def _baseline_order(table: Table, scorer: LinearScoringFunction) -> np.ndarray:
    """Row indices of the unperturbed ranking, best first."""
    base_scores = scorer.score_table(table)
    keys = -base_scores.copy()
    keys[np.isnan(keys)] = np.inf
    return np.argsort(keys, kind="stable")


def _positions_from_orders(orders: np.ndarray) -> np.ndarray:
    """Invert each trial's order: ``positions[row, t]`` = rank position."""
    positions = np.empty_like(orders)
    np.put_along_axis(
        positions,
        orders,
        np.broadcast_to(np.arange(orders.shape[0])[:, None], orders.shape),
        axis=0,
    )
    return positions


def _unique_ids(table: Table, id_column: str) -> list:
    _require(id_column in table, f"id column {id_column!r} not in table")
    ids = list(table.column(id_column).values)
    _require(len(set(ids)) == len(ids), "item ids are not unique")
    return ids


def _verified_baseline(
    payload, ids: list, base_order: np.ndarray, k: int
) -> None:
    """Decline payloads whose baseline disagrees with their own table."""
    n = len(ids)
    _require(
        tuple(ids[row] for row in base_order) == tuple(payload.baseline_ids),
        "payload baseline_ids do not match the table's own ranking",
    )
    _require(
        set(payload.baseline_ids[:k]) == set(payload.baseline_top),
        "payload baseline_top does not match baseline_ids",
    )
    _require(1 <= k, f"k must be >= 1, got {k}")
    _require(n >= 2, f"rank comparison needs at least 2 items, found {n}")


def _movement_outcomes(
    base_order: np.ndarray, orders: np.ndarray, k: int
) -> list[tuple[float, float, bool]]:
    """Per-trial (tau, overlap, changed) from permutation arrays.

    Exactly the metrics ``kendall_tau_ids`` / ``top_k_overlap_ids`` /
    the top-set comparison produce, computed without ids: discordant
    pairs are inversions of the re-ranked position sequence, overlap is
    a prefix membership count.
    """
    n = orders.shape[0]
    positions = _positions_from_orders(orders)
    # positions of the baseline's items, in baseline order: one
    # permutation per trial whose inversions are the discordant pairs
    reranked = positions[base_order, :]
    discordant = count_inversions_batch(reranked.T)
    kept = min(k, n)
    in_top = positions[base_order[:kept], :] < kept
    counts = in_top.sum(axis=0)
    outcomes: list[tuple[float, float, bool]] = []
    for t in range(orders.shape[1]):
        tau = kendall_tau_from_discordant(int(discordant[t]), n)
        overlap = int(counts[t]) / kept
        outcomes.append((tau, overlap, bool(counts[t] != kept)))
    return outcomes


# -- weight perturbation -------------------------------------------------------


def _jitter_weight_matrix(
    scorer: LinearScoringFunction, epsilon: float, seed: int, trials: int,
    start: int = 0,
) -> np.ndarray:
    """All T perturbed weight vectors, drawn exactly like ``_jittered_scorer``.

    Trial ``t`` consumes ``trial_rng(seed, start + t)`` with one uniform
    per weight in declaration order — the identical draw sequence of the
    scalar path, so the perturbed weights match it float for float.
    ``start`` offsets the trial indices so a cluster worker computing
    the span ``[start, start + trials)`` of a larger batch draws the
    same streams the full-batch kernel would.
    """
    weights = scorer.weights
    mean_abs = float(np.mean([abs(v) for v in weights.values()]))
    matrix = np.empty((len(weights), trials), dtype=np.float64)
    for t in range(trials):
        rng = trial_rng(seed, start + t)
        for index, (attr, w) in enumerate(weights.items()):
            scale = abs(w) if w != 0.0 else mean_abs
            matrix[index, t] = w + float(rng.uniform(-epsilon, epsilon) * scale)
    return matrix


def run_perturbation_kernel(
    payload: PerturbationTrialPayload, trials: int, start: int = 0
) -> list[tuple[float, float, bool]]:
    """Trials ``[start, start + trials)`` of
    :func:`~repro.stability.perturbation._perturbation_trial`."""
    scorer = _require_plain_linear_scorer(payload.scorer)
    table = payload.table
    ids = _unique_ids(table, payload.id_column)
    weight_matrix = _jitter_weight_matrix(
        scorer, payload.epsilon, payload.seed, trials, start
    )
    # an all-zero draw would make the scalar path raise WeightError;
    # decline so it still does
    _require(
        not np.any(np.all(weight_matrix == 0.0, axis=0)),
        "a trial drew an all-zero weight vector",
    )
    base_order = _baseline_order(table, scorer)
    _verified_baseline(payload, ids, base_order, payload.k)
    columns, any_missing = _design_matrix(table, scorer)
    scores = _accumulate_scores(
        columns, weight_matrix, any_missing, scorer.missing_policy
    )
    return _movement_outcomes(base_order, _stable_orders(scores), payload.k)


# -- data uncertainty ----------------------------------------------------------


def _noise_matrices(
    payload: UncertaintyTrialPayload, trials: int, start: int = 0
) -> dict[str, np.ndarray]:
    """Per-attribute ``(n x T)`` noise, drawn exactly like ``_noisy_table``.

    Trial ``t`` consumes ``trial_rng(seed, start + t)`` with one ``normal``
    batch per noisy attribute in ``attribute_stds`` order (skipping
    zero-std attributes), each sized to the attribute's non-missing
    count — the scalar draw sequence, reproduced.  Repeated attributes
    overwrite (the scalar path re-reads the *original* column), and
    attributes outside the scoring set still consume their draws.
    """
    table = payload.table
    scoring = set(payload.scorer.attributes())
    columns: dict[str, np.ndarray] = {}
    masks: dict[str, np.ndarray] = {}
    for attr, std in payload.attribute_stds:
        if std == 0.0 or attr in columns:
            continue
        try:
            columns[attr] = table.numeric_column(attr).values
        except Exception as exc:
            raise _KernelFallback(f"noisy attribute {attr!r} unusable: {exc}") from exc
        masks[attr] = ~np.isnan(columns[attr])
    noise: dict[str, np.ndarray] = {}
    n = table.num_rows
    for t in range(trials):
        rng = trial_rng(payload.seed, start + t)
        for attr, std in payload.attribute_stds:
            if std == 0.0:
                continue
            mask = masks[attr]
            draw = rng.normal(0.0, payload.epsilon * std, size=int(mask.sum()))
            if attr not in scoring:
                continue  # draw consumed, column never scored
            matrix = noise.setdefault(attr, np.zeros((n, trials), dtype=np.float64))
            matrix[:, t][mask] = draw  # assignment: repeats overwrite
    return noise


def run_uncertainty_kernel(
    payload: UncertaintyTrialPayload, trials: int, start: int = 0
) -> list[tuple[float, float, bool]]:
    """Trials ``[start, start + trials)`` of
    :func:`~repro.stability.uncertainty._uncertainty_trial`."""
    scorer = _require_plain_linear_scorer(payload.scorer)
    table = payload.table
    ids = _unique_ids(table, payload.id_column)
    base_order = _baseline_order(table, scorer)
    _verified_baseline(payload, ids, base_order, payload.k)
    noise = _noise_matrices(payload, trials, start)
    n = table.num_rows
    scores = np.zeros((n, trials), dtype=np.float64)
    any_missing = np.zeros(n, dtype=bool)
    for attr, weight in scorer.weights.items():
        try:
            column = table.numeric_column(attr).values
        except Exception as exc:
            raise _KernelFallback(f"scoring attribute {attr!r} unusable: {exc}") from exc
        missing = np.isnan(column)
        any_missing |= missing
        if attr in noise:
            values = column[:, None] + noise[attr]
            values[missing, :] = 0.0
            scores += weight * values
        else:
            values = column.copy()
            values[missing] = 0.0
            scores += weight * values[:, None]
    if scorer.missing_policy == "propagate":
        scores[any_missing, :] = np.nan
    return _movement_outcomes(base_order, _stable_orders(scores), payload.k)


# -- per-attribute stability ---------------------------------------------------


def run_attribute_kernel(
    payload: AttributeTrialPayload, trials: int, start: int = 0
) -> list[bool]:
    """Trials ``[start, start + trials)`` of
    :func:`~repro.stability.per_attribute._attribute_trial`."""
    scorer = _require_plain_linear_scorer(payload.scorer)
    table = payload.table
    weights = scorer.weights
    _require(
        payload.attribute in weights,
        f"jittered attribute {payload.attribute!r} not in the scorer",
    )
    n = table.num_rows
    _require(n >= 1, "table has no rows")
    _require(payload.k >= 1, f"k must be >= 1, got {payload.k}")
    deltas = np.empty(trials, dtype=np.float64)
    for t in range(trials):
        rng = trial_rng(payload.seed, start + t)
        deltas[t] = float(
            rng.uniform(-payload.epsilon, payload.epsilon) * payload.scale
        )
    matrix = np.empty((len(weights), trials), dtype=np.float64)
    for index, (attr, w) in enumerate(weights.items()):
        if attr == payload.attribute:
            matrix[index, :] = [w + float(delta) for delta in deltas]
        else:
            matrix[index, :] = w
    _require(
        not np.any(np.all(matrix == 0.0, axis=0)),
        "a trial drew an all-zero weight vector",
    )
    if payload.id_column is None:
        # positional ids: every ranking's top-k id set is {1..min(k, n)},
        # so the change flag is one table-independent set comparison
        top = set(range(1, min(payload.k, n) + 1))
        return [bool(top != set(payload.baseline_top))] * trials
    ids = _unique_ids(table, payload.id_column)
    columns, any_missing = _design_matrix(table, scorer)
    scores = _accumulate_scores(columns, matrix, any_missing, scorer.missing_policy)
    orders = _stable_orders(scores)
    member = np.fromiter(
        (value in payload.baseline_top for value in ids), dtype=bool, count=n
    )
    kept = min(payload.k, n)
    counts = member[orders[:kept, :]].sum(axis=0)
    baseline_size = len(set(payload.baseline_top))
    return [
        bool(int(count) != kept or baseline_size != kept) for count in counts
    ]


# -- dispatch ------------------------------------------------------------------

#: scalar trial function -> (payload type, batch kernel)
_KERNELS: dict[Callable, tuple[type, Callable]] = {
    _perturbation_trial: (PerturbationTrialPayload, run_perturbation_kernel),
    _uncertainty_trial: (UncertaintyTrialPayload, run_uncertainty_kernel),
    _attribute_trial: (AttributeTrialPayload, run_attribute_kernel),
}


def kernel_for(fn: Callable) -> Callable | None:
    """The batch kernel registered for a scalar trial function, if any."""
    entry = _KERNELS.get(fn)
    return entry[1] if entry else None


def dispatch_kernel(
    fn: Callable, payload: Any, trials: int, start: int = 0
) -> tuple[list | None, str | None]:
    """Run the batch kernel for ``(fn, payload)``: ``(results, None)``.

    Returns ``(None, reason)`` when no kernel matches or the matching
    kernel declines the payload — the caller must then run the scalar
    path, which either produces the identical results or raises the
    error the kernel could not reproduce.  ``start`` offsets the trial
    indices, so a cluster worker can vectorize the span
    ``[start, start + trials)`` of a sharded batch.
    """
    entry = _KERNELS.get(fn)
    if entry is None:
        name = getattr(fn, "__name__", repr(fn))
        return None, f"no vectorized kernel for trial function {name!r}"
    payload_type, kernel = entry
    if not isinstance(payload, payload_type):
        return None, (
            f"payload {type(payload).__name__} does not match "
            f"{payload_type.__name__}"
        )
    try:
        return kernel(payload, trials, start), None
    except _KernelFallback as fallback:
        return None, str(fallback)
    except Exception as exc:  # the scalar rerun reproduces or explains it
        return None, f"kernel error ({type(exc).__name__}: {exc})"
