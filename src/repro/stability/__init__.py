"""Stability estimators (the Stability widget's engine).

"An unstable ranking is one where slight changes to the data (e.g., due
to uncertainty and noise), or to the methodology (e.g., by slightly
adjusting the weights in a score-based ranker) could lead to a
significant change in the output.  This widget reports a stability
score, as a single number that indicates the extent of the change
required for the ranking to change" (paper §2.2).

Three estimators, matching the paper's three framings:

- :mod:`repro.stability.slope` — the detailed widget of Figure 2: the
  slope of a line fit to the score distribution at the top-10 and
  over-all, with the 0.25 instability threshold;
- :mod:`repro.stability.perturbation` — "slightly adjusting the
  weights": Monte-Carlo weight jitter, reporting how far the ranking
  moves and the smallest jitter that changes the top-k;
- :mod:`repro.stability.uncertainty` — "a model of uncertainty in the
  data": attribute noise injection with the same movement metrics.

The two Monte-Carlo estimators (and the per-attribute variant) run
their trials through pluggable backends; when the scorer is a plain
linear one, the ``vectorized`` backend computes the entire trial batch
as array operations via :mod:`repro.stability.kernels` —
byte-identical to the serial loop, minus the per-trial Python.
"""

from repro.stability.gaps import GapReport, score_gap_analysis
from repro.stability.kernels import dispatch_kernel
from repro.stability.montecarlo import run_trials, trial_rng
from repro.stability.per_attribute import AttributeStability, per_attribute_stability
from repro.stability.perturbation import (
    PerturbationOutcome,
    WeightPerturbationStability,
    minimal_change_epsilon,
)
from repro.stability.slope import SlopeStability, SlopeStabilityReport, slope_stability
from repro.stability.uncertainty import DataUncertaintyStability

__all__ = [
    "SlopeStability",
    "SlopeStabilityReport",
    "slope_stability",
    "WeightPerturbationStability",
    "PerturbationOutcome",
    "minimal_change_epsilon",
    "DataUncertaintyStability",
    "GapReport",
    "score_gap_analysis",
    "AttributeStability",
    "per_attribute_stability",
    "run_trials",
    "trial_rng",
    "dispatch_kernel",
]
