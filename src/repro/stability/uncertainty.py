"""Data-uncertainty stability: "a model of uncertainty in the data".

The paper's third stability framing perturbs the *data* instead of the
weights: each numeric scoring attribute gets zero-mean Gaussian noise
whose standard deviation is ``epsilon`` times the attribute's own
standard deviation (so a 5% epsilon means "measurement error on the
order of 5% of natural variation").  Re-ranking under noise yields the
same movement metrics as the weight-perturbation estimator, and the two
are directly comparable in the A1 ablation benchmark.
"""

from __future__ import annotations

from concurrent.futures import Executor
from functools import partial

import numpy as np

from repro.errors import StabilityError
from repro.ranking.compare import kendall_tau_rankings, top_k_overlap
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import ScoringFunction
from repro.stability.montecarlo import run_trials, trial_rng
from repro.stability.perturbation import PerturbationOutcome
from repro.tabular.column import NumericColumn
from repro.tabular.table import Table

__all__ = ["DataUncertaintyStability"]


class DataUncertaintyStability:
    """Monte-Carlo attribute-noise stability.

    Works with any :class:`~repro.ranking.scoring.ScoringFunction`
    (not just linear ones): noise is injected into the table, not the
    weights.

    Parameters
    ----------
    table:
        The (already preprocessed) data being ranked.
    scorer:
        The scoring function under audit.
    id_column:
        Column identifying items.
    k:
        Top-k size whose composition defines "the ranking changed".
    trials:
        Monte-Carlo draws per epsilon.  Each trial draws from its own
        ``[seed, trial]`` RNG stream, so outcomes do not depend on
        execution order and the loop parallelizes deterministically.
    seed:
        RNG seed; fixed by default so labels are reproducible.
    executor:
        Optional :class:`concurrent.futures.Executor`; when given, the
        trials of each ``assess_at`` fan out over its workers with
        results identical to the serial path.
    """

    name = "data uncertainty"

    def __init__(
        self,
        table: Table,
        scorer: ScoringFunction,
        id_column: str,
        k: int = 10,
        trials: int = 50,
        seed: int = 20180610,
        executor: Executor | None = None,
    ):
        if k < 1:
            raise StabilityError(f"k must be >= 1, got {k}")
        if trials < 1:
            raise StabilityError(f"trials must be >= 1, got {trials}")
        if id_column not in table:
            raise StabilityError(f"id column {id_column!r} not in table")
        self._table = table
        self._scorer = scorer
        self._id_column = id_column
        self._k = k
        self._trials = trials
        self._seed = seed
        self._executor = executor
        self._baseline = rank_table(table, scorer, id_column)
        self._baseline_top = frozenset(self._baseline.item_ids()[: self._k])
        # pre-compute each scoring attribute's natural scale
        self._attribute_stds: dict[str, float] = {}
        for attr in scorer.attributes():
            values = table.numeric_column(attr).dropna_values()
            if values.size == 0:
                raise StabilityError(
                    f"scoring attribute {attr!r} has no non-missing values"
                )
            self._attribute_stds[attr] = float(values.std(ddof=0))

    @property
    def baseline(self) -> Ranking:
        """The noise-free ranking."""
        return self._baseline

    def _noisy_table(self, epsilon: float, rng: np.random.Generator) -> Table:
        noisy = self._table
        for attr, std in self._attribute_stds.items():
            if std == 0.0:
                continue  # constant attribute: noise would invent variation
            column = self._table.numeric_column(attr)
            values = column.values.copy()
            mask = ~np.isnan(values)
            values[mask] += rng.normal(0.0, epsilon * std, size=int(mask.sum()))
            noisy = noisy.with_column(NumericColumn(attr, values))
        return noisy

    def _run_trial(self, epsilon: float, trial: int) -> tuple[float, float, bool]:
        rng = trial_rng(self._seed, trial)
        perturbed = rank_table(
            self._noisy_table(epsilon, rng), self._scorer, self._id_column
        )
        return (
            kendall_tau_rankings(self._baseline, perturbed),
            top_k_overlap(self._baseline, perturbed, self._k),
            set(perturbed.item_ids()[: self._k]) != self._baseline_top,
        )

    def assess_at(self, epsilon: float) -> PerturbationOutcome:
        """Run the Monte-Carlo loop at one noise magnitude."""
        if epsilon < 0.0:
            raise StabilityError(f"epsilon must be non-negative, got {epsilon}")
        outcomes = run_trials(
            partial(self._run_trial, epsilon), self._trials, self._executor
        )
        taus = [tau for tau, _, _ in outcomes]
        overlaps = [overlap for _, overlap, _ in outcomes]
        changed = sum(moved for _, _, moved in outcomes)
        return PerturbationOutcome(
            epsilon=float(epsilon),
            mean_kendall_tau=float(np.mean(taus)),
            mean_top_k_overlap=float(np.mean(overlaps)),
            change_probability=changed / self._trials,
            trials=self._trials,
        )

    def profile(self, epsilons: list[float] | None = None) -> list[PerturbationOutcome]:
        """Outcomes over a sweep of noise magnitudes (default 1%..50%)."""
        if epsilons is None:
            epsilons = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5]
        if not epsilons:
            raise StabilityError("profile needs at least one epsilon")
        return [self.assess_at(eps) for eps in epsilons]

    def minimal_change_epsilon(
        self,
        probability: float = 0.5,
        lo: float = 0.0,
        hi: float = 1.0,
        iterations: int = 12,
    ) -> float:
        """Smallest noise level at which P[top-k changes] >= ``probability``."""
        if not 0.0 < probability <= 1.0:
            raise StabilityError(f"probability must be in (0, 1], got {probability}")
        if not 0.0 <= lo < hi:
            raise StabilityError(f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
        if self.assess_at(hi).change_probability < probability:
            return hi
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if self.assess_at(mid).change_probability >= probability:
                hi = mid
            else:
                lo = mid
        return hi
