"""Data-uncertainty stability: "a model of uncertainty in the data".

The paper's third stability framing perturbs the *data* instead of the
weights: each numeric scoring attribute gets zero-mean Gaussian noise
whose standard deviation is ``epsilon`` times the attribute's own
standard deviation (so a 5% epsilon means "measurement error on the
order of 5% of natural variation").  Re-ranking under noise yields the
same movement metrics as the weight-perturbation estimator, and the two
are directly comparable in the A1 ablation benchmark.

As with the other estimators, the trial is a module-level function
over a plain payload so any :class:`~repro.engine.backends.TrialBackend`
(threads or processes) reproduces the serial results byte-for-byte —
and the ``vectorized`` backend batches the whole value-noise tensor
into one array program
(:func:`repro.stability.kernels.run_uncertainty_kernel`) whenever the
scorer is a plain linear one.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StabilityError
from repro.ranking.compare import kendall_tau_ids, top_k_overlap_ids
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import ScoringFunction
from repro.stability.montecarlo import backend_for, run_payload_trials, trial_rng
from repro.stability.perturbation import PerturbationOutcome
from repro.tabular.column import NumericColumn
from repro.tabular.table import Table

if TYPE_CHECKING:
    from repro.engine.backends import TrialBackend

__all__ = ["DataUncertaintyStability", "UncertaintyTrialPayload"]


@dataclass(frozen=True)
class UncertaintyTrialPayload:
    """Everything one attribute-noise trial needs, as picklable data.

    ``attribute_stds`` keeps the scorer's attribute order: noise is
    drawn per attribute *in that order*, which is what keeps parallel
    results byte-identical to serial ones.  The baseline travels as its
    item-id sequence, not a full :class:`Ranking` — shipping the latter
    would pickle the table a second time per chunk.
    """

    table: Table
    scorer: ScoringFunction
    id_column: str
    baseline_ids: tuple
    baseline_top: frozenset
    attribute_stds: tuple[tuple[str, float], ...]
    k: int
    epsilon: float
    seed: int


def _noisy_table(
    table: Table,
    attribute_stds: tuple[tuple[str, float], ...],
    epsilon: float,
    rng: np.random.Generator,
) -> Table:
    noisy = table
    for attr, std in attribute_stds:
        if std == 0.0:
            continue  # constant attribute: noise would invent variation
        column = table.numeric_column(attr)
        values = column.values.copy()
        mask = ~np.isnan(values)
        values[mask] += rng.normal(0.0, epsilon * std, size=int(mask.sum()))
        noisy = noisy.with_column(NumericColumn(attr, values))
    return noisy


def _uncertainty_trial(
    payload: UncertaintyTrialPayload, trial: int
) -> tuple[float, float, bool]:
    """One Monte-Carlo draw; module-level so a process backend can ship it."""
    rng = trial_rng(payload.seed, trial)
    perturbed = rank_table(
        _noisy_table(payload.table, payload.attribute_stds, payload.epsilon, rng),
        payload.scorer,
        payload.id_column,
    )
    perturbed_ids = perturbed.item_ids()
    return (
        kendall_tau_ids(payload.baseline_ids, perturbed_ids),
        top_k_overlap_ids(payload.baseline_ids, perturbed_ids, payload.k),
        set(perturbed_ids[: payload.k]) != payload.baseline_top,
    )


class DataUncertaintyStability:
    """Monte-Carlo attribute-noise stability.

    Works with any :class:`~repro.ranking.scoring.ScoringFunction`
    (not just linear ones): noise is injected into the table, not the
    weights.

    Parameters
    ----------
    table:
        The (already preprocessed) data being ranked.
    scorer:
        The scoring function under audit.
    id_column:
        Column identifying items.
    k:
        Top-k size whose composition defines "the ranking changed".
    trials:
        Monte-Carlo draws per epsilon.  Each trial draws from its own
        ``[seed, trial]`` RNG stream, so outcomes do not depend on
        execution order and the loop parallelizes deterministically.
    seed:
        RNG seed; fixed by default so labels are reproducible.
    executor:
        Optional :class:`concurrent.futures.Executor`; when given (and
        ``backend`` is not), the trials of each ``assess_at`` fan out
        over its workers with results identical to the serial path.
    backend:
        Optional :class:`~repro.engine.backends.TrialBackend`; takes
        precedence over ``executor`` and may cross process boundaries
        (the scorer must then be picklable, which the repo's scorers
        are).
    """

    name = "data uncertainty"

    def __init__(
        self,
        table: Table,
        scorer: ScoringFunction,
        id_column: str,
        k: int = 10,
        trials: int = 50,
        seed: int = 20180610,
        executor: Executor | None = None,
        backend: "TrialBackend | None" = None,
    ):
        if k < 1:
            raise StabilityError(f"k must be >= 1, got {k}")
        if trials < 1:
            raise StabilityError(f"trials must be >= 1, got {trials}")
        if id_column not in table:
            raise StabilityError(f"id column {id_column!r} not in table")
        self._table = table
        self._scorer = scorer
        self._id_column = id_column
        self._k = k
        self._trials = trials
        self._seed = seed
        self._backend = backend_for(executor, backend)
        self._baseline = rank_table(table, scorer, id_column)
        self._baseline_top = frozenset(self._baseline.item_ids()[: self._k])
        # pre-compute each scoring attribute's natural scale
        stds: list[tuple[str, float]] = []
        for attr in scorer.attributes():
            values = table.numeric_column(attr).dropna_values()
            if values.size == 0:
                raise StabilityError(
                    f"scoring attribute {attr!r} has no non-missing values"
                )
            stds.append((attr, float(values.std(ddof=0))))
        self._attribute_stds: tuple[tuple[str, float], ...] = tuple(stds)

    @property
    def baseline(self) -> Ranking:
        """The noise-free ranking."""
        return self._baseline

    def _payload_at(self, epsilon: float) -> UncertaintyTrialPayload:
        return UncertaintyTrialPayload(
            table=self._table,
            scorer=self._scorer,
            id_column=self._id_column,
            baseline_ids=tuple(self._baseline.item_ids()),
            baseline_top=self._baseline_top,
            attribute_stds=self._attribute_stds,
            k=self._k,
            epsilon=float(epsilon),
            seed=self._seed,
        )

    def _run_trial(self, epsilon: float, trial: int) -> tuple[float, float, bool]:
        return _uncertainty_trial(self._payload_at(epsilon), trial)

    def assess_at(self, epsilon: float) -> PerturbationOutcome:
        """Run the Monte-Carlo loop at one noise magnitude."""
        if epsilon < 0.0:
            raise StabilityError(f"epsilon must be non-negative, got {epsilon}")
        outcomes = run_payload_trials(
            _uncertainty_trial, self._payload_at(epsilon), self._trials,
            self._backend,
        )
        taus = [tau for tau, _, _ in outcomes]
        overlaps = [overlap for _, overlap, _ in outcomes]
        changed = sum(moved for _, _, moved in outcomes)
        return PerturbationOutcome(
            epsilon=float(epsilon),
            mean_kendall_tau=float(np.mean(taus)),
            mean_top_k_overlap=float(np.mean(overlaps)),
            change_probability=changed / self._trials,
            trials=self._trials,
        )

    def profile(self, epsilons: list[float] | None = None) -> list[PerturbationOutcome]:
        """Outcomes over a sweep of noise magnitudes (default 1%..50%)."""
        if epsilons is None:
            epsilons = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5]
        if not epsilons:
            raise StabilityError("profile needs at least one epsilon")
        return [self.assess_at(eps) for eps in epsilons]

    def minimal_change_epsilon(
        self,
        probability: float = 0.5,
        lo: float = 0.0,
        hi: float = 1.0,
        iterations: int = 12,
    ) -> float:
        """Smallest noise level at which P[top-k changes] >= ``probability``."""
        if not 0.0 < probability <= 1.0:
            raise StabilityError(f"probability must be in (0, 1], got {probability}")
        if not 0.0 <= lo < hi:
            raise StabilityError(f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
        if self.assess_at(hi).change_probability < probability:
            return hi
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if self.assess_at(mid).change_probability >= probability:
                hi = mid
            else:
                lo = mid
        return hi
