"""Score-gap analysis: the most literal stability reading.

"A score distribution is unstable if scores of items in adjacent ranks
are close to each other, and so a very small change in scores will lead
to a change in the ranking" (paper §2.2).  The slope fit summarizes the
whole distribution; this module reports the gaps themselves:

- adjacent-gap statistics at the top-k and over-all;
- the *swap margin* — half the smallest adjacent gap, which is exactly
  "the extent of the change required for the ranking to change": add
  that much to the lower item (and subtract it from the upper) and the
  pair swaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StabilityError
from repro.ranking.ranker import Ranking

__all__ = ["GapReport", "score_gap_analysis"]


@dataclass(frozen=True)
class GapReport:
    """Adjacent-gap statistics for one segment of a ranking.

    All gaps are non-negative; positions are 1-based ranks of the upper
    item of the tightest pair.  ``relative`` values divide by the score
    range of the *whole* ranking, giving scale-free numbers comparable
    across recipes (0.01 = the tightest pair is within 1% of the score
    range).
    """

    segment: str
    num_gaps: int
    min_gap: float
    median_gap: float
    max_gap: float
    tightest_pair_rank: int
    swap_margin: float
    min_gap_relative: float
    swap_margin_relative: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "segment": self.segment,
            "num_gaps": self.num_gaps,
            "min_gap": self.min_gap,
            "median_gap": self.median_gap,
            "max_gap": self.max_gap,
            "tightest_pair_rank": self.tightest_pair_rank,
            "swap_margin": self.swap_margin,
            "min_gap_relative": self.min_gap_relative,
            "swap_margin_relative": self.swap_margin_relative,
        }


def _segment_report(scores: np.ndarray, segment: str, span: float) -> GapReport:
    gaps = -np.diff(scores)  # scores are non-increasing
    gaps = np.maximum(gaps, 0.0)  # guard float dust on ties
    tightest = int(np.argmin(gaps))
    min_gap = float(gaps[tightest])
    return GapReport(
        segment=segment,
        num_gaps=int(gaps.size),
        min_gap=min_gap,
        median_gap=float(np.median(gaps)),
        max_gap=float(gaps.max()),
        tightest_pair_rank=tightest + 1,
        swap_margin=min_gap / 2.0,
        min_gap_relative=min_gap / span if span > 0 else 0.0,
        swap_margin_relative=(min_gap / 2.0) / span if span > 0 else 0.0,
    )


def score_gap_analysis(ranking: Ranking, k: int = 10) -> dict[str, GapReport]:
    """Adjacent-gap reports for the top-k segment and the whole ranking.

    Returns ``{"top_k": ..., "overall": ...}``.  The overall swap margin
    is the single number the overview widget's "extent of change
    required" phrasing describes: the smallest score perturbation that
    provably reorders some adjacent pair.

    Raises
    ------
    StabilityError
        On rankings with fewer than 2 items or NaN scores.
    """
    if k < 2:
        raise StabilityError(f"gap analysis needs k >= 2, got {k}")
    scores = ranking.scores
    if scores.size < 2:
        raise StabilityError(
            f"gap analysis needs at least 2 items, got {scores.size}"
        )
    if np.isnan(scores).any():
        raise StabilityError(
            "gap analysis is undefined with NaN scores; drop unscored items first"
        )
    span = float(scores.max() - scores.min())
    k = min(k, scores.size)
    return {
        "top_k": _segment_report(scores[:k], f"top-{k}", span),
        "overall": _segment_report(scores, "overall", span),
    }
