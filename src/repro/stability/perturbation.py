"""Weight-perturbation stability: "slightly adjusting the weights".

The Monte-Carlo estimator jitters every scoring weight by a relative
magnitude ``epsilon``, re-ranks, and measures how far the ranking moved
(Kendall tau, top-k overlap, probability that the top-k set changed at
all).  :func:`minimal_change_epsilon` then inverts the profile: the
smallest jitter at which the top-k is more likely than not to change —
a direct reading of the paper's "extent of the change required for the
ranking to change".

The trial itself is a module-level function over a plain payload
(:func:`_perturbation_trial` / :class:`PerturbationTrialPayload`), so
the loop can run on any :class:`~repro.engine.backends.TrialBackend` —
including across processes — with byte-identical results.  On the
``vectorized`` backend the whole batch collapses into one array
program (:func:`repro.stability.kernels.run_perturbation_kernel`):
same RNG streams, same accumulation order, same bytes, no per-trial
re-ranking.
"""

from __future__ import annotations

from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import StabilityError
from repro.ranking.compare import kendall_tau_ids, top_k_overlap_ids
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.stability.montecarlo import backend_for, run_payload_trials, trial_rng
from repro.tabular.table import Table

if TYPE_CHECKING:
    from repro.engine.backends import TrialBackend

__all__ = [
    "PerturbationOutcome",
    "PerturbationTrialPayload",
    "WeightPerturbationStability",
    "minimal_change_epsilon",
]


@dataclass(frozen=True)
class PerturbationOutcome:
    """Monte-Carlo summary at one perturbation magnitude.

    Attributes
    ----------
    epsilon:
        Relative perturbation magnitude (0.1 = weights jittered by up
        to ±10%).
    mean_kendall_tau:
        Average rank correlation between original and perturbed
        rankings (1.0 = never moves).
    mean_top_k_overlap:
        Average fraction of the original top-k retained.
    change_probability:
        Fraction of trials in which the top-k *set* changed.
    trials:
        Number of Monte-Carlo draws.
    """

    epsilon: float
    mean_kendall_tau: float
    mean_top_k_overlap: float
    change_probability: float
    trials: int

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict form for serialization."""
        return {
            "epsilon": self.epsilon,
            "mean_kendall_tau": self.mean_kendall_tau,
            "mean_top_k_overlap": self.mean_top_k_overlap,
            "change_probability": self.change_probability,
            "trials": self.trials,
        }


@dataclass(frozen=True)
class PerturbationTrialPayload:
    """Everything one weight-jitter trial needs, as picklable plain data.

    The scorer travels as the object itself (the repo's scorers pickle
    cleanly), so subclass behaviour survives the process boundary.  The
    jitter draws one uniform per weight in the scorer's declaration
    order, which is what keeps parallel results byte-identical to
    serial ones.  The baseline travels as its item-id sequence, not a
    full :class:`Ranking` — shipping the latter would pickle the table
    a second time per chunk.
    """

    table: Table
    scorer: LinearScoringFunction
    id_column: str
    baseline_ids: tuple
    baseline_top: frozenset
    k: int
    epsilon: float
    seed: int


def _jittered_scorer(
    scorer: LinearScoringFunction, epsilon: float, rng: np.random.Generator
) -> LinearScoringFunction:
    weights = scorer.weights
    deltas = {
        attr: float(rng.uniform(-epsilon, epsilon) * abs(w)) if w != 0.0
        # zero weights jitter on the scale of the average weight, so a
        # zeroed-out attribute can still re-enter under perturbation
        else float(
            rng.uniform(-epsilon, epsilon)
            * float(np.mean([abs(v) for v in weights.values()]))
        )
        for attr, w in weights.items()
    }
    return scorer.perturbed(deltas)


def _perturbation_trial(
    payload: PerturbationTrialPayload, trial: int
) -> tuple[float, float, bool]:
    """One Monte-Carlo draw; module-level so a process backend can ship it."""
    rng = trial_rng(payload.seed, trial)
    perturbed = rank_table(
        payload.table, _jittered_scorer(payload.scorer, payload.epsilon, rng),
        payload.id_column,
    )
    perturbed_ids = perturbed.item_ids()
    return (
        kendall_tau_ids(payload.baseline_ids, perturbed_ids),
        top_k_overlap_ids(payload.baseline_ids, perturbed_ids, payload.k),
        set(perturbed_ids[: payload.k]) != payload.baseline_top,
    )


class WeightPerturbationStability:
    """Monte-Carlo weight-jitter stability for linear scoring functions.

    Parameters
    ----------
    table:
        The (already preprocessed) data being ranked.
    scorer:
        The linear scoring function under audit.
    id_column:
        Column identifying items (needed to track movement).
    k:
        Top-k size whose composition defines "the ranking changed".
    trials:
        Monte-Carlo draws per epsilon.  Each trial draws from its own
        ``[seed, trial]`` RNG stream, so outcomes do not depend on
        execution order and the loop parallelizes deterministically.
    seed:
        RNG seed; fixed by default so labels are reproducible.
    executor:
        Optional :class:`concurrent.futures.Executor`; when given (and
        ``backend`` is not), the trials of each ``assess_at`` fan out
        over its workers with results identical to the serial path.
    backend:
        Optional :class:`~repro.engine.backends.TrialBackend`; takes
        precedence over ``executor`` and may cross process boundaries.
    """

    name = "weight perturbation"

    def __init__(
        self,
        table: Table,
        scorer: LinearScoringFunction,
        id_column: str,
        k: int = 10,
        trials: int = 50,
        seed: int = 20180610,
        executor: Executor | None = None,
        backend: "TrialBackend | None" = None,
    ):
        if k < 1:
            raise StabilityError(f"k must be >= 1, got {k}")
        if trials < 1:
            raise StabilityError(f"trials must be >= 1, got {trials}")
        if id_column not in table:
            raise StabilityError(f"id column {id_column!r} not in table")
        self._table = table
        self._scorer = scorer
        self._id_column = id_column
        self._k = k
        self._trials = trials
        self._seed = seed
        self._backend = backend_for(executor, backend)
        self._baseline = rank_table(table, scorer, id_column)
        self._baseline_top = frozenset(self._baseline.item_ids()[: self._k])

    @property
    def baseline(self) -> Ranking:
        """The unperturbed ranking."""
        return self._baseline

    def _payload_at(self, epsilon: float) -> PerturbationTrialPayload:
        return PerturbationTrialPayload(
            table=self._table,
            scorer=self._scorer,
            id_column=self._id_column,
            baseline_ids=tuple(self._baseline.item_ids()),
            baseline_top=self._baseline_top,
            k=self._k,
            epsilon=float(epsilon),
            seed=self._seed,
        )

    def _run_trial(self, epsilon: float, trial: int) -> tuple[float, float, bool]:
        return _perturbation_trial(self._payload_at(epsilon), trial)

    def assess_at(self, epsilon: float) -> PerturbationOutcome:
        """Run the Monte-Carlo loop at one perturbation magnitude."""
        if epsilon < 0.0:
            raise StabilityError(f"epsilon must be non-negative, got {epsilon}")
        outcomes = run_payload_trials(
            _perturbation_trial, self._payload_at(epsilon), self._trials,
            self._backend,
        )
        taus = [tau for tau, _, _ in outcomes]
        overlaps = [overlap for _, overlap, _ in outcomes]
        changed = sum(moved for _, _, moved in outcomes)
        return PerturbationOutcome(
            epsilon=float(epsilon),
            mean_kendall_tau=float(np.mean(taus)),
            mean_top_k_overlap=float(np.mean(overlaps)),
            change_probability=changed / self._trials,
            trials=self._trials,
        )

    def profile(self, epsilons: list[float] | None = None) -> list[PerturbationOutcome]:
        """Outcomes over a sweep of magnitudes (default 1%..50%)."""
        if epsilons is None:
            epsilons = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5]
        if not epsilons:
            raise StabilityError("profile needs at least one epsilon")
        return [self.assess_at(eps) for eps in epsilons]

    def minimal_change_epsilon(
        self,
        probability: float = 0.5,
        lo: float = 0.0,
        hi: float = 1.0,
        iterations: int = 12,
    ) -> float:
        """Smallest epsilon at which P[top-k changes] >= ``probability``.

        Bisection on the (monotone in expectation) change-probability
        curve.  Returns ``hi`` when even the largest jitter rarely
        changes the ranking — an extremely stable ranking.
        """
        if not 0.0 < probability <= 1.0:
            raise StabilityError(
                f"probability must be in (0, 1], got {probability}"
            )
        if not 0.0 <= lo < hi:
            raise StabilityError(f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
        if self.assess_at(hi).change_probability < probability:
            return hi
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if self.assess_at(mid).change_probability >= probability:
                hi = mid
            else:
                lo = mid
        return hi


def minimal_change_epsilon(
    table: Table,
    scorer: LinearScoringFunction,
    id_column: str,
    k: int = 10,
    trials: int = 50,
    probability: float = 0.5,
    seed: int = 20180610,
) -> float:
    """Functional shortcut: the widget's "extent of change required".

    See :meth:`WeightPerturbationStability.minimal_change_epsilon`.
    """
    estimator = WeightPerturbationStability(
        table, scorer, id_column, k=k, trials=trials, seed=seed
    )
    return estimator.minimal_change_epsilon(probability=probability)
