"""Rank-aware set fairness measures rND, rKL, rRD (Yang & Stoyanovich [13]).

These are the measures of *"Measuring Fairness in Ranked Outputs"*
(SSDBM 2017), the technical basis the paper cites for its fairness
widget.  Each walks the ranking at discrete cut points (every ``step``
positions, 10 by default), compares the protected share in the prefix
against the overall share, discounts by ``1/log2(i)``, and normalizes
by the value attained by a maximally unfair ranking of the same
composition, giving a score in [0, 1] — 0 is perfectly fair.

- **rND** — normalized discounted difference: ``|count_i/i - P/N|``;
- **rKL** — normalized discounted KL-divergence between the prefix and
  overall group distributions;
- **rRD** — normalized discounted ratio difference (protected :
  non-protected odds); meaningful only when the protected group is the
  minority, matching [13].

Unlike the three widget measures these are *scores*, not hypothesis
tests; the label uses them in the detailed Fairness view and the
benchmark harness uses them as a graded ground-truth signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FairnessConfigError

__all__ = [
    "rnd",
    "rkl",
    "rrd",
    "set_difference_scores",
    "NormalizedFairnessScores",
]


def _validated_labels(labels) -> np.ndarray:
    arr = np.asarray(labels, dtype=bool)
    if arr.ndim != 1:
        raise FairnessConfigError(
            f"labels must be a 1-d boolean array, got shape {arr.shape}"
        )
    if arr.size < 2:
        raise FairnessConfigError("rank-aware measures need at least 2 items")
    protected = int(arr.sum())
    if protected == 0 or protected == arr.size:
        raise FairnessConfigError(
            "rank-aware measures need both protected and non-protected items"
        )
    return arr


def _cut_points(n: int, step: int) -> range:
    if step < 1:
        raise FairnessConfigError(f"cut-point step must be >= 1, got {step}")
    # Start at the first cut point >= step but always below n; include n's
    # predecessor multiples only (i = n carries no information: the prefix
    # equals the whole ranking).
    return range(step, n, step)


def _discount(i: int) -> float:
    # positions start at `step` >= 1; log2(1) = 0 would blow up, so cut
    # points at i=1 use the i=2 discount (convention from [13]'s code).
    return 1.0 / math.log2(max(i, 2))


def _raw_nd(labels: np.ndarray, step: int) -> float:
    n = labels.size
    overall = labels.sum() / n
    counts = np.cumsum(labels)
    total = 0.0
    for i in _cut_points(n, step):
        total += _discount(i) * abs(counts[i - 1] / i - overall)
    return total


def _kl_binary(p_hat: float, q: float) -> float:
    """KL divergence between Bernoulli(p_hat) and Bernoulli(q), q in (0,1)."""
    term = 0.0
    if p_hat > 0.0:
        term += p_hat * math.log(p_hat / q)
    if p_hat < 1.0:
        term += (1.0 - p_hat) * math.log((1.0 - p_hat) / (1.0 - q))
    return term


def _raw_kl(labels: np.ndarray, step: int) -> float:
    n = labels.size
    overall = labels.sum() / n
    counts = np.cumsum(labels)
    total = 0.0
    for i in _cut_points(n, step):
        total += _discount(i) * _kl_binary(counts[i - 1] / i, overall)
    return total


def _ratio(protected: float, non_protected: float) -> float:
    # convention from [13]: an empty denominator contributes 0
    if non_protected == 0:
        return 0.0
    return protected / non_protected


def _raw_rd(labels: np.ndarray, step: int) -> float:
    n = labels.size
    protected_total = int(labels.sum())
    overall_ratio = _ratio(protected_total, n - protected_total)
    counts = np.cumsum(labels)
    total = 0.0
    for i in _cut_points(n, step):
        prefix_protected = int(counts[i - 1])
        prefix_ratio = _ratio(prefix_protected, i - prefix_protected)
        total += _discount(i) * abs(prefix_ratio - overall_ratio)
    return total


def _extreme_labelings(n: int, protected: int) -> tuple[np.ndarray, np.ndarray]:
    """All-protected-first and all-protected-last label vectors."""
    first = np.zeros(n, dtype=bool)
    first[:protected] = True
    last = np.zeros(n, dtype=bool)
    last[n - protected:] = True
    return first, last


def _normalized(raw_fn, labels: np.ndarray, step: int) -> float:
    raw = raw_fn(labels, step)
    first, last = _extreme_labelings(labels.size, int(labels.sum()))
    normalizer = max(raw_fn(first, step), raw_fn(last, step))
    if normalizer == 0.0:
        # no cut point exists (n <= step): the measure carries no signal
        return 0.0
    return min(1.0, raw / normalizer)


def rnd(labels, step: int = 10) -> float:
    """Normalized discounted difference (rND) in [0, 1]; 0 = fair.

    >>> import numpy as np
    >>> fair = np.tile([True, False], 50)
    >>> rnd(fair) < 0.05
    True
    """
    return _normalized(_raw_nd, _validated_labels(labels), step)


def rkl(labels, step: int = 10) -> float:
    """Normalized discounted KL-divergence (rKL) in [0, 1]; 0 = fair."""
    return _normalized(_raw_kl, _validated_labels(labels), step)


def rrd(labels, step: int = 10) -> float:
    """Normalized discounted ratio difference (rRD) in [0, 1]; 0 = fair.

    Per [13], rRD is meaningful only when the protected group is the
    minority; a majority protected group raises
    :class:`~repro.errors.FairnessConfigError`.
    """
    arr = _validated_labels(labels)
    if int(arr.sum()) * 2 > arr.size:
        raise FairnessConfigError(
            "rRD requires the protected group to be the minority "
            f"({int(arr.sum())}/{arr.size} items are protected)"
        )
    return _normalized(_raw_rd, arr, step)


@dataclass(frozen=True)
class NormalizedFairnessScores:
    """The three [13] scores for one ranking, plus the shared parameters."""

    rnd: float
    rkl: float
    rrd: float | None
    step: int
    n: int
    protected_count: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "rND": self.rnd,
            "rKL": self.rkl,
            "rRD": self.rrd,
            "step": self.step,
            "n": self.n,
            "protected_count": self.protected_count,
        }


def set_difference_scores(labels, step: int = 10) -> NormalizedFairnessScores:
    """Compute rND, rKL and (when defined) rRD together.

    rRD is ``None`` when the protected group is not the minority.
    """
    arr = _validated_labels(labels)
    protected = int(arr.sum())
    rrd_value = None
    if protected * 2 <= arr.size:
        rrd_value = _normalized(_raw_rd, arr, step)
    return NormalizedFairnessScores(
        rnd=_normalized(_raw_nd, arr, step),
        rkl=_normalized(_raw_kl, arr, step),
        rrd=rrd_value,
        step=step,
        n=int(arr.size),
        protected_count=protected,
    )
