"""Shared fairness vocabulary: protected groups, results, the measure API.

A *protected feature* is "one or several values of the sensitive
attribute" (paper §2.3) — e.g. ``gender=F``, or ``DeptSizeBin=small``.
:class:`ProtectedGroup` pins that choice down against a concrete
ranking and precomputes the membership mask in rank order; every
measure consumes the group view rather than re-reading the table.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FairnessConfigError, ProtectedGroupError
from repro.ranking.ranker import Ranking

__all__ = [
    "ProtectedGroup",
    "FairnessResult",
    "FairnessMeasure",
    "evaluate_fairness",
    "DEFAULT_ALPHA",
    "DEFAULT_TOP_K",
]

#: Significance level at which all widget measures decide fair/unfair.
DEFAULT_ALPHA = 0.05

#: The widget's headline prefix size (paper widgets contrast top-10 vs all).
DEFAULT_TOP_K = 10


class ProtectedGroup:
    """A binary protected/non-protected split of a ranking's items.

    Parameters
    ----------
    ranking:
        The ranking under audit.
    attribute:
        Name of the sensitive categorical attribute.
    category:
        The protected feature: the attribute value defining membership.

    Raises
    ------
    ProtectedGroupError
        If the group is empty or includes every item (statistical parity
        is undefined without both groups), or membership is unknown for
        some item (missing sensitive values make the audit unsound).
    """

    def __init__(self, ranking: Ranking, attribute: str, category: str):
        column = ranking.table.categorical_column(attribute)
        if category not in column.categories():
            raise ProtectedGroupError(
                f"attribute {attribute!r} has no category {category!r}; "
                f"present: {', '.join(column.categories())}"
            )
        missing = int(column.missing_mask().sum())
        if missing:
            raise ProtectedGroupError(
                f"attribute {attribute!r} has {missing} missing value(s); "
                "fairness requires known group membership for every item"
            )
        mask = column.indicator(category)
        n_protected = int(mask.sum())
        if n_protected == 0:
            raise ProtectedGroupError(
                f"protected group {attribute}={category} is empty"
            )
        if n_protected == ranking.size:
            raise ProtectedGroupError(
                f"protected group {attribute}={category} covers every item; "
                "the non-protected group is empty"
            )
        self._ranking = ranking
        self._attribute = attribute
        self._category = category
        self._mask = mask
        self._mask.setflags(write=False)

    # -- identity -------------------------------------------------------------

    @property
    def ranking(self) -> Ranking:
        """The audited ranking."""
        return self._ranking

    @property
    def attribute(self) -> str:
        """The sensitive attribute name."""
        return self._attribute

    @property
    def category(self) -> str:
        """The protected feature (attribute value)."""
        return self._category

    def label(self) -> str:
        """Human-readable ``attribute=category`` tag for the widget."""
        return f"{self._attribute}={self._category}"

    # -- membership ------------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        """Boolean membership vector in rank order (read-only)."""
        return self._mask

    @property
    def size(self) -> int:
        """Total number of ranked items."""
        return int(self._mask.shape[0])

    @property
    def protected_count(self) -> int:
        """Number of protected items in the whole ranking."""
        return int(self._mask.sum())

    @property
    def proportion(self) -> float:
        """Population share ``p`` of the protected group."""
        return self.protected_count / self.size

    def count_at(self, k: int) -> int:
        """Protected items among the top ``k`` (k clamped to the size)."""
        if k <= 0:
            raise FairnessConfigError(f"prefix size must be >= 1, got {k}")
        return int(self._mask[: min(k, self.size)].sum())

    def prefix_counts(self, k: int | None = None) -> np.ndarray:
        """Cumulative protected counts for prefixes 1..k (default: all)."""
        limit = self.size if k is None else min(k, self.size)
        if limit <= 0:
            raise FairnessConfigError(f"prefix size must be >= 1, got {limit}")
        return np.cumsum(self._mask[:limit]).astype(np.int64)

    def protected_positions(self) -> np.ndarray:
        """1-based ranks of protected items."""
        return np.flatnonzero(self._mask) + 1

    def __repr__(self) -> str:
        return (
            f"ProtectedGroup({self.label()}, {self.protected_count}/{self.size} items)"
        )


@dataclass(frozen=True)
class FairnessResult:
    """One measure's verdict on one protected group.

    Attributes
    ----------
    measure:
        Measure name as shown on the label ("FA*IR", "Proportion",
        "Pairwise").
    group_label:
        ``attribute=category`` of the audited group.
    fair:
        The fair/unfair verdict at ``alpha``.
    p_value:
        The probability driving the verdict (see each measure's
        docstring for its exact meaning).
    alpha:
        Significance level used.
    details:
        Measure-specific internals for the detailed widget view.
    """

    measure: str
    group_label: str
    fair: bool
    p_value: float
    alpha: float
    details: dict[str, object] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        """``"fair"`` or ``"unfair"``, as printed on the label."""
        return "fair" if self.fair else "unfair"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "measure": self.measure,
            "group": self.group_label,
            "verdict": self.verdict,
            "fair": self.fair,
            "p_value": self.p_value,
            "alpha": self.alpha,
            "details": dict(self.details),
        }


class FairnessMeasure:
    """Interface every widget measure implements."""

    #: display name on the label
    name: str = "fairness measure"

    def audit(self, group: ProtectedGroup) -> FairnessResult:
        """Run the statistical test for ``group`` and return the verdict."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def evaluate_fairness(
    ranking: Ranking,
    attribute: str,
    categories: Sequence[str] | None = None,
    k: int = DEFAULT_TOP_K,
    alpha: float = DEFAULT_ALPHA,
    measures: Sequence[FairnessMeasure] | None = None,
) -> list[FairnessResult]:
    """Run the widget's measures for each protected feature.

    Ranking Facts "will evaluate fairness with respect to every value in
    the domain of this attribute" (paper §3) — by default every category
    of ``attribute`` is treated as a protected feature in turn, exactly
    as Figure 1 does for both "large" and "small".

    Parameters
    ----------
    ranking:
        The ranking to audit.
    attribute:
        Sensitive categorical attribute (must be binary unless explicit
        ``categories`` are given).
    categories:
        Protected features to audit; defaults to all categories.
    k:
        Prefix size for the top-k measures.
    alpha:
        Significance level for every verdict.
    measures:
        Override the measure battery (defaults to FA*IR, Proportion,
        Pairwise — the three on the paper's label).

    Returns
    -------
    One :class:`FairnessResult` per (category, measure), category-major.
    """
    # late imports: the concrete measures import this module
    from repro.fairness.fair_star import FairStarMeasure
    from repro.fairness.pairwise import PairwiseMeasure
    from repro.fairness.proportion import ProportionMeasure

    column = ranking.table.categorical_column(attribute)
    audit_categories = list(categories) if categories is not None else list(
        column.categories()
    )
    if not audit_categories:
        raise FairnessConfigError(
            f"attribute {attribute!r} has no categories to audit"
        )
    if categories is None and len(audit_categories) > 2:
        raise FairnessConfigError(
            f"attribute {attribute!r} has {len(audit_categories)} categories; "
            "Ranking Facts is limited to binary sensitive attributes "
            "(pass explicit `categories`, or binarize first — see "
            "repro.preprocess.binarize_categorical)"
        )
    if measures is None:
        measures = (
            FairStarMeasure(k=k, alpha=alpha),
            ProportionMeasure(k=k, alpha=alpha),
            PairwiseMeasure(alpha=alpha),
        )
    results: list[FairnessResult] = []
    for category in audit_categories:
        group = ProtectedGroup(ranking, attribute, category)
        for measure in measures:
            results.append(measure.audit(group))
    return results
