"""The generative fair-ranking model of Yang & Stoyanovich [13].

"In [13], we proposed a generative method to describe rankings that
meet a particular fairness criterion (fairness probability f) and are
drawn from a dataset with a given proportion of members of a binary
protected group (p)" (paper §2.3).

The process builds a ranking top-down from two pools — protected and
non-protected items.  At each position it flips a coin with success
probability ``f``:

- success: the next item comes from the **protected** pool,
- failure: from the non-protected pool,

falling back to the non-empty pool when one side runs out.  With
``f = p`` the process is *group-blind* (statistical parity holds in
expectation at every prefix); ``f < p`` starves the protected group at
the top, ``f > p`` favours it.

The model has two jobs here: FA*IR's null hypothesis is exactly this
process with ``f = p`` (each prefix is then Binomial(i, p)), and the
benchmark harness sweeps ``(p, f)`` to measure how often each widget
test flags rankings of known unfairness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FairnessConfigError

__all__ = ["generate_ranking_labels", "mixing_proportion"]


def generate_ranking_labels(
    n: int,
    p: float,
    f: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw one ranking from the generative model as a boolean label vector.

    Parameters
    ----------
    n:
        Ranking length.
    p:
        Proportion of protected items in the underlying dataset; the
        protected pool holds ``round(n * p)`` items.
    f:
        Fairness probability: chance that each position is filled from
        the protected pool.  Defaults to ``p`` (the group-blind null).
    rng:
        numpy random generator (a fresh default one when omitted).

    Returns
    -------
    Boolean array of length ``n``; ``True`` marks a protected item, in
    rank order (index 0 = rank 1).

    Raises
    ------
    FairnessConfigError
        For an empty ranking, a proportion that leaves either pool
        empty, or probabilities outside [0, 1].
    """
    if n <= 0:
        raise FairnessConfigError(f"ranking length must be >= 1, got {n}")
    if not 0.0 < p < 1.0:
        raise FairnessConfigError(f"proportion p must be inside (0, 1), got {p}")
    if f is None:
        f = p
    if not 0.0 <= f <= 1.0:
        raise FairnessConfigError(f"fairness probability f must be in [0, 1], got {f}")
    protected_left = int(round(n * p))
    if protected_left == 0 or protected_left == n:
        raise FairnessConfigError(
            f"p={p} with n={n} leaves one pool empty "
            f"({protected_left} protected items)"
        )
    non_protected_left = n - protected_left
    if rng is None:
        rng = np.random.default_rng()

    coins = rng.random(n)
    labels = np.zeros(n, dtype=bool)
    for position in range(n):
        if protected_left == 0:
            take_protected = False
        elif non_protected_left == 0:
            take_protected = True
        else:
            take_protected = coins[position] < f
        labels[position] = take_protected
        if take_protected:
            protected_left -= 1
        else:
            non_protected_left -= 1
    return labels


def mixing_proportion(labels: np.ndarray, k: int | None = None) -> float:
    """Observed protected share in the first ``k`` positions (default all).

    The natural empirical estimate of ``f`` for a generated ranking,
    used by calibration tests of the generative model itself.
    """
    arr = np.asarray(labels, dtype=bool)
    if arr.ndim != 1 or arr.size == 0:
        raise FairnessConfigError("labels must be a non-empty 1-d boolean array")
    limit = arr.size if k is None else min(k, arr.size)
    if limit <= 0:
        raise FairnessConfigError(f"prefix size must be >= 1, got {limit}")
    return float(arr[:limit].mean())
