"""Fairness measures for rankings (the Fairness widget's engine).

The widget "quantifies whether the ranked output exhibits statistical
parity with respect to one or more sensitive attributes" and presents
"the output of three fairness measures: FA*IR [14], proportion [15], and
our own pairwise measure.  All these measures are statistical tests, and
whether a result is fair is determined by the computed p-value"
(paper §2.3).

Contents:

- :mod:`repro.fairness.base` — shared vocabulary:
  :class:`ProtectedGroup`, :class:`FairnessResult`, the
  :class:`FairnessMeasure` interface, and :func:`evaluate_fairness`
  which runs all three widget measures at once;
- :mod:`repro.fairness.proportion` — top-k proportion test adapted from
  Zliobaite's review [15];
- :mod:`repro.fairness.pairwise` — the authors' pairwise preference
  measure (working paper);
- :mod:`repro.fairness.fair_star` — the FA*IR ranked group fairness
  test and re-ranking algorithm of Zehlike et al. [14];
- :mod:`repro.fairness.relevance` — the rank-aware set measures rND,
  rKL, rRD of Yang & Stoyanovich [13];
- :mod:`repro.fairness.generative` — the generative fair-ranking model
  of [13] (fairness probability f, proportion p) used to calibrate and
  benchmark the tests.
"""

from repro.fairness.base import (
    FairnessMeasure,
    FairnessResult,
    ProtectedGroup,
    evaluate_fairness,
)
from repro.fairness.fair_star import (
    FairStarAuditResult,
    FairStarMeasure,
    adjust_alpha,
    compute_fail_probability,
    fair_star_rerank,
    minimum_protected_table,
)
from repro.fairness.generative import generate_ranking_labels, mixing_proportion
from repro.fairness.multivalued import (
    MultivaluedAudit,
    evaluate_fairness_multivalued,
    holm_bonferroni,
)
from repro.fairness.pairwise import PairwiseMeasure, pairwise_preference_statistics
from repro.fairness.proportion import ProportionMeasure
from repro.fairness.relevance import (
    NormalizedFairnessScores,
    rkl,
    rnd,
    rrd,
    set_difference_scores,
)

__all__ = [
    "ProtectedGroup",
    "FairnessResult",
    "FairnessMeasure",
    "evaluate_fairness",
    "ProportionMeasure",
    "PairwiseMeasure",
    "pairwise_preference_statistics",
    "FairStarMeasure",
    "FairStarAuditResult",
    "minimum_protected_table",
    "adjust_alpha",
    "compute_fail_probability",
    "fair_star_rerank",
    "rnd",
    "rkl",
    "rrd",
    "set_difference_scores",
    "NormalizedFairnessScores",
    "generate_ranking_labels",
    "mixing_proportion",
    "MultivaluedAudit",
    "evaluate_fairness_multivalued",
    "holm_bonferroni",
]
