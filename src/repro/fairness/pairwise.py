"""The authors' pairwise fairness measure (working paper, §2.3).

"In our follow-up work (working paper), we are developing a pairwise
measure that directly models the probability that a member of a
protected group is preferred to a member of the non-protected group."

The statistic is exactly that probability: of all (protected,
non-protected) item pairs, the fraction where the protected item is
ranked higher.  Under statistical parity this is 1/2.  The pair count
is the Mann-Whitney U statistic of the protected group's rank
positions, so the calibrated test is the rank-sum z-test (pairs share
items and are not independent — a plain binomial on the pair count
badly overstates significance; :class:`NaiveBinomialPairwiseMeasure`
keeps that variant around for the calibration benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FairnessConfigError
from repro.fairness.base import (
    DEFAULT_ALPHA,
    FairnessMeasure,
    FairnessResult,
    ProtectedGroup,
)
from repro.stats.distributions import norm_cdf, norm_sf
from repro.stats.tests import binomial_test

__all__ = [
    "PairwiseStatistics",
    "pairwise_preference_statistics",
    "PairwiseMeasure",
    "NaiveBinomialPairwiseMeasure",
]


@dataclass(frozen=True)
class PairwiseStatistics:
    """Counts behind the pairwise measure.

    ``u_statistic`` is the number of (protected, non-protected) pairs
    with the protected item ranked higher; ``preference_probability``
    is ``u_statistic`` divided by the number of such pairs.
    """

    n_protected: int
    n_non_protected: int
    u_statistic: int
    preference_probability: float

    @property
    def total_pairs(self) -> int:
        """Number of (protected, non-protected) cross pairs."""
        return self.n_protected * self.n_non_protected


def pairwise_preference_statistics(mask) -> PairwiseStatistics:
    """Exact pairwise counts from a rank-ordered protected mask.

    Runs in O(n): for each protected item, the non-protected items
    ranked below it are counted with a suffix sum.

    >>> pairwise_preference_statistics([True, False]).preference_probability
    1.0
    """
    arr = np.asarray(mask, dtype=bool)
    if arr.ndim != 1 or arr.size < 2:
        raise FairnessConfigError("pairwise statistics need >= 2 ranked items")
    n_protected = int(arr.sum())
    n_non = int(arr.size - n_protected)
    if n_protected == 0 or n_non == 0:
        raise FairnessConfigError(
            "pairwise statistics need both protected and non-protected items"
        )
    # non_protected_below[i] = count of non-protected strictly after position i
    non_protected_below = np.concatenate(
        [np.cumsum((~arr)[::-1])[::-1][1:], [0]]
    )
    u = int(non_protected_below[arr].sum())
    return PairwiseStatistics(
        n_protected=n_protected,
        n_non_protected=n_non,
        u_statistic=u,
        preference_probability=u / (n_protected * n_non),
    )


class PairwiseMeasure(FairnessMeasure):
    """Rank-sum (Mann-Whitney) test of the pairwise preference probability.

    The null hypothesis is exchangeability of ranks between the groups;
    the z statistic uses the exact null mean ``n1*n2/2`` and variance
    ``n1*n2*(n1+n2+1)/12`` (no ties are possible: ranks are distinct),
    with a continuity correction.

    Parameters
    ----------
    alpha:
        Significance level.
    alternative:
        ``"two-sided"`` (default) flags deviations in either direction;
        ``"less"`` flags only protected items being systematically
        *dis*preferred.
    """

    name = "Pairwise"

    def __init__(self, alpha: float = DEFAULT_ALPHA, alternative: str = "two-sided"):
        if not 0.0 < alpha < 1.0:
            raise FairnessConfigError(f"alpha must be in (0, 1), got {alpha}")
        if alternative not in ("two-sided", "less"):
            raise FairnessConfigError(
                f"alternative must be 'two-sided' or 'less', got {alternative!r}"
            )
        self._alpha = alpha
        self._alternative = alternative

    @property
    def alpha(self) -> float:
        """The significance level."""
        return self._alpha

    def audit(self, group: ProtectedGroup) -> FairnessResult:
        """Run the rank-sum test on the group's positions."""
        stats = pairwise_preference_statistics(group.mask)
        n1, n2 = stats.n_protected, stats.n_non_protected
        mean_u = n1 * n2 / 2.0
        var_u = n1 * n2 * (n1 + n2 + 1) / 12.0
        # continuity correction towards the mean
        u = float(stats.u_statistic)
        if u > mean_u:
            z = (u - 0.5 - mean_u) / var_u**0.5
        elif u < mean_u:
            z = (u + 0.5 - mean_u) / var_u**0.5
        else:
            z = 0.0
        if self._alternative == "less":
            p_value = norm_cdf(z)
        else:
            p_value = min(1.0, 2.0 * norm_sf(abs(z)))
        fair = not (p_value < self._alpha)
        return FairnessResult(
            measure=self.name,
            group_label=group.label(),
            fair=fair,
            p_value=float(p_value),
            alpha=self._alpha,
            details={
                "preference_probability": stats.preference_probability,
                "u_statistic": stats.u_statistic,
                "total_pairs": stats.total_pairs,
                "n_protected": n1,
                "n_non_protected": n2,
                "z_statistic": z,
                "alternative": self._alternative,
                "test": "Mann-Whitney rank-sum z-test",
            },
        )


class NaiveBinomialPairwiseMeasure(FairnessMeasure):
    """Pairwise measure tested with a plain binomial on the pair count.

    Treats all ``n1*n2`` cross pairs as independent Bernoulli(1/2)
    trials.  They are not (pairs share items), so this test is badly
    anti-conservative; it exists for the A-series calibration benchmark
    that demonstrates why the rank-sum form is the right one.
    """

    name = "Pairwise (naive binomial)"

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        if not 0.0 < alpha < 1.0:
            raise FairnessConfigError(f"alpha must be in (0, 1), got {alpha}")
        self._alpha = alpha

    def audit(self, group: ProtectedGroup) -> FairnessResult:
        """Binomial test of the raw pair count against 1/2."""
        stats = pairwise_preference_statistics(group.mask)
        result = binomial_test(
            stats.u_statistic, stats.total_pairs, 0.5, alternative="two-sided"
        )
        fair = not result.significant(self._alpha)
        return FairnessResult(
            measure=self.name,
            group_label=group.label(),
            fair=fair,
            p_value=result.p_value,
            alpha=self._alpha,
            details={
                "preference_probability": stats.preference_probability,
                "u_statistic": stats.u_statistic,
                "total_pairs": stats.total_pairs,
                "test": result.name,
            },
        )
