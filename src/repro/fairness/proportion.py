"""The "proportion" fairness measure (adapted from Zliobaite's review [15]).

"One typical measure compares the proportion of members of a protected
group who receive a positive outcome to their proportion in the overall
population ... A measure of this kind can be adapted to rankings by
quantifying the proportion of members of a protected group in some
selected set of size k (treating the top-k as a set)" (paper §2.3).

Being ranked in the top-k is the positive outcome.  The test is the
pooled two-proportion z-test comparing the protected share inside the
top-k against the share in the remainder of the ranking; a significant
difference in either direction is reported as unfair (under- **or**
over-representation both break statistical parity).
"""

from __future__ import annotations

from repro.errors import FairnessConfigError
from repro.fairness.base import (
    DEFAULT_ALPHA,
    DEFAULT_TOP_K,
    FairnessMeasure,
    FairnessResult,
    ProtectedGroup,
)
from repro.stats.tests import two_proportion_ztest

__all__ = ["ProportionMeasure"]


class ProportionMeasure(FairnessMeasure):
    """Two-proportion z-test of top-k membership vs the rest.

    Parameters
    ----------
    k:
        Size of the selected set (default 10, the widget's headline k).
    alpha:
        Significance level for the fair/unfair verdict.
    alternative:
        ``"two-sided"`` (default) flags both under- and
        over-representation; ``"less"`` flags only
        under-representation of the protected group.
    """

    name = "Proportion"

    def __init__(
        self,
        k: int = DEFAULT_TOP_K,
        alpha: float = DEFAULT_ALPHA,
        alternative: str = "two-sided",
    ):
        if k < 1:
            raise FairnessConfigError(f"k must be >= 1, got {k}")
        if not 0.0 < alpha < 1.0:
            raise FairnessConfigError(f"alpha must be in (0, 1), got {alpha}")
        if alternative not in ("two-sided", "less"):
            raise FairnessConfigError(
                f"alternative must be 'two-sided' or 'less', got {alternative!r}"
            )
        self._k = k
        self._alpha = alpha
        self._alternative = alternative

    @property
    def k(self) -> int:
        """The selected-set size."""
        return self._k

    @property
    def alpha(self) -> float:
        """The significance level."""
        return self._alpha

    def audit(self, group: ProtectedGroup) -> FairnessResult:
        """Test whether the top-k protected share matches the rest.

        Raises
        ------
        FairnessConfigError
            When ``k`` is not smaller than the ranking (there would be
            no comparison group).
        """
        n = group.size
        k = self._k
        if k >= n:
            raise FairnessConfigError(
                f"proportion measure needs k < ranking size, got k={k}, n={n}"
            )
        in_topk = group.count_at(k)
        below = group.protected_count - in_topk
        result = two_proportion_ztest(
            successes_a=in_topk,
            trials_a=k,
            successes_b=below,
            trials_b=n - k,
            alternative=self._alternative,
        )
        fair = not result.significant(self._alpha)
        return FairnessResult(
            measure=self.name,
            group_label=group.label(),
            fair=fair,
            p_value=result.p_value,
            alpha=self._alpha,
            details={
                "k": k,
                "protected_in_topk": in_topk,
                "topk_share": in_topk / k,
                "protected_below": below,
                "below_share": below / (n - k),
                "overall_share": group.proportion,
                "z_statistic": result.statistic,
                "alternative": self._alternative,
                "test": result.name,
            },
        )
