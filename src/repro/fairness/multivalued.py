"""Fairness for multi-valued sensitive attributes (paper §4 future work).

"We are actively working on defining group fairness measures that go
beyond binary categories (e.g., can be applied to ethnicity, not only
to gender), and will incorporate these into the tool when available."

The natural lift of the widget's binary measures is one-vs-rest: audit
each category of the attribute as the protected feature against the
union of the others.  That multiplies the number of hypothesis tests by
the number of categories, so raw p-values overstate significance —
exactly the problem FA*IR's alpha adjustment solves across prefixes,
now across *groups*.  We apply the Holm–Bonferroni step-down correction
within each measure family, which controls the family-wise error rate
at ``alpha`` with no independence assumptions.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import FairnessConfigError
from repro.fairness.base import (
    DEFAULT_ALPHA,
    DEFAULT_TOP_K,
    FairnessMeasure,
    FairnessResult,
    ProtectedGroup,
)
from repro.ranking.ranker import Ranking

__all__ = [
    "holm_bonferroni",
    "MultivaluedAudit",
    "evaluate_fairness_multivalued",
]


def holm_bonferroni(p_values: Sequence[float], alpha: float = DEFAULT_ALPHA) -> list[bool]:
    """Holm's step-down procedure: which hypotheses are rejected?

    Returns a boolean per input p-value (True = rejected / significant),
    controlling the family-wise error rate at ``alpha``.  Sorting is
    internal; results align with the input order.

    >>> holm_bonferroni([0.01, 0.04, 0.03], alpha=0.05)
    [True, False, False]
    """
    if not 0.0 < alpha < 1.0:
        raise FairnessConfigError(f"alpha must be inside (0, 1), got {alpha}")
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise FairnessConfigError(f"p-values must be in [0, 1], got {p}")
    order = sorted(range(m), key=lambda i: p_values[i])
    rejected = [False] * m
    for step, index in enumerate(order):
        threshold = alpha / (m - step)
        if p_values[index] < threshold:
            rejected[index] = True
        else:
            break  # step-down stops at the first acceptance
    return rejected


@dataclass(frozen=True)
class MultivaluedAudit:
    """The lifted audit: per-category results with corrected verdicts.

    ``results`` hold each one-vs-rest :class:`FairnessResult` with its
    *raw* verdict; ``corrected_unfair`` marks which (category, measure)
    pairs remain significant after Holm–Bonferroni within the measure
    family.
    """

    attribute: str
    categories: tuple[str, ...]
    results: tuple[FairnessResult, ...]
    corrected_unfair: dict[str, tuple[str, ...]]  # measure -> categories
    alpha: float

    def unfair_categories(self, measure: str) -> tuple[str, ...]:
        """Categories flagged unfair by ``measure`` after correction."""
        if measure not in self.corrected_unfair:
            raise FairnessConfigError(
                f"no measure {measure!r} in this audit; "
                f"have: {', '.join(self.corrected_unfair)}"
            )
        return self.corrected_unfair[measure]

    def any_unfair(self) -> bool:
        """True when any corrected verdict is unfair."""
        return any(self.corrected_unfair.values())

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "categories": list(self.categories),
            "alpha": self.alpha,
            "results": [r.as_dict() for r in self.results],
            "corrected_unfair": {
                measure: list(categories)
                for measure, categories in self.corrected_unfair.items()
            },
        }


def evaluate_fairness_multivalued(
    ranking: Ranking,
    attribute: str,
    k: int = DEFAULT_TOP_K,
    alpha: float = DEFAULT_ALPHA,
    measures: Sequence[FairnessMeasure] | None = None,
    min_group_size: int = 2,
) -> MultivaluedAudit:
    """One-vs-rest audit of every category, with Holm-corrected verdicts.

    Parameters
    ----------
    ranking:
        The ranking to audit.
    attribute:
        A categorical attribute with two or more categories (ethnicity,
        region, ...).  Binary attributes work too and reduce to the
        widget's behaviour plus the (mild, m=2) correction.
    k, alpha:
        Audit parameters; ``alpha`` is the *family-wise* level.
    measures:
        Measure battery (defaults to the widget's three).
    min_group_size:
        Categories with fewer members are skipped (their tests would be
        vacuous); they are excluded from ``categories``.

    Notes
    -----
    FA*IR decides against its own internally *adjusted* alpha, not by
    comparing the p-value to the raw level, so the correction must act
    at the test level: with the default battery every measure is
    re-audited at the Bonferroni level ``alpha / m`` (m = number of
    audited categories) and the measure's own verdict logic decides.
    For a custom ``measures`` battery, where test internals are opaque,
    Holm's step-down on the reported p-values is used instead — correct
    for p-value-driven tests, conservative otherwise.
    """
    column = ranking.table.categorical_column(attribute)
    all_categories = column.categories()
    if len(all_categories) < 2:
        raise FairnessConfigError(
            f"attribute {attribute!r} has {len(all_categories)} category; "
            "need at least 2"
        )
    if min_group_size < 1:
        raise FairnessConfigError(
            f"min_group_size must be >= 1, got {min_group_size}"
        )
    counts = column.counts()
    categories = tuple(
        c for c in all_categories
        if counts[c] >= min_group_size and counts[c] < ranking.size
    )
    if not categories:
        raise FairnessConfigError(
            f"no category of {attribute!r} has between {min_group_size} "
            f"and {ranking.size - 1} members"
        )
    corrected_measures: Sequence[FairnessMeasure] | None = None
    if measures is None:
        from repro.fairness.fair_star import FairStarMeasure
        from repro.fairness.pairwise import PairwiseMeasure
        from repro.fairness.proportion import ProportionMeasure

        measures = (
            FairStarMeasure(k=k, alpha=alpha),
            ProportionMeasure(k=k, alpha=alpha),
            PairwiseMeasure(alpha=alpha),
        )
        family_alpha = alpha / len(categories)  # Bonferroni across groups
        corrected_measures = (
            FairStarMeasure(k=k, alpha=family_alpha),
            ProportionMeasure(k=k, alpha=family_alpha),
            PairwiseMeasure(alpha=family_alpha),
        )

    results: list[FairnessResult] = []
    by_measure: dict[str, list[tuple[str, float]]] = {}
    corrected: dict[str, tuple[str, ...]] = {}
    for category in categories:
        group = ProtectedGroup(ranking, attribute, category)
        for measure in measures:
            result = measure.audit(group)
            results.append(result)
            by_measure.setdefault(result.measure, []).append(
                (category, result.p_value)
            )

    if corrected_measures is not None:
        # test-level Bonferroni: each measure re-decides at alpha / m
        flagged: dict[str, list[str]] = {m.name: [] for m in corrected_measures}
        for category in categories:
            group = ProtectedGroup(ranking, attribute, category)
            for measure in corrected_measures:
                if not measure.audit(group).fair:
                    flagged[measure.name].append(category)
        corrected = {name: tuple(cats) for name, cats in flagged.items()}
    else:
        # opaque custom battery: Holm step-down on the reported p-values
        for measure_name, pairs in by_measure.items():
            rejected = holm_bonferroni([p for _, p in pairs], alpha=alpha)
            corrected[measure_name] = tuple(
                category for (category, _), flag in zip(pairs, rejected) if flag
            )
    return MultivaluedAudit(
        attribute=attribute,
        categories=categories,
        results=tuple(results),
        corrected_unfair=corrected,
        alpha=alpha,
    )
