"""The FA*IR mtable: minimum protected counts per prefix.

A prefix of size ``i`` with ``t`` protected items satisfies the *fair
representation condition* at significance ``alpha`` when the binomial
CDF ``F(t; i, p)`` exceeds ``alpha`` — i.e. ``t`` is not in the lower
``alpha`` tail of what a group-blind process would produce.  The mtable
``m(i)`` is the smallest passing ``t`` for each ``i`` from 1 to k; a
ranking satisfies *ranked group fairness* when every prefix count
reaches its mtable entry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FairnessConfigError
from repro.stats.distributions import binom_cdf

__all__ = ["required_at", "minimum_protected_table"]


def _validate(k: int, p: float, alpha: float) -> None:
    if k < 1:
        raise FairnessConfigError(f"prefix length k must be >= 1, got {k}")
    if not 0.0 < p < 1.0:
        raise FairnessConfigError(f"proportion p must be inside (0, 1), got {p}")
    if not 0.0 < alpha < 1.0:
        raise FairnessConfigError(f"alpha must be inside (0, 1), got {alpha}")


def required_at(i: int, p: float, alpha: float) -> int:
    """m(i): the minimum protected count a prefix of size ``i`` needs.

    The smallest integer ``t`` with ``binom_cdf(t, i, p) > alpha``
    (so observing ``t - 1`` or fewer would fall in the rejection tail).

    >>> required_at(10, 0.5, 0.1)  # doctest: +SKIP
    2
    """
    _validate(i, p, alpha)
    for t in range(0, i + 1):
        if binom_cdf(t, i, p) > alpha:
            return t
    return i  # unreachable: cdf(i) == 1 > alpha


def minimum_protected_table(k: int, p: float, alpha: float) -> np.ndarray:
    """The mtable ``[m(1), ..., m(k)]`` as an int array (index 0 = prefix 1).

    Computed in one pass: ``m(i)`` is non-decreasing in ``i`` and grows
    by at most 1 per step, so each entry starts the CDF search where the
    previous one ended instead of from zero.
    """
    _validate(k, p, alpha)
    table = np.zeros(k, dtype=np.int64)
    current = 0
    for i in range(1, k + 1):
        # m(i) >= m(i-1): a longer prefix never needs fewer protected items
        while binom_cdf(current, i, p) <= alpha:
            current += 1
        table[i - 1] = current
    return table
