"""The FA*IR widget measure: audit every prefix of the top-k.

The verdict follows [14]: a ranking passes when the protected count in
every prefix ``i <= k`` reaches the adjusted mtable entry ``m(i)``.
The p-value reported on the label is the smallest per-prefix binomial
CDF — how deep the worst prefix sits in the null's lower tail — which
is compared against the *adjusted* significance so the verdict and the
p-value always agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FairnessConfigError
from repro.fairness.base import (
    DEFAULT_ALPHA,
    DEFAULT_TOP_K,
    FairnessMeasure,
    FairnessResult,
    ProtectedGroup,
)
from repro.fairness.fair_star.adjustment import adjust_alpha
from repro.fairness.fair_star.mtable import minimum_protected_table
from repro.stats.distributions import binom_cdf

__all__ = ["FairStarAuditResult", "FairStarMeasure"]


@dataclass(frozen=True)
class FairStarAuditResult:
    """Full prefix-by-prefix audit trail for the detailed widget view."""

    k: int
    p: float
    alpha: float
    adjusted_alpha: float
    prefix_counts: tuple[int, ...]
    required_counts: tuple[int, ...]
    failed_prefixes: tuple[int, ...]
    min_prefix_cdf: float
    worst_prefix: int

    @property
    def passes(self) -> bool:
        """True when no prefix fell short of its requirement."""
        return not self.failed_prefixes

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "k": self.k,
            "p": self.p,
            "alpha": self.alpha,
            "adjusted_alpha": self.adjusted_alpha,
            "prefix_counts": list(self.prefix_counts),
            "required_counts": list(self.required_counts),
            "failed_prefixes": list(self.failed_prefixes),
            "min_prefix_cdf": self.min_prefix_cdf,
            "worst_prefix": self.worst_prefix,
            "passes": self.passes,
        }


def audit_prefixes(
    labels: np.ndarray, p: float, k: int, alpha: float, adjust: bool = True
) -> FairStarAuditResult:
    """Run the ranked group fairness test on a protected label vector.

    Parameters
    ----------
    labels:
        Boolean membership vector in rank order (at least ``k`` long).
    p:
        Protected proportion defining the null hypothesis.
    k:
        How many prefixes to audit.
    alpha:
        Target overall significance.
    adjust:
        Apply the multiple-testing correction of [14].  ``False`` gives
        the naive per-prefix test (kept for the A2 ablation benchmark).
    """
    arr = np.asarray(labels, dtype=bool)
    if arr.ndim != 1 or arr.size < k:
        raise FairnessConfigError(
            f"need at least k={k} ranked labels, got {arr.size}"
        )
    adjusted = adjust_alpha(k, p, alpha) if adjust else alpha
    if adjusted > 0.0:
        mtable = minimum_protected_table(k, p, adjusted)
    else:
        mtable = np.zeros(k, dtype=np.int64)  # adjustment degenerated: never reject
    counts = np.cumsum(arr[:k]).astype(np.int64)
    failed = tuple(int(i + 1) for i in range(k) if counts[i] < mtable[i])
    prefix_cdfs = [binom_cdf(int(counts[i]), i + 1, p) for i in range(k)]
    worst = int(np.argmin(prefix_cdfs)) + 1
    return FairStarAuditResult(
        k=k,
        p=p,
        alpha=alpha,
        adjusted_alpha=float(adjusted),
        prefix_counts=tuple(int(c) for c in counts),
        required_counts=tuple(int(m) for m in mtable),
        failed_prefixes=failed,
        min_prefix_cdf=float(min(prefix_cdfs)),
        worst_prefix=worst,
    )


class FairStarMeasure(FairnessMeasure):
    """FA*IR ranked group fairness as a label measure.

    Parameters
    ----------
    k:
        Top-k length to audit (clamped to the ranking size at audit
        time, mirroring the widget's top-10 default).
    alpha:
        Target overall significance.
    adjust:
        Apply the multiple-testing correction (on by default; turning
        it off reproduces the naive variant the A2 benchmark measures).
    p:
        Protected proportion for the null.  ``None`` (default) uses the
        group's share of the audited ranking, which is how the demo
        derives it from the loaded dataset.
    """

    name = "FA*IR"

    def __init__(
        self,
        k: int = DEFAULT_TOP_K,
        alpha: float = DEFAULT_ALPHA,
        adjust: bool = True,
        p: float | None = None,
    ):
        if k < 1:
            raise FairnessConfigError(f"k must be >= 1, got {k}")
        if not 0.0 < alpha < 1.0:
            raise FairnessConfigError(f"alpha must be inside (0, 1), got {alpha}")
        if p is not None and not 0.0 < p < 1.0:
            raise FairnessConfigError(f"p must be inside (0, 1), got {p}")
        self._k = k
        self._alpha = alpha
        self._adjust = adjust
        self._p = p

    @property
    def k(self) -> int:
        """The audited prefix length."""
        return self._k

    @property
    def alpha(self) -> float:
        """The target overall significance."""
        return self._alpha

    def audit(self, group: ProtectedGroup) -> FairnessResult:
        """Audit the group's top-k prefixes; see the module docstring."""
        k = min(self._k, group.size)
        p = self._p if self._p is not None else group.proportion
        audit = audit_prefixes(group.mask, p=p, k=k, alpha=self._alpha, adjust=self._adjust)
        return FairnessResult(
            measure=self.name,
            group_label=group.label(),
            fair=audit.passes,
            p_value=audit.min_prefix_cdf,
            alpha=audit.adjusted_alpha,
            details=audit.as_dict(),
        )
