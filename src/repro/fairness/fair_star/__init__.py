"""FA*IR: the fair top-k ranking test and algorithm of Zehlike et al. [14].

FA*IR "quantif[ies] fairness in every prefix of a top-k list"
(paper §2.3) using the generative model of [13] as its null hypothesis:
in a group-blind ranking the number of protected items in a prefix of
size ``i`` is Binomial(i, p).  The machinery:

- :mod:`~repro.fairness.fair_star.mtable` — the minimum number of
  protected items each prefix needs to pass at significance ``alpha``;
- :mod:`~repro.fairness.fair_star.adjustment` — the multiple-testing
  correction: the exact probability that a fair ranking fails *some*
  prefix, and the binary search for the adjusted significance;
- :mod:`~repro.fairness.fair_star.verifier` — the widget measure: audit
  a ranking's prefixes and report the verdict with a p-value;
- :mod:`~repro.fairness.fair_star.rerank` — the constructive half of
  [14]: greedily re-rank candidates so every prefix passes.
"""

from repro.fairness.fair_star.adjustment import adjust_alpha, compute_fail_probability
from repro.fairness.fair_star.mtable import minimum_protected_table, required_at
from repro.fairness.fair_star.rerank import fair_star_rerank
from repro.fairness.fair_star.verifier import FairStarAuditResult, FairStarMeasure

__all__ = [
    "minimum_protected_table",
    "required_at",
    "compute_fail_probability",
    "adjust_alpha",
    "FairStarMeasure",
    "FairStarAuditResult",
    "fair_star_rerank",
]
