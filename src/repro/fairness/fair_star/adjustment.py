"""FA*IR's multiple-testing correction (model adjustment).

Ranked group fairness tests *every* prefix of the top-k, so a naive
per-prefix significance ``alpha`` makes the overall test reject far too
often: a perfectly fair ranking only has to dip below the threshold at
one of k chances.  [14] fixes this by finding the *adjusted*
significance ``alpha_c`` whose overall failure probability equals the
target ``alpha``.

:func:`compute_fail_probability` evaluates the overall failure
probability exactly with a dynamic program over prefix states, and
:func:`adjust_alpha` inverts it by bisection.  The A2 benchmark
measures the realized type-I error with and without this correction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FairnessConfigError
from repro.fairness.fair_star.mtable import minimum_protected_table

__all__ = ["fail_probability_of_mtable", "compute_fail_probability", "adjust_alpha"]


def fail_probability_of_mtable(mtable: np.ndarray, p: float) -> float:
    """P[a Bernoulli(p) ranking violates ``mtable`` at some prefix].

    Exact dynamic program: ``state[c]`` is the probability of having
    ``c`` protected items after the current prefix *and* having passed
    every mtable entry so far.  Each step convolves with one Bernoulli
    draw and zeroes the states below the next requirement; the zeroed
    mass is exactly the newly-failing probability.
    """
    if not 0.0 < p < 1.0:
        raise FairnessConfigError(f"proportion p must be inside (0, 1), got {p}")
    m = np.asarray(mtable, dtype=np.int64)
    if m.ndim != 1 or m.size == 0:
        raise FairnessConfigError("mtable must be a non-empty 1-d array")
    k = m.size
    state = np.zeros(k + 1, dtype=np.float64)
    state[0] = 1.0
    survived = np.float64(1.0)
    for i in range(1, k + 1):
        new_state = np.zeros(k + 1, dtype=np.float64)
        new_state[1:] = state[:-1] * p  # protected item drawn
        new_state[: i] += state[: i] * (1.0 - p)  # non-protected item drawn
        required = int(m[i - 1])
        if required > 0:
            new_state[:required] = 0.0
        state = new_state
        survived = state.sum()
    return float(max(0.0, 1.0 - survived))


def compute_fail_probability(k: int, p: float, alpha: float) -> float:
    """Overall probability that a fair ranking fails the per-prefix test.

    Builds the mtable for per-prefix significance ``alpha`` and runs the
    exact DP.  This is the quantity the adjustment drives down to the
    target significance.
    """
    mtable = minimum_protected_table(k, p, alpha)
    return fail_probability_of_mtable(mtable, p)


def adjust_alpha(
    k: int,
    p: float,
    alpha: float,
    tolerance: float = 1e-8,
    max_iterations: int = 64,
) -> float:
    """The adjusted per-prefix significance ``alpha_c``.

    Finds (by bisection) the largest per-prefix level whose overall
    failure probability does not exceed ``alpha``.  The failure
    probability is a step function of the per-prefix level (it only
    changes when the mtable changes), so the result is conservative:
    ``compute_fail_probability(k, p, adjust_alpha(k, p, alpha)) <= alpha``.

    Parameters
    ----------
    k, p, alpha:
        Prefix length, protected proportion, target overall significance.
    tolerance:
        Bisection interval width at which to stop.
    max_iterations:
        Hard cap on bisection steps (64 is far beyond float precision).
    """
    if not 0.0 < alpha < 1.0:
        raise FairnessConfigError(f"alpha must be inside (0, 1), got {alpha}")
    if compute_fail_probability(k, p, alpha) <= alpha:
        # no correction needed (small k / extreme p can be under-powered)
        return alpha
    lo, hi = 0.0, alpha  # fail prob at lo=0 is 0 (mtable all zeros)
    for _ in range(max_iterations):
        if hi - lo <= tolerance:
            break
        mid = (lo + hi) / 2.0
        if mid == 0.0:
            break
        if compute_fail_probability(k, p, mid) <= alpha:
            lo = mid
        else:
            hi = mid
    return lo
