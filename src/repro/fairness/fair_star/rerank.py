"""The constructive half of FA*IR [14]: build a fair top-k ranking.

Given candidates split into protected and non-protected queues (each
already ordered by quality), the algorithm fills positions greedily:
whenever the prefix would fall below its mtable requirement the best
remaining protected candidate is forced in; otherwise the better head
of the two queues is taken.  This is Algorithm 2 of [14], and is the
"suggest modified scoring functions / mitigate lack of fairness"
direction the paper's §4 names as future work for the tool.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FairnessConfigError
from repro.fairness.base import ProtectedGroup
from repro.fairness.fair_star.adjustment import adjust_alpha
from repro.fairness.fair_star.mtable import minimum_protected_table
from repro.ranking.ranker import Ranking

__all__ = ["fair_star_rerank", "rerank_labels"]


def rerank_labels(
    labels: np.ndarray,
    scores: np.ndarray,
    k: int,
    p: float,
    alpha: float,
    adjust: bool = True,
) -> np.ndarray:
    """Re-rank by index: returns positions into the original order.

    Parameters
    ----------
    labels:
        Boolean protected mask, in current rank order.
    scores:
        Scores in current rank order (non-increasing).
    k:
        Length of the fair ranking to construct.
    p, alpha, adjust:
        FA*IR test parameters (see
        :func:`~repro.fairness.fair_star.verifier.audit_prefixes`).

    Returns
    -------
    Integer array of length ``k``: indices into the original order, such
    that taking them in sequence yields a ranking whose every prefix
    meets the mtable while preserving within-group score order.

    Raises
    ------
    FairnessConfigError
        When the protected queue is too small to ever satisfy the
        requirement (infeasible instance).
    """
    mask = np.asarray(labels, dtype=bool)
    score_arr = np.asarray(scores, dtype=np.float64)
    if mask.shape != score_arr.shape or mask.ndim != 1:
        raise FairnessConfigError("labels and scores must be equal-length 1-d arrays")
    if not 1 <= k <= mask.size:
        raise FairnessConfigError(f"k must be in [1, {mask.size}], got {k}")
    adjusted = adjust_alpha(k, p, alpha) if adjust else alpha
    if adjusted > 0.0:
        mtable = minimum_protected_table(k, p, adjusted)
    else:
        mtable = np.zeros(k, dtype=np.int64)
    if int(mtable[-1]) > int(mask.sum()):
        raise FairnessConfigError(
            f"infeasible: prefix {k} requires {int(mtable[-1])} protected "
            f"candidates but only {int(mask.sum())} exist"
        )

    protected_queue = list(np.flatnonzero(mask))
    other_queue = list(np.flatnonzero(~mask))
    taken: list[int] = []
    protected_so_far = 0
    for position in range(1, k + 1):
        need = int(mtable[position - 1])
        if protected_so_far < need:
            # constraint binds: must take a protected candidate
            taken.append(protected_queue.pop(0))
            protected_so_far += 1
            continue
        if not protected_queue:
            taken.append(other_queue.pop(0))
            continue
        if not other_queue:
            taken.append(protected_queue.pop(0))
            protected_so_far += 1
            continue
        # free choice: take the better head (ties prefer the earlier item,
        # which preserves the original order's tie-breaking)
        if score_arr[protected_queue[0]] >= score_arr[other_queue[0]]:
            take_protected = score_arr[protected_queue[0]] > score_arr[other_queue[0]] or (
                protected_queue[0] < other_queue[0]
            )
        else:
            take_protected = False
        if take_protected:
            taken.append(protected_queue.pop(0))
            protected_so_far += 1
        else:
            taken.append(other_queue.pop(0))
    return np.asarray(taken, dtype=np.intp)


def fair_star_rerank(
    group: ProtectedGroup,
    k: int,
    alpha: float = 0.1,
    p: float | None = None,
    adjust: bool = True,
) -> Ranking:
    """Produce a FA*IR-fair top-k :class:`Ranking` from an audited group.

    The result contains ``k`` items; within each group the original
    score order is preserved (FA*IR never swaps same-group items).

    Note the returned ranking's scores are the items' original scores —
    they may be locally non-monotone where a protected item was forced
    up, which is the visible footprint of the intervention.
    """
    ranking = group.ranking
    order = rerank_labels(
        group.mask, ranking.scores, k=k,
        p=group.proportion if p is None else p,
        alpha=alpha, adjust=adjust,
    )
    return Ranking.presorted(
        ranking.table.take(order),
        ranking.scores[order],
        id_column=ranking.id_column,
    )
