"""Non-blocking HTTP fan-out for trial chunks: the selectors multiplexer.

The coordinator used to burn one blocking thread per in-flight chunk —
``ThreadPoolExecutor`` + ``http.client`` round-trips, at most one chunk
per worker at a time.  This module replaces the *transport* with a
single-threaded multiplexer: every chunk's request is written to its
own socket without blocking, one ``selectors`` loop watches all the
sockets at once, and chunks complete in whatever order their responses
land.  A two-worker cluster with eight chunks now has eight requests
on the wire simultaneously (the workers are threaded HTTP daemons, so
they genuinely overlap), instead of two.

The split of responsibilities:

- :class:`ChunkStream` is one chunk attempt against one worker: a
  non-blocking socket, the raw HTTP/1.1 request bytes, and an
  incremental response parser.  It knows nothing about scheduling.
- :class:`ChunkMultiplexer` owns the selector loop: register streams,
  :meth:`~ChunkMultiplexer.poll` for progress, get finished streams
  back (completed or failed).  Deadlines are enforced here — a stream
  past its per-chunk timeout is failed without waiting on the socket.
- Failure *classification* is on the stream, because the scheduler's
  response differs by kind:

  - ``stream.stale`` — a **reused** (kept-alive) socket died before a
    single response byte.  A worker restart or idle-timeout close, not
    worker death: the coordinator retries once on a fresh socket to
    the same worker and counts a reconnect (the same policy
    ``WorkerClient`` applies to probes).
  - ``stream.dead_at_dispatch`` — a **fresh** socket was refused,
    reset, or saw EOF before any response byte.  The worker is dead
    *right now*; the chunk fails over immediately instead of
    surfacing as a timeout after the full ``chunk_timeout`` (the
    half-closed-socket bug this module fixes).
  - ``stream.timed_out`` — the deadline passed with the request
    outstanding.  Never retried on the same worker: a slow worker is
    already running the chunk, and re-sending would double the load
    on the overloaded host.

Responses are parsed against Content-Length (what the workers send);
an HTTP/1.0 or ``Connection: close`` peer is read to EOF instead.  A
completed keep-alive socket is handed back to the scheduler for reuse
on the next chunk.
"""

from __future__ import annotations

import errno
import selectors
import socket
import time

from repro.errors import ClusterError

__all__ = ["ChunkStream", "ChunkMultiplexer", "encode_http_request"]

#: recv buffer size: chunk responses are tens of KB, one or two reads
_RECV_SIZE = 1 << 16

_CONNECT_IN_PROGRESS = {errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY, 0}


def encode_http_request(host: str, port: int, path: str, body: bytes) -> bytes:
    """The raw bytes of one ``POST`` request (HTTP/1.1, keep-alive)."""
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/octet-stream\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Accept-Encoding: identity\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class ChunkStream:
    """One chunk request in flight over one non-blocking socket.

    State machine: ``connecting -> sending -> receiving -> done`` (or
    ``failed`` from anywhere).  The multiplexer drives transitions via
    :meth:`advance`; the owner reads the terminal fields —
    :attr:`status`/:attr:`body` on success, :attr:`error` plus the
    classification flags on failure.

    ``context`` is an opaque slot for the scheduler (the coordinator
    hangs its per-chunk bookkeeping there); the transport never reads
    it.
    """

    __slots__ = (
        "host", "port", "request", "timeout", "reused", "context",
        "sock", "state", "started", "deadline",
        "_send_view", "_sent", "_buffer", "_headers_done", "_body_start",
        "_content_length", "_until_close", "_keep_alive",
        "status", "body", "error", "stale", "dead_at_dispatch", "timed_out",
    )

    def __init__(
        self,
        host: str,
        port: int,
        request: bytes,
        timeout: float,
        sock: "socket.socket | None" = None,
        reused: bool = False,
        context: object = None,
    ):
        self.host = host
        self.port = port
        self.request = request
        self.timeout = timeout
        self.reused = reused
        self.context = context
        self.sock = sock
        self.state = "new"
        self.started = time.perf_counter()
        self.deadline = time.monotonic() + timeout
        self._send_view = memoryview(request)
        self._sent = 0
        self._buffer = bytearray()
        self._headers_done = False
        self._body_start = 0
        self._content_length: int | None = None
        self._until_close = False
        self._keep_alive = False
        self.status: int | None = None
        self.body: bytes | None = None
        self.error: ClusterError | None = None
        self.stale = False
        self.dead_at_dispatch = False
        self.timed_out = False

    # -- lifecycle --------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the stream reached a terminal state (done or failed)."""
        return self.state in ("done", "failed")

    @property
    def failure_class(self) -> "str | None":
        """The documented failure taxonomy, as one word.

        ``stale`` (reused socket died pre-response → one fresh retry on
        the same worker), ``dead_at_dispatch`` (fresh socket
        refused/reset/EOF pre-response → immediate failover),
        ``timed_out`` (deadline passed → failover, never retried on the
        same worker), ``error`` (any other transport/parse failure), or
        ``None`` while the stream has not failed.  The coordinator's
        scheduler and the table-driven classification tests both key
        off this.
        """
        if self.state != "failed":
            return None
        if self.stale:
            return "stale"
        if self.dead_at_dispatch:
            return "dead_at_dispatch"
        if self.timed_out:
            return "timed_out"
        return "error"

    def begin(self) -> None:
        """Open (or adopt) the socket and start the request."""
        if self.sock is not None:  # a kept-alive socket from the pool
            self.sock.setblocking(False)
            self.state = "sending"
            self._pump_send()
            return
        try:
            self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self.sock.setblocking(False)
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            code = self.sock.connect_ex((self.host, self.port))
        except OSError as exc:
            self._fail_transport(exc)
            return
        if code not in _CONNECT_IN_PROGRESS:
            self._fail_transport(OSError(code, errno.errorcode.get(code, str(code))))
            return
        self.state = "connecting"

    def events_wanted(self) -> int:
        """The selector interest mask for the current state."""
        if self.state in ("connecting", "sending"):
            return selectors.EVENT_WRITE
        if self.state == "receiving":
            return selectors.EVENT_READ
        return 0

    def detach_socket(self) -> "socket.socket | None":
        """Hand the (reusable) socket to the caller; the stream forgets it."""
        sock, self.sock = self.sock, None
        return sock

    def close(self) -> None:
        """Close the socket (idempotent; errors swallowed)."""
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    @property
    def reusable(self) -> bool:
        """Whether the socket can serve another request after this one.

        Keep-alive agreed, body delimited by Content-Length, and no
        pipelined leftovers in the buffer.
        """
        return (
            self.state == "done"
            and self._keep_alive
            and self._content_length is not None
            and len(self._buffer) == self._body_start + self._content_length
        )

    # -- transitions -------------------------------------------------------------

    def advance(self, mask: int) -> None:
        """One selector wake-up's worth of progress."""
        if self.finished:
            return
        if self.state == "connecting" and mask & selectors.EVENT_WRITE:
            code = self.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            if code != 0:
                self._fail_transport(
                    OSError(code, errno.errorcode.get(code, str(code)))
                )
                return
            self.state = "sending"
        if self.state == "sending" and mask & selectors.EVENT_WRITE:
            self._pump_send()
        if self.state == "receiving" and mask & selectors.EVENT_READ:
            self._pump_recv()

    def expire(self) -> None:
        """Deadline passed: fail as a timeout (never stale-retried)."""
        self.timed_out = True
        self._fail(
            ClusterError(
                f"worker {self.host}:{self.port} timed out after "
                f"{self.timeout:g}s (chunk still outstanding)"
            )
        )

    def _pump_send(self) -> None:
        try:
            while self._sent < len(self.request):
                self._sent += self.sock.send(self._send_view[self._sent:])
        except (BlockingIOError, InterruptedError):
            return  # socket buffer full; the selector will call back
        except OSError as exc:
            self._fail_transport(exc)
            return
        self.state = "receiving"

    def _pump_recv(self) -> None:
        while True:
            try:
                data = self.sock.recv(_RECV_SIZE)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._fail_transport(exc)
                return
            if not data:
                self._on_eof()
                return
            self._buffer.extend(data)
            if self._parse():
                return

    def _on_eof(self) -> None:
        if self._until_close and self._headers_done:
            # HTTP/1.0-style body: EOF is the delimiter
            self.body = bytes(self._buffer[self._body_start:])
            self.state = "done"
            self.close()
            return
        if not self._buffer:
            # closed before a single response byte: a dead or restarted
            # worker.  On a reused socket that is a stale keep-alive
            # (retry once, fresh); on a fresh one the worker is dead at
            # dispatch — fail over NOW, not after chunk_timeout.
            if self.reused:
                self.stale = True
            else:
                self.dead_at_dispatch = True
            self._fail(
                ClusterError(
                    f"worker {self.host}:{self.port} closed the connection "
                    "before responding"
                )
            )
            return
        self._fail(
            ClusterError(
                f"worker {self.host}:{self.port} sent a truncated response "
                f"({len(self._buffer)} byte(s))"
            )
        )

    def _parse(self) -> bool:
        """Consume buffered bytes; returns True when the stream finished."""
        if not self._headers_done:
            end = self._buffer.find(b"\r\n\r\n")
            if end < 0:
                return False
            try:
                self._parse_head(bytes(self._buffer[:end]))
            except ClusterError as exc:
                self._fail(exc)
                return True
            self._headers_done = True
            self._body_start = end + 4
        if self._until_close:
            return False  # keep reading until EOF
        have = len(self._buffer) - self._body_start
        if have < self._content_length:
            return False
        stop = self._body_start + self._content_length
        self.body = bytes(self._buffer[self._body_start:stop])
        self.state = "done"
        return True

    def _parse_head(self, head: bytes) -> None:
        lines = head.split(b"\r\n")
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
            raise ClusterError(
                f"worker {self.host}:{self.port} sent a malformed status "
                f"line: {lines[0][:80]!r}"
            )
        version = parts[0].decode("ascii", "replace")
        try:
            self.status = int(parts[1])
        except ValueError:
            raise ClusterError(
                f"worker {self.host}:{self.port} sent a non-numeric status: "
                f"{parts[1][:20]!r}"
            ) from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(b":")
            if sep:
                headers[name.strip().lower().decode("ascii", "replace")] = (
                    value.strip().decode("ascii", "replace")
                )
        connection = headers.get("connection", "").lower()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise ClusterError(
                f"worker {self.host}:{self.port} sent a chunked response; "
                "the trial protocol requires Content-Length"
            )
        length = headers.get("content-length")
        if length is not None:
            try:
                self._content_length = int(length)
            except ValueError:
                raise ClusterError(
                    f"worker {self.host}:{self.port} sent a bad "
                    f"Content-Length: {length!r}"
                ) from None
            self._keep_alive = (
                version == "HTTP/1.1" and "close" not in connection
            ) or "keep-alive" in connection
        else:
            self._until_close = True  # HTTP/1.0 body: delimited by EOF

    def _fail_transport(self, exc: OSError) -> None:
        # a transport fault before any response byte is either a stale
        # keep-alive (reused socket) or a dead-at-dispatch worker
        if not self._buffer:
            if self.reused:
                self.stale = True
            else:
                self.dead_at_dispatch = True
        self._fail(
            ClusterError(
                f"worker {self.host}:{self.port} unreachable: "
                f"{type(exc).__name__}: {exc}"
            )
        )

    def _fail(self, error: ClusterError) -> None:
        self.error = error
        self.state = "failed"
        self.close()


class ChunkMultiplexer:
    """The selector loop over every in-flight :class:`ChunkStream`.

    Usage::

        mux = ChunkMultiplexer()
        finished = mux.submit(stream)   # may finish synchronously
        while mux.active:
            for stream in mux.poll():
                ...  # completed or failed; maybe submit a retry

    ``poll`` returns as soon as at least one stream finishes (or the
    nearest deadline passes), so the scheduler can fail over a dead
    chunk while the other chunks keep streaming.
    """

    def __init__(self):
        self._selector = selectors.DefaultSelector()
        self._streams: dict[int, ChunkStream] = {}
        # the socket each stream registered with: a failing stream
        # closes its socket before we unregister, and selectors can
        # only unregister a closed fd via the original object
        self._socks: dict[int, socket.socket] = {}

    @property
    def active(self) -> int:
        """How many streams are still in flight."""
        return len(self._streams)

    def submit(self, stream: ChunkStream) -> bool:
        """Start a stream.  Returns True if it finished synchronously
        (e.g. an immediate connect failure) — the caller handles it
        directly instead of waiting for :meth:`poll`."""
        stream.begin()
        if stream.finished:
            return True
        self._streams[id(stream)] = stream
        self._socks[id(stream)] = stream.sock
        self._selector.register(stream.sock, stream.events_wanted(), stream)
        return False

    def _unregister(self, stream: ChunkStream) -> None:
        del self._streams[id(stream)]
        sock = self._socks.pop(id(stream))
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError, OSError):
            pass

    def poll(self, max_wait: float = 0.5) -> list[ChunkStream]:
        """Advance I/O until at least one stream finishes.

        Returns the finished streams (possibly several: responses that
        landed in the same wake-up).  Deadlines are checked every pass,
        so a hung worker costs its chunk's timeout, nothing more.
        """
        finished: list[ChunkStream] = []
        while self._streams and not finished:
            now = time.monotonic()
            wait = max(
                0.0,
                min(
                    [max_wait]
                    + [s.deadline - now for s in self._streams.values()],
                ),
            )
            for key, mask in self._selector.select(wait):
                stream: ChunkStream = key.data
                interest_before = stream.events_wanted()
                stream.advance(mask)
                if stream.finished:
                    self._unregister(stream)
                    finished.append(stream)
                elif stream.events_wanted() != interest_before:
                    self._selector.modify(
                        stream.sock, stream.events_wanted(), stream
                    )
            now = time.monotonic()
            for stream in list(self._streams.values()):
                if now >= stream.deadline:
                    self._unregister(stream)
                    stream.expire()
                    finished.append(stream)
            if not finished and wait >= max_wait:
                break  # give the scheduler a turn even with nothing done
        return finished

    def close(self) -> None:
        """Tear down any still-registered streams (error paths)."""
        for stream in list(self._streams.values()):
            self._unregister(stream)
            stream.close()
        self._selector.close()
