"""The failure policy engine: how a coordinator treats a failing worker.

PR 4's coordinator improvised per-failure: one ``reprobe_interval`` for
every dead worker, re-probed in lockstep, retried without limit.  This
module makes the policy explicit and per-worker:

- :class:`FailurePolicy` — the knobs in one value object: how many
  consecutive failures trip the breaker, how re-probe backoff grows,
  how much per-worker jitter staggers a fleet, and how many failover
  retries one run may spend before degrading to local execution.
- :class:`CircuitBreaker` — one worker's failure state machine::

      CLOSED --[threshold consecutive failures]--> OPEN
      OPEN   --[backoff elapsed]-----------------> HALF_OPEN
      HALF_OPEN --[probe chunk ok]---------------> CLOSED
      HALF_OPEN --[probe chunk fails]------------> OPEN (longer backoff)

  *Closed* workers are scheduled normally; failures below the
  threshold just delay the next health probe by a jittered re-probe
  interval (each breaker draws its own delays from an address-seeded
  RNG, so a recovering host is never hit by a probe thundering herd).
  An *open* breaker swallows probes entirely until its backoff —
  exponential in the consecutive-failure count, jittered, capped —
  elapses.  *Half-open* admits exactly one trial ("probe") chunk; its
  outcome closes the breaker or re-opens it with a longer backoff.

Timing here shapes *scheduling*, never results: a chunk executed after
any sequence of breaker transitions still runs at its absolute trial
indices, so labels stay byte-identical to serial no matter how the
fleet flapped.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import ClusterError

__all__ = ["FailurePolicy", "CircuitBreaker", "BREAKER_STATES"]

#: breaker states, in gauge-value order (repro_cluster_breaker_state)
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class FailurePolicy:
    """Every failure-handling knob of a coordinator, in one place.

    Parameters
    ----------
    breaker_threshold:
        Consecutive failures (probe or chunk) that trip a worker's
        breaker from closed to open.
    reprobe_interval:
        Base delay before re-probing a worker that failed *below* the
        threshold; jittered per worker (PR 4's fixed knob, kept as the
        backoff floor).
    backoff_factor:
        Multiplier applied per consecutive failure past the threshold.
    backoff_max:
        Ceiling on any computed backoff, seconds.
    jitter:
        Fraction of every delay randomized per worker: a delay ``d``
        becomes uniform in ``[d * (1 - jitter), d * (1 + jitter)]``.
    retry_budget:
        Failover retries one run may spend across all its chunks;
        ``None`` sizes the budget at twice the chunk count.  When the
        budget runs dry, remaining failures degrade straight to local
        execution with the reason recorded — a flapping fleet cannot
        retry forever.
    """

    breaker_threshold: int = 3
    reprobe_interval: float = 10.0
    backoff_factor: float = 2.0
    backoff_max: float = 120.0
    jitter: float = 0.5
    retry_budget: int | None = None

    def __post_init__(self):
        if self.breaker_threshold < 1:
            raise ClusterError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.reprobe_interval < 0:
            raise ClusterError(
                f"reprobe_interval must be >= 0, got {self.reprobe_interval}"
            )
        if self.backoff_factor < 1.0:
            raise ClusterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ClusterError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ClusterError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    def budget_for(self, chunks: int) -> int:
        """The retry budget for a run of ``chunks`` chunks."""
        if self.retry_budget is not None:
            return self.retry_budget
        return 2 * chunks

    def backoff_for(self, consecutive_failures: int) -> float:
        """Un-jittered backoff after ``consecutive_failures`` failures.

        Below the threshold this is the flat re-probe interval; at and
        past it, the interval grows geometrically, capped.
        """
        if consecutive_failures < self.breaker_threshold:
            return min(self.reprobe_interval, self.backoff_max)
        exponent = consecutive_failures - self.breaker_threshold
        return min(
            self.reprobe_interval * (self.backoff_factor ** exponent)
            if self.reprobe_interval > 0
            else 0.0,
            self.backoff_max,
        )


class CircuitBreaker:
    """One worker's failure state machine (see the module docstring).

    Not thread-safe by itself — the coordinator already serializes slot
    mutation under its registry lock, and doubling the locking here
    would only invite ordering bugs.  ``clock`` is injectable so the
    tests can step time instead of sleeping.

    ``on_transition(new_state)`` fires on every state *change* — the
    coordinator hangs its breaker gauge and transition counter there.
    """

    __slots__ = (
        "policy", "state", "consecutive_failures", "next_attempt_at",
        "opened_count", "_half_open_inflight", "_rng", "_clock",
        "_on_transition",
    )

    def __init__(
        self,
        policy: FailurePolicy,
        seed: object = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str], None] | None = None,
    ):
        self.policy = policy
        self.state = "closed"
        self.consecutive_failures = 0
        #: earliest monotonic time the next probe attempt is allowed
        self.next_attempt_at = float("-inf")
        self.opened_count = 0
        self._half_open_inflight = False
        # address-seeded: each worker draws its own jitter sequence, so
        # a fleet that failed together never re-probes in lockstep
        self._rng = random.Random(seed if seed is not None else None)
        self._clock = clock
        self._on_transition = on_transition

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            if self._on_transition is not None:
                self._on_transition(state)

    def _jittered(self, delay: float) -> float:
        jitter = self.policy.jitter
        if jitter <= 0.0 or delay <= 0.0:
            return delay
        return delay * (1.0 - jitter + 2.0 * jitter * self._rng.random())

    # -- queries ----------------------------------------------------------------

    def allows_dispatch(self) -> bool:
        """Whether normal chunk scheduling may use this worker now."""
        return self.state == "closed"

    def try_acquire_probe(self) -> bool:
        """Claim the right to probe (healthz, and in half-open one chunk).

        Closed: allowed once the jittered re-probe delay has elapsed.
        Open: allowed only when the backoff elapses — which moves the
        breaker to half-open.  Half-open: denied while the single probe
        attempt is already in flight.
        """
        now = self._clock()
        if self.state == "closed":
            return now >= self.next_attempt_at
        if self.state == "open":
            if now < self.next_attempt_at:
                return False
            self._transition("half_open")
            self._half_open_inflight = False
            return True
        return not self._half_open_inflight

    def try_acquire_half_open_chunk(self) -> bool:
        """Claim the half-open state's single probe chunk."""
        if self.state != "half_open" or self._half_open_inflight:
            return False
        self._half_open_inflight = True
        return True

    # -- outcomes ---------------------------------------------------------------

    def record_success(self) -> None:
        """A probe chunk (or any chunk) completed: close and reset."""
        self.consecutive_failures = 0
        self.next_attempt_at = float("-inf")
        self._half_open_inflight = False
        self._transition("closed")

    def record_failure(self) -> None:
        """A probe or chunk failed: back off, maybe trip the breaker."""
        self.consecutive_failures += 1
        self._half_open_inflight = False
        tripped = (
            self.state in ("open", "half_open")
            or self.consecutive_failures >= self.policy.breaker_threshold
        )
        delay = self._jittered(
            self.policy.backoff_for(self.consecutive_failures)
        )
        self.next_attempt_at = self._clock() + delay
        if tripped:
            if self.state != "open":
                self.opened_count += 1
            self._transition("open")

    # -- observability ----------------------------------------------------------

    def view(self) -> dict[str, object]:
        """The breaker's state for ``stats()`` / ``fleet status``."""
        now = self._clock()
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "retry_in": (
                None
                if self.next_attempt_at == float("-inf")
                else max(0.0, self.next_attempt_at - now)
            ),
            "opened": self.opened_count,
        }
