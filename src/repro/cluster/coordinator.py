"""The trial coordinator: shard a Monte-Carlo batch across workers.

:class:`RemoteTrialBackend` is a
:class:`~repro.engine.backends.TrialBackend` whose ``run`` splits a
trial batch into contiguous index spans (the same chunking the process
backend uses) and executes them on remote worker daemons
(:mod:`repro.cluster.worker`).  Dispatch is **non-blocking**: every
chunk's request goes on the wire at once (least-loaded worker first)
and a single :class:`~repro.cluster.multiplex.ChunkMultiplexer` poll
loop completes chunks as their responses land — a slow chunk never
serializes behind a fast one, and failover for a dead chunk starts
while the healthy chunks are still streaming.  The scheduling loop
provides the three guarantees a cluster needs:

- **Membership + health probes.**  Workers come from a static
  ``host:port`` list, from a live worker registry
  (:mod:`repro.cluster.registry` — the coordinator polls
  ``GET /workers`` and reshapes its fleet mid-run, so workers join and
  leave without a restart), or both.  A worker is only scheduled onto
  after a successful ``/healthz`` probe that reports *this*
  coordinator's protocol version
  (:data:`repro.cluster.wire.PROTOCOL_VERSION`) — a version-mismatched
  worker is rejected at registration, never sent work.
- **Failure policy.**  Each worker carries a
  :class:`~repro.cluster.policy.CircuitBreaker` driven by one explicit
  :class:`~repro.cluster.policy.FailurePolicy`: failures below the
  threshold delay the next probe by a per-worker *jittered* re-probe
  interval (no probe thundering herd onto a recovering host);
  threshold consecutive failures open the breaker, whose exponential
  backoff must elapse before the half-open state admits a single probe
  chunk that closes it again.  Every run also carries a finite **retry
  budget** — failover retries past it degrade straight to local
  execution with the reason recorded, so a flapping fleet can never
  retry forever.
- **Failover.**  A chunk that fails — connection refused, half-closed
  or reset at dispatch, timeout (slow worker), HTTP error, rejected or
  corrupted frame — marks its worker dead and is immediately retried
  on another live worker; a socket that dies *before any response
  byte* fails over immediately (dead-at-dispatch) instead of burning
  the full chunk timeout.  When
  every worker has been tried (or none is left), the chunk is re-run
  on the **local fallback backend**.  Because every chunk executes its
  trials at their absolute indices (per-trial ``[seed, trial]`` RNG
  streams), a retried or locally recovered chunk returns byte-identical
  results, so the assembled label never depends on *where* a trial ran.
- **Degraded-mode fallback.**  With no live workers (empty registry,
  all probes failing) or unpicklable trial work, the whole batch runs
  on the local backend and :attr:`RemoteTrialBackend.fallback_reason`
  records why — surfaced by ``GET /engine/stats`` alongside the
  dispatch/failover counters from :meth:`RemoteTrialBackend.stats`.

A genuine *trial* bug is distinguished from worker death by the
worker's status code: HTTP 500 means "the trial function itself
raised" (:mod:`repro.cluster.worker`), so the chunk skips failover —
every other worker would fail identically — and re-runs locally, where
the real error re-raises with its traceback; the worker stays alive
and unblamed.  Everything else (connection failure, timeout, 4xx/5xx
transport trouble) is treated as worker death and failed over.

Worker addresses come from ``REPRO_TRIAL_WORKERS`` (comma-separated
``host:port``, :func:`workers_from_env` — the server path), a file
(:func:`workers_from_file` — the CLI's ``--workers-from``), or a
registry URL (``--registry`` / ``REPRO_TRIAL_REGISTRY`` — dynamic
membership, no static list at all).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
import time
from collections.abc import Sequence
from typing import Any

from repro.cluster import wire
from repro.cluster.multiplex import (
    ChunkMultiplexer,
    ChunkStream,
    encode_http_request,
)
from repro.cluster.policy import BREAKER_STATES, CircuitBreaker, FailurePolicy
from repro.cluster.registry import RegistryClient
from repro.engine.backends import (
    TrialBackend,
    TrialFn,
    _chunk_spans,
    resolve_trial_backend,
    run_trial_span,
)
from repro.errors import ClusterError
from repro.telemetry import (
    MetricsRegistry,
    Span,
    clamp_tags,
    current_trace_id,
    get_default_registry,
    get_logger,
    get_trace_buffer,
    merged_stats,
    new_span_id,
    revive_spans,
    span,
)

_log = get_logger("cluster.coordinator")

__all__ = [
    "WorkerClient",
    "RemoteTrialBackend",
    "workers_from_env",
    "workers_from_file",
]

#: environment variable naming the cluster (comma-separated host:port)
WORKERS_ENV_VAR = "REPRO_TRIAL_WORKERS"

#: environment variable naming the worker registry (URL)
REGISTRY_ENV_VAR = "REPRO_TRIAL_REGISTRY"


class _TrialFaultError(ClusterError):
    """The *trial function* raised on a worker (HTTP 500).

    Distinct from worker death: retrying the same chunk on another
    worker would just re-raise the same bug, so the scheduler skips
    failover, leaves the worker alive, and re-runs the chunk locally —
    where a genuine bug raises with its real traceback (and a
    worker-only fault, e.g. an OOM kill, still yields results).
    """


def workers_from_env(env_var: str = WORKERS_ENV_VAR) -> tuple[str, ...]:
    """Worker addresses from the environment (empty when unset)."""
    raw = os.environ.get(env_var, "")
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def workers_from_file(path: str) -> tuple[str, ...]:
    """Worker addresses from a file: one per line (or comma-separated).

    Blank lines and ``#`` comments are ignored; raises
    :class:`ClusterError` when the file is unreadable or names no
    workers at all (a misconfigured cluster should fail loudly, not
    silently run everything locally).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ClusterError(f"cannot read workers file {path!r}: {exc}") from exc
    addresses: list[str] = []
    for line in text.splitlines():
        line = line.partition("#")[0]
        addresses.extend(part.strip() for part in line.split(",") if part.strip())
    if not addresses:
        raise ClusterError(f"workers file {path!r} names no workers")
    return tuple(addresses)


class WorkerClient:
    """HTTP client for one worker daemon, over one persistent connection.

    The connection is opened lazily, kept alive across chunks (the
    workers speak HTTP/1.1), and serialized by a lock — chunk payloads
    are large enough that one pipe per worker is the right shape, and
    the coordinator's scheduler already spreads concurrent chunks over
    *different* workers.  A request that fails on a previously-good
    connection is retried once on a fresh one (a worker restart or an
    idle-timeout close is not worker death); :attr:`reconnects` counts
    those re-opens for the ``trial_cluster`` stats.

    Every real failure mode — unreachable host, timeout, HTTP error
    status, malformed response frame — surfaces as
    :class:`ClusterError`, which is the signal the coordinator's
    scheduler fails over on.
    """

    def __init__(self, address: str, timeout: float = 30.0, probe_timeout: float = 5.0):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ClusterError(
                f"bad worker address {address!r}; expected host:port"
            )
        try:
            self.port = int(port)
        except ValueError:
            raise ClusterError(
                f"bad worker address {address!r}; port {port!r} is not a number"
            ) from None
        self.host = host
        self.address = address
        self.timeout = timeout
        self.probe_timeout = probe_timeout
        self.reconnects = 0
        self._connection: http.client.HTTPConnection | None = None
        self._connection_lock = threading.Lock()
        # kept-alive sockets for the multiplexed chunk path; the probe
        # path keeps its own http.client connection above
        self._stream_sockets: list[socket.socket] = []

    #: pooled keep-alive sockets per worker; beyond this, extras close
    STREAM_POOL_SIZE = 8

    def take_stream_socket(self) -> "socket.socket | None":
        """A pooled keep-alive socket for a chunk stream, if any."""
        with self._connection_lock:
            if self._stream_sockets:
                return self._stream_sockets.pop()
        return None

    def store_stream_socket(self, sock: socket.socket) -> None:
        """Return a reusable socket after a completed chunk stream."""
        with self._connection_lock:
            if len(self._stream_sockets) < self.STREAM_POOL_SIZE:
                self._stream_sockets.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def _connect(self, timeout: float) -> http.client.HTTPConnection:
        """The live connection (opened on demand), at ``timeout``."""
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
        elif self._connection.sock is not None:
            # reused connection: apply this request's timeout to the
            # existing socket (probe vs chunk timeouts differ)
            self._connection.sock.settimeout(timeout)
        else:
            self._connection.timeout = timeout
        return self._connection

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def close(self) -> None:
        """Drop the persistent connection (safe to call any time)."""
        with self._connection_lock:
            self._drop_connection()
            for sock in self._stream_sockets:
                try:
                    sock.close()
                except OSError:
                    pass
            self._stream_sockets.clear()

    def _request(
        self, method: str, path: str, body: bytes | None, timeout: float
    ) -> tuple[int, bytes]:
        headers = (
            {"Content-Type": "application/octet-stream"} if body is not None else {}
        )
        with self._connection_lock:
            reused = self._connection is not None
            for attempt in (1, 2):
                connection = self._connect(timeout)
                try:
                    connection.request(method, path, body=body, headers=headers)
                    response = connection.getresponse()
                    payload = response.read()
                except Exception as exc:
                    self._drop_connection()
                    # a stale kept-alive connection (worker restarted,
                    # idle close) fails on reuse; one fresh attempt
                    # distinguishes that from a genuinely dead worker.
                    # NOT on timeout: a slow worker is already running
                    # the chunk — re-sending it would double the
                    # failover latency on the overloaded host
                    if (
                        attempt == 1
                        and reused
                        and not isinstance(exc, TimeoutError)
                    ):
                        self.reconnects += 1
                        reused = False
                        continue
                    raise ClusterError(
                        f"worker {self.address} unreachable: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                if response.will_close:
                    self._drop_connection()
                return response.status, payload
        raise AssertionError("unreachable")  # pragma: no cover

    def probe(self) -> dict[str, object]:
        """``GET /healthz``; rejects protocol-mismatched workers.

        Returns the health document of a live, compatible worker;
        raises :class:`ClusterError` for anything else.
        """
        status, raw = self._request("GET", "/healthz", None, self.probe_timeout)
        if status != 200:
            raise ClusterError(
                f"worker {self.address} health probe returned HTTP {status}"
            )
        try:
            health = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ClusterError(
                f"worker {self.address} health probe is not JSON: {exc}"
            ) from exc
        if health.get("status") != "ok":
            raise ClusterError(
                f"worker {self.address} reports status {health.get('status')!r}"
            )
        protocol = health.get("protocol")
        if protocol != wire.PROTOCOL_VERSION:
            raise ClusterError(
                f"worker {self.address} speaks protocol v{protocol}, "
                f"coordinator speaks v{wire.PROTOCOL_VERSION}; rejected"
            )
        return health

    def run_chunk(
        self, body: bytes, start: int, stop: int, trace_id: "str | None" = None
    ) -> list:
        """``POST /trials`` for span ``[start, stop)``; verified results.

        ``trace_id`` is stamped into the request frame so the worker's
        logs and metrics correlate with the originating request.
        """
        status, raw = self._request(
            "POST",
            "/trials",
            wire.encode_request(body, start, stop, trace_id),
            self.timeout,
        )
        if status != 200:
            try:
                detail = json.loads(raw).get("error", "")
            except Exception:
                detail = raw[:200].decode("utf-8", "replace")
            message = (
                f"worker {self.address} failed chunk [{start}, {stop}): "
                f"HTTP {status}: {detail}"
            )
            # 500 is the worker's "the trial function itself raised"
            # signal (worker.py) — not evidence the worker is unhealthy
            if status == 500:
                raise _TrialFaultError(message)
            raise ClusterError(message)
        return wire.decode_response(raw, start, stop)


class _WorkerSlot:
    """One registered worker's scheduling state (guarded by the backend lock)."""

    __slots__ = (
        "client", "alive", "last_error", "breaker",
        "inflight", "chunks", "failures", "source", "retired",
    )

    def __init__(
        self,
        client: WorkerClient,
        breaker: CircuitBreaker,
        source: str = "static",
    ):
        self.client = client
        self.alive = False  # probed before first use
        self.last_error: str | None = None
        self.breaker = breaker  # per-worker failure policy state
        self.inflight = 0
        self.chunks = 0
        self.failures = 0
        self.source = source  # "static" or "registry"
        self.retired = False  # registry says gone; drop when drained


class _ChunkTask:
    """One span's scheduling state while it is in the multiplexer."""

    __slots__ = (
        "index", "start", "stop", "tried", "stale_retried", "slot",
        "attempt_span", "attempts",
    )

    def __init__(self, index: int, start: int, stop: int):
        self.index = index
        self.start = start
        self.stop = stop
        self.tried: set[int] = set()  # worker slots that failed this chunk
        self.stale_retried = False  # one fresh-socket retry per chunk
        self.slot: _WorkerSlot | None = None  # where it is running now
        self.attempt_span: Span | None = None  # the in-flight attempt's span
        self.attempts = 0  # attempt ordinal (retries become sibling spans)


class RemoteTrialBackend:
    """Monte-Carlo trials sharded across worker daemons, with failover.

    Parameters
    ----------
    workers:
        Static ``host:port`` addresses to register.  An empty fleet is
        legal: every run falls back to the local backend with the
        reason recorded (so ``--trial-backend remote`` without a
        cluster degrades instead of failing).
    local:
        The fallback :class:`TrialBackend` (or backend name) used when
        the cluster is empty/degraded and for chunks no worker could
        complete.  Default ``vectorized``.
    timeout:
        Per-chunk request timeout in seconds; a slower worker is
        treated as dead and its chunk fails over.
    probe_timeout:
        Health-probe timeout in seconds.
    chunk_size:
        Trials per chunk; default a few chunks per live worker
        (failover granularity vs per-chunk HTTP overhead).
    reprobe_interval:
        Base seconds between health probes of a *dead* worker —
        jittered per worker and grown exponentially by the breaker (see
        ``policy``); kept as its own argument because it is the knob
        every deployment tunes first.  Ignored when ``policy`` is
        given.
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` receiving the
        coordinator's dispatch/failover latency histograms, breaker
        state gauges, and retry counters (default: the process-wide
        registry).  Every chunk attempt observes
        ``repro_cluster_chunk_seconds{worker, outcome}``.
    registry_url:
        A worker registry (:mod:`repro.cluster.registry`) to poll for
        live membership — workers join and leave without a coordinator
        restart.  Composes with ``workers``: static addresses stay
        pinned, registry-sourced ones follow the lease table.
    membership_interval:
        Minimum seconds between registry polls (also the staleness
        bound on the fleet view).  When every known worker is
        exhausted mid-run, the coordinator polls again ahead of
        schedule so a just-registered replacement can pick up the
        remaining chunks.
    policy:
        The :class:`~repro.cluster.policy.FailurePolicy` driving every
        per-worker breaker and the per-run retry budget.  Default: a
        policy whose re-probe interval is ``reprobe_interval``.
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence[str] = (),
        local: TrialBackend | str | None = None,
        timeout: float = 30.0,
        probe_timeout: float = 5.0,
        chunk_size: int | None = None,
        reprobe_interval: float = 10.0,
        registry: MetricsRegistry | None = None,
        registry_url: str | None = None,
        membership_interval: float = 1.0,
        policy: FailurePolicy | None = None,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ClusterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.registry = registry if registry is not None else get_default_registry()
        self._chunk_seconds = self.registry.histogram(
            "repro_cluster_chunk_seconds",
            "Latency of one chunk attempt, per worker and outcome "
            "(ok, failed, trial_fault)",
            tag_names=("worker", "outcome"),
        )
        self._breaker_gauge = self.registry.gauge(
            "repro_cluster_breaker_state",
            "Circuit breaker state per worker "
            "(0 closed, 1 open, 2 half-open)",
            tag_names=("worker",),
        )
        self._breaker_transitions = self.registry.counter(
            "repro_cluster_breaker_transitions_total",
            "Circuit breaker transitions per worker and target state",
            tag_names=("worker", "state"),
        )
        self._retries_counter = self.registry.counter(
            "repro_cluster_retries_total",
            "Failover retries spent against the per-run retry budget",
        )
        self.policy = (
            policy
            if policy is not None
            else FailurePolicy(reprobe_interval=reprobe_interval)
        )
        self._timeout = timeout
        self._probe_timeout = probe_timeout
        self._slots = [
            self._make_slot(address, source="static") for address in workers
        ]
        self._registry_client = (
            RegistryClient(registry_url, timeout=probe_timeout)
            if registry_url
            else None
        )
        self._membership_interval = membership_interval
        self._last_membership_poll = float("-inf")
        self._membership_error: str | None = None
        self._membership_polls = 0
        self._membership_poll_failures = 0
        self._workers_joined = 0
        self._workers_left = 0
        if local is None or isinstance(local, str):
            self._local = resolve_trial_backend(local or "vectorized")
        else:
            self._local = local
        self._chunk_size = chunk_size
        self._lock = threading.Lock()
        self.fallback_reason: str | None = None  # read by LabelExecutor.stats
        self._runs = 0
        self._remote_runs = 0
        self._local_runs = 0
        self._chunks_remote = 0
        self._chunk_failures = 0
        self._chunks_failed_over = 0
        self._chunks_recovered_locally = 0
        self._retries_spent = 0
        self._budget_exhausted_runs = 0

    def _make_slot(self, address: str, source: str) -> _WorkerSlot:
        client = WorkerClient(address, self._timeout, self._probe_timeout)

        def note_transition(state: str) -> None:
            self._breaker_gauge.set(
                BREAKER_STATES.index(state), worker=address
            )
            self._breaker_transitions.inc(worker=address, state=state)

        breaker = CircuitBreaker(
            self.policy, seed=address, on_transition=note_transition
        )
        # seed the gauge so healthy workers show a (closed) series too —
        # an absent series is indistinguishable from an unmonitored worker
        self._breaker_gauge.set(BREAKER_STATES.index("closed"), worker=address)
        return _WorkerSlot(client, breaker, source=source)

    # -- membership -----------------------------------------------------------

    def register(self, address: str) -> None:
        """Pin a worker at runtime (probed before first use)."""
        slot = self._make_slot(address, source="static")
        with self._lock:
            self._slots.append(slot)

    def _refresh_membership(self, desperate: bool = False) -> None:
        """Reconcile the slot table with the worker registry, if any.

        Called at the start of every run and — ``desperate`` — from the
        failover path once every known worker has been tried, so a
        replacement that registered seconds ago can still save the
        run.  Throttled by ``membership_interval`` (a tighter floor
        when desperate); a poll that fails leaves the last-known
        membership in place, because a partitioned registry must
        degrade the fleet view, not the fleet.
        """
        client = self._registry_client
        if client is None:
            return
        now = time.monotonic()
        interval = (
            min(0.25, self._membership_interval)
            if desperate
            else self._membership_interval
        )
        with self._lock:
            if now - self._last_membership_poll < interval:
                return
            self._last_membership_poll = now
        try:
            addresses = set(client.addresses())
        except ClusterError as exc:
            with self._lock:
                self._membership_polls += 1
                self._membership_poll_failures += 1
                self._membership_error = str(exc)
            _log.warning("registry poll failed; keeping last membership: %s", exc)
            return
        to_close: list[WorkerClient] = []
        with self._lock:
            self._membership_polls += 1
            self._membership_error = None
            known = {slot.client.address for slot in self._slots}
            for address in sorted(addresses - known):
                self._slots.append(self._make_slot(address, source="registry"))
                self._workers_joined += 1
                _log.info("worker %s joined from the registry", address)
            for slot in list(self._slots):
                if slot.source != "registry" or slot.client.address in addresses:
                    continue
                if slot.inflight > 0:
                    slot.retired = True  # drained by _release_slot
                else:
                    self._slots.remove(slot)
                    to_close.append(slot.client)
                self._workers_left += 1
                _log.info("worker %s left the registry", slot.client.address)
        for client_ in to_close:
            client_.close()

    def _release_slot(self, slot: _WorkerSlot) -> None:
        """Drop one in-flight count; reap the slot if it was retired.

        Caller must hold the lock.
        """
        slot.inflight -= 1
        if slot.retired and slot.inflight <= 0 and slot in self._slots:
            self._slots.remove(slot)

    def _live_slots(self) -> list[_WorkerSlot]:
        """Refresh membership, probe what the policy allows, return the
        schedulable workers.

        Live (probed, breaker closed) workers are trusted until a chunk
        fails on them.  Failed ones are re-probed on the breaker's
        schedule — jittered per worker below the threshold, exponential
        backoff once the breaker opens — so restarted daemons rejoin
        without any down host being able to stall every run, and no
        recovering host takes a synchronized probe herd.
        """
        self._refresh_membership()
        live: list[_WorkerSlot] = []
        for slot in list(self._slots):
            with self._lock:
                if slot.retired:
                    continue
                if slot.alive and slot.breaker.allows_dispatch():
                    live.append(slot)
                    continue
                if not slot.breaker.try_acquire_probe():
                    continue  # backing off; skip this run
            try:
                slot.client.probe()
            except ClusterError as exc:
                with self._lock:
                    slot.last_error = str(exc)
                    slot.breaker.record_failure()
                continue
            with self._lock:
                slot.alive = True
                slot.last_error = None
                if slot.breaker.state == "closed":
                    # recovered below the threshold: clean slate.  A
                    # half-open breaker stays half-open — only its
                    # probe *chunk* may close it.
                    slot.breaker.record_success()
            live.append(slot)
        return live

    def _pick_worker(self, exclude: set[int]) -> _WorkerSlot | None:
        """The least-loaded schedulable worker not yet tried for this chunk.

        Breaker-closed workers share the load; a half-open worker is
        used only when no closed one remains, and then for exactly one
        probe chunk — its recovery must be tested without betting the
        whole run on it.
        """
        with self._lock:
            candidates = [
                slot
                for slot in self._slots
                if slot.alive
                and not slot.retired
                and id(slot) not in exclude
                and slot.breaker.allows_dispatch()
            ]
            if candidates:
                chosen = min(candidates, key=lambda slot: slot.inflight)
                chosen.inflight += 1
                return chosen
            for slot in self._slots:
                if (
                    slot.alive
                    and not slot.retired
                    and id(slot) not in exclude
                    and slot.breaker.try_acquire_half_open_chunk()
                ):
                    slot.inflight += 1
                    return slot
            return None

    # -- execution ------------------------------------------------------------

    def _run_local(
        self, fn: TrialFn, payload: Any, trials: int, reason: str
    ) -> list[Any]:
        with self._lock:
            self.fallback_reason = reason
            self._local_runs += 1
        return self._local.run(fn, payload, trials)

    def _run_chunks(
        self,
        body: bytes,
        fn: TrialFn,
        payload: Any,
        spans: Sequence[tuple[int, int]],
        run_state: dict[str, int],
        trace_id: "str | None" = None,
        parent_span: "Span | None" = None,
    ) -> list[list[Any]]:
        """Every span at once through the multiplexer, with failover.

        All spans are dispatched up front (least-loaded worker first,
        several concurrent streams per worker — the daemons are
        threaded), then one selector loop completes them in whatever
        order responses land.  A failed chunk redispatches from inside
        the loop, so failover overlaps the still-running chunks instead
        of waiting behind them.  Spans no worker could complete (and
        trial faults) are re-run locally after the loop, at their
        absolute indices.

        ``trace_id`` travels explicitly: it is stamped into each wire
        frame so worker telemetry correlates with the originating
        request.  ``parent_span`` (the ``cluster.dispatch`` span opened
        by :meth:`run`) parents one ``cluster.chunk`` span per *attempt*
        — retries and failovers become sibling spans tagged with the
        failure class — and the worker spans backhauled in each chunk
        response are revived under their attempt's span, so the whole
        cross-process trace assembles on this side of the wire.
        """
        results: dict[int, list[Any]] = {}
        # (index, start, stop) spans destined for the local fallback
        local_spans: list[tuple[int, int, int]] = []
        mux = ChunkMultiplexer()
        completed: list[ChunkStream] = []
        ring = get_trace_buffer()

        def start_attempt(task: _ChunkTask, slot: _WorkerSlot) -> None:
            client = slot.client
            sock = client.take_stream_socket()
            frame = wire.encode_request(body, task.start, task.stop, trace_id)
            if parent_span is not None:
                task.attempts += 1
                task.attempt_span = Span(
                    "cluster.chunk",
                    trace_id=parent_span.trace_id,
                    span_id=new_span_id(),
                    parent_id=parent_span.span_id,
                    tags=clamp_tags({
                        "worker": client.address,
                        "chunk": f"[{task.start}, {task.stop})",
                        "attempt": task.attempts,
                    }),
                )
            stream = ChunkStream(
                client.host,
                client.port,
                encode_http_request(client.host, client.port, "/trials", frame),
                timeout=client.timeout,
                sock=sock,
                reused=sock is not None,
                context=task,
            )
            task.slot = slot
            if mux.submit(stream):  # failed synchronously (e.g. refused)
                completed.append(stream)

        def finish_attempt(
            task: _ChunkTask,
            stream: ChunkStream,
            outcome: str,
            failure_class: "str | None" = None,
        ) -> "Span | None":
            """Close the in-flight attempt's span and record it."""
            attempt = task.attempt_span
            task.attempt_span = None
            if attempt is None:
                return None
            attempt.duration = max(0.0, time.perf_counter() - stream.started)
            attempt.tags["outcome"] = outcome
            if failure_class is not None:
                attempt.status = "error"
                attempt.tags["failure_class"] = failure_class
                if stream.error is not None:
                    attempt.error = str(stream.error)[:200]
            ring.record(attempt)
            return attempt

        def recover_locally(task: _ChunkTask, reason: str | None = None) -> None:
            with self._lock:
                self._chunks_recovered_locally += 1
                run_state["local"] += 1
                if reason is not None:
                    self.fallback_reason = reason
                elif task.tried:
                    self.fallback_reason = (
                        f"chunk [{task.start}, {task.stop}) failed on "
                        f"{len(task.tried)} worker(s); re-run locally"
                    )
            if task.tried:
                _log.warning(
                    "chunk [%d, %d) exhausted %d worker(s); recovering locally",
                    task.start, task.stop, len(task.tried),
                    extra={"trace_id": trace_id},
                )
            local_spans.append((task.index, task.start, task.stop))

        def dispatch(task: _ChunkTask) -> None:
            if task.tried:  # a failover retry, not the first attempt
                if run_state["budget"] <= 0:
                    # the run's retry budget is spent: degrade to local
                    # execution NOW with the reason recorded, instead of
                    # cycling a flapping fleet forever
                    run_state["budget_exhausted"] = True
                    recover_locally(
                        task,
                        reason=(
                            f"retry budget exhausted after "
                            f"{run_state['retries']} failover retr"
                            f"{'y' if run_state['retries'] == 1 else 'ies'}; "
                            f"chunk [{task.start}, {task.stop}) re-run locally"
                        ),
                    )
                    return
                run_state["budget"] -= 1
                run_state["retries"] += 1
                self._retries_counter.inc()
            slot = self._pick_worker(exclude=task.tried)
            if slot is None and self._registry_client is not None:
                # every known worker is dead or tried — a replacement
                # may have registered since the run began; look once
                self._refresh_membership(desperate=True)
                self._live_slots()  # probe whatever just joined
                slot = self._pick_worker(exclude=task.tried)
            if slot is None:
                recover_locally(task)
                return
            start_attempt(task, slot)

        def finish(stream: ChunkStream) -> None:
            task: _ChunkTask = stream.context
            slot = task.slot
            address = slot.client.address
            if stream.state == "failed" and stream.stale and not task.stale_retried:
                # a kept-alive socket died before any response byte: a
                # worker restart or idle close, not worker death — one
                # transparent retry on a fresh socket, worker unblamed
                finish_attempt(task, stream, "stale_retry", "stale")
                task.stale_retried = True
                slot.client.reconnects += 1
                start_attempt(task, slot)
                return
            error: ClusterError | None = stream.error
            trial_fault = False
            backhauled: list = []
            if error is None:
                try:
                    if stream.status == 500:
                        # the worker's "the trial function itself raised"
                        # signal (worker.py) — not worker ill health
                        raise _TrialFaultError(
                            self._chunk_error_detail(stream, task, address)
                        )
                    if stream.status != 200:
                        raise ClusterError(
                            self._chunk_error_detail(stream, task, address)
                        )
                    results[task.index], backhauled = wire.decode_response_spans(
                        stream.body, task.start, task.stop
                    )
                except _TrialFaultError as exc:
                    trial_fault = True
                    error = exc
                except ClusterError as exc:
                    error = exc
            if trial_fault:
                finish_attempt(task, stream, "trial_fault", "trial_fault")
                # every other worker would fail identically, so skip
                # failover, leave the worker alive, and re-run locally —
                # a genuine bug re-raises there with its real traceback
                self._chunk_seconds.observe(
                    time.perf_counter() - stream.started,
                    worker=address, outcome="trial_fault",
                )
                if stream.reusable:
                    slot.client.store_stream_socket(stream.detach_socket())
                else:
                    stream.close()
                with self._lock:
                    self._release_slot(slot)
                    # a 500 is a *responsive* worker reporting someone
                    # else's bug; its breaker heals like any success
                    slot.breaker.record_success()
                recover_locally(task)
                _log.warning(
                    "trial fault on %s for chunk [%d, %d); re-running locally",
                    address, task.start, task.stop,
                    extra={"trace_id": trace_id},
                )
                return
            if error is not None:
                finish_attempt(
                    task, stream, "failed", stream.failure_class or "error"
                )
                stream.close()
                self._chunk_seconds.observe(
                    time.perf_counter() - stream.started,
                    worker=address, outcome="failed",
                )
                task.tried.add(id(slot))
                with self._lock:
                    self._release_slot(slot)
                    slot.alive = False
                    slot.last_error = str(error)
                    slot.failures += 1
                    slot.breaker.record_failure()
                    self._chunk_failures += 1
                _log.warning(
                    "chunk [%d, %d) failed on %s (%s); failing over: %s",
                    task.start, task.stop, address,
                    stream.failure_class or "error", error,
                    extra={"trace_id": trace_id},
                )
                dispatch(task)
                return
            attempt = finish_attempt(task, stream, "ok")
            if attempt is not None and backhauled:
                # the worker's spans, re-parented under this attempt so
                # the cross-process tree connects; the ring's listeners
                # (the trace collector) see them like any local span
                for revived in revive_spans(
                    backhauled,
                    trace_id=attempt.trace_id,
                    parent_id=attempt.span_id,
                    extra_tags={"worker": address},
                ):
                    ring.record(revived)
            self._chunk_seconds.observe(
                time.perf_counter() - stream.started,
                worker=address, outcome="ok",
            )
            if stream.reusable:
                slot.client.store_stream_socket(stream.detach_socket())
            else:
                stream.close()
            with self._lock:
                self._release_slot(slot)
                slot.chunks += 1
                slot.breaker.record_success()
                self._chunks_remote += 1
                run_state["remote"] += 1
                if task.tried:
                    self._chunks_failed_over += 1
            _log.info(
                "chunk [%d, %d) completed on %s",
                task.start, task.stop, address,
                extra={"trace_id": trace_id},
            )

        try:
            for index, (start, stop) in enumerate(spans):
                dispatch(_ChunkTask(index, start, stop))
            while completed or mux.active:
                if not completed:
                    completed.extend(mux.poll())
                while completed:
                    finish(completed.pop())
        finally:
            mux.close()
        # local recovery runs after the wire work so a re-raising trial
        # fault cannot strand still-registered sockets in the selector
        for index, start, stop in local_spans:
            with span(
                "cluster.chunk.local",
                registry=self.registry,
                chunk=f"[{start}, {stop})",
            ):
                results[index] = run_trial_span(
                    self._local, fn, payload, start, stop
                )
        return [results[index] for index in range(len(spans))]

    @staticmethod
    def _chunk_error_detail(
        stream: ChunkStream, task: _ChunkTask, address: str
    ) -> str:
        try:
            detail = json.loads(stream.body).get("error", "")
        except Exception:
            detail = stream.body[:200].decode("utf-8", "replace")
        return (
            f"worker {address} failed chunk [{task.start}, {task.stop}): "
            f"HTTP {stream.status}: {detail}"
        )

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Shard the batch across live workers; results in trial order."""
        with self._lock:
            self._runs += 1
        if trials <= 0:
            return []
        # captured here, on the submitting thread: the chunk pool's
        # threads don't inherit contextvars, so the trace id travels as
        # an explicit argument into each chunk (and onto the wire)
        trace_id = current_trace_id()
        live = self._live_slots()
        if not live:
            reason = (
                "no workers configured"
                if not self._slots
                else "no live workers (all probes failed)"
            )
            return self._run_local(fn, payload, trials, reason)
        try:
            body = wire.encode_trial_work(fn, payload)
        except ClusterError as exc:
            return self._run_local(fn, payload, trials, str(exc))
        spans = _chunk_spans(trials, len(live), self._chunk_size)
        run_state = {  # this run's chunk outcomes and retry budget
            "remote": 0,
            "local": 0,
            "retries": 0,
            "budget": self.policy.budget_for(len(spans)),
            "budget_exhausted": False,
        }
        # one dispatch span covers the sharded run; per-attempt chunk
        # spans (and the worker spans each response backhauls) hang off
        # it, so a request's waterfall shows exactly where trials ran
        with span(
            "cluster.dispatch",
            trace_id=trace_id,
            registry=self.registry,
            trials=trials,
            chunks=len(spans),
            workers=len(live),
        ) as dispatch_span:
            chunks = self._run_chunks(
                body, fn, payload, spans, run_state, trace_id,
                parent_span=dispatch_span,
            )
        with self._lock:
            # a "remote" run must mean trials actually crossed the wire;
            # a batch whose every chunk was recovered locally counts local
            if run_state["remote"] > 0:
                self._remote_runs += 1
            else:
                self._local_runs += 1
            self._retries_spent += run_state["retries"]
            if run_state["budget_exhausted"]:
                self._budget_exhausted_runs += 1
        results: list[Any] = []
        for chunk in chunks:  # span order == trial order
            results.extend(chunk)
        return results

    # -- observability and lifecycle ------------------------------------------

    def stats(self) -> dict[str, object]:
        """Dispatch/failover counters plus per-worker registry state.

        Merged into ``GET /engine/stats`` by
        :meth:`repro.engine.executor.LabelExecutor.stats`.
        """
        with self._lock:
            stats = merged_stats(
                {
                    "workers_configured": len(self._slots),
                    "workers_alive": sum(slot.alive for slot in self._slots),
                    "runs": self._runs,
                    "remote_runs": self._remote_runs,
                    "local_runs": self._local_runs,
                    "chunks_remote": self._chunks_remote,
                    "chunk_failures": self._chunk_failures,
                    "chunks_failed_over": self._chunks_failed_over,
                    "chunks_recovered_locally": self._chunks_recovered_locally,
                    "retries_spent": self._retries_spent,
                    "budget_exhausted_runs": self._budget_exhausted_runs,
                    "retry_budget": self.policy.retry_budget,
                    "breakers_open": sum(
                        slot.breaker.state != "closed" for slot in self._slots
                    ),
                    "connection_reconnects": sum(
                        slot.client.reconnects for slot in self._slots
                    ),
                    "fallback_reason": self.fallback_reason,
                    "local_backend": self._local.effective_name,
                },
                workers=[
                    {
                        "address": slot.client.address,
                        "alive": slot.alive,
                        "source": slot.source,
                        "chunks": slot.chunks,
                        "failures": slot.failures,
                        "reconnects": slot.client.reconnects,
                        "last_error": slot.last_error,
                        "breaker": slot.breaker.view(),
                    }
                    for slot in self._slots
                ],
            )
            if self._registry_client is not None:
                stats["membership"] = {
                    "registry": self._registry_client.url,
                    "interval": self._membership_interval,
                    "polls": self._membership_polls,
                    "poll_failures": self._membership_poll_failures,
                    "workers_joined": self._workers_joined,
                    "workers_left": self._workers_left,
                    "last_error": self._membership_error,
                }
            return stats

    def shutdown(self) -> None:
        """Release the local backend and connections (workers are not ours)."""
        self._local.shutdown()
        for slot in self._slots:
            slot.client.close()

    @property
    def effective_name(self) -> str:
        """``remote`` while any worker is live, else the local backend's."""
        with self._lock:
            if any(slot.alive for slot in self._slots):
                return self.name
        return self._local.effective_name
