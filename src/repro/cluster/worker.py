"""The trial worker daemon: one machine's slice of the Monte-Carlo load.

A worker is a stdlib ``http.server`` daemon (the same substrate as
:mod:`repro.app.server`) that executes trial-chunk requests framed by
:mod:`repro.cluster.wire`:

- ``POST /trials``  — body is one wire frame: pickled
  ``(trial_fn, payload)`` plus a trial-index span ``[start, stop)``.
  The worker runs the span through its local
  :class:`~repro.engine.backends.TrialBackend` (default ``vectorized``)
  at the span's *absolute* trial indices —
  :func:`repro.engine.backends.run_trial_span` — so per-trial RNG
  streams, and therefore label bytes, are identical to an unsharded
  run.  Responds with a result frame (200), a rejection (400: bad
  magic, version mismatch, corrupted body — counted, never executed),
  or a trial error (500: the trial function itself raised; the
  coordinator will re-raise it locally).
- ``GET /healthz``  — liveness + protocol version + backend names;
  the coordinator refuses to schedule onto a worker whose protocol
  differs from its own.  The probe's own response time is recorded in
  the worker's metrics registry (``repro_worker_healthz_seconds``).
  Once shutdown begins the same route answers **503** with status
  ``draining`` — probes see the worker leaving before its sockets
  close, so coordinators stop scheduling onto it instead of timing
  out against it.
- ``GET /stats``    — chunk/trial/rejection/error counters, daemon
  ``uptime_seconds``, the trace id of the last executed chunk, and —
  when registered — the heartbeat loop's registration stats.
- ``GET /debug/profile?seconds=N&hz=H&format=collapsed|json`` — an
  on-demand sampling-profiler window (:mod:`repro.telemetry.profiling`)
  over this worker's threads, same contract as the coordinator's
  endpoint; ``ranking-facts profile --fleet`` backhauls these from
  every registry-known worker in one sweep.  ``--profile`` (or
  ``REPRO_PROFILE=1``) additionally keeps a low-rate continuous
  sampler running from startup.

Fleet membership (:mod:`repro.cluster.registry`): started with
``--register URL`` the worker announces itself to a registry and
keeps its TTL lease alive with jittered heartbeats
(:class:`~repro.cluster.registry.HeartbeatLoop`).  On shutdown —
including SIGTERM to ``serve_worker_forever`` — it first drains
(``/healthz`` → 503), then deregisters gracefully, then closes; an
unclean death is reaped by the lease TTL instead.

Telemetry: a chunk request frame may carry the originating request's
trace id (:mod:`repro.cluster.wire`, protocol minor 1).  The worker
adopts it — chunk spans, metrics, and structured log lines
(``--log-level`` / ``REPRO_LOG_LEVEL``; :mod:`repro.telemetry.logging`)
all carry the coordinator's trace id, so one label request can be
followed across the process boundary.

Failover semantics from the worker's side: a worker holds **no** batch
state — each chunk is self-contained — so the coordinator can resend a
dead worker's span to any other worker (or run it locally) and the
recomputed results are byte-identical.  Workers can join or die at any
time without coordination.

Run one with ``ranking-facts worker`` or
``python -m repro.cluster.worker --port 8101``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.cluster import wire
from repro.cluster.registry import DEFAULT_LEASE_TTL, HeartbeatLoop, RegistryClient
from repro.engine.backends import resolve_trial_backend, run_trial_span
from repro.errors import ClusterError
from repro.telemetry import (
    DEFAULT_CONTINUOUS_HZ,
    DEFAULT_WINDOW_HZ,
    MAX_BACKHAUL_SPANS,
    MetricsRegistry,
    SamplingProfiler,
    configure_logging,
    env_profile_enabled,
    get_default_profiler,
    get_default_registry,
    get_logger,
    merged_stats,
    span,
)

_log = get_logger("cluster.worker")

__all__ = [
    "TrialWorker",
    "WorkerHandle",
    "make_worker",
    "serve_worker_forever",
    "add_worker_arguments",
    "main",
]


class _SpanCapture:
    """A ``record``-compatible sink collecting a chunk's spans in order.

    Handed to ``span(buffer=...)`` for the chunk so its spans are
    captured for backhaul instead of landing in the process ring —
    the coordinator revives them (re-parented under its own attempt
    span) on the far side, which is where they become visible.
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list = []

    def record(self, entry) -> None:
        self.spans.append(entry)


class TrialWorker:
    """The executing core of a worker daemon: backend + counters.

    Kept separate from the HTTP plumbing so tests (and future
    transports) can drive it directly.

    ``span_backhaul`` (default on) serializes the spans completed under
    a traced chunk into the response frame (wire minor 2, bounded by
    :data:`~repro.telemetry.collect.MAX_BACKHAUL_SPANS`), so the
    coordinator can assemble one cross-process trace.  Untraced chunks
    never pay for it — their response body stays the bare result list.
    """

    def __init__(
        self,
        backend: str | None = None,
        workers: int | None = None,
        registry: MetricsRegistry | None = None,
        span_backhaul: bool = True,
    ):
        self.backend_requested = backend if backend is not None else "vectorized"
        if self.backend_requested == "remote":
            # a worker relaying to more workers would recurse
            raise ClusterError("a trial worker cannot use the 'remote' backend")
        self._backend = resolve_trial_backend(self.backend_requested, workers)
        self.registry = registry if registry is not None else get_default_registry()
        self.span_backhaul = span_backhaul
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._chunks = 0
        self._trials = 0
        self._rejected = 0
        self._trial_errors = 0
        self._backhauled_spans = 0
        self._last_trace_id: str | None = None
        self._draining = False
        #: the daemon's HeartbeatLoop, when registered (set by make_worker)
        self.heartbeat: HeartbeatLoop | None = None
        #: the daemon's sampling profiler (set by make_worker)
        self.profiler: SamplingProfiler | None = None

    def run_chunk(self, data: bytes) -> bytes:
        """Decode one request frame, execute the span, return the response frame.

        :class:`ClusterError` (bad frame) and trial-function exceptions
        propagate to the HTTP layer, which maps them to 400 and 500.
        The frame's propagated trace id (if any) becomes the ambient
        trace for the chunk's span and log lines, and is echoed in the
        response frame.
        """
        try:
            fn, payload, start, stop, trace_id = wire.decode_request(data)
        except ClusterError as exc:
            with self._lock:
                self._rejected += 1
            _log.warning("rejected chunk frame: %s", exc)
            raise
        with self._lock:
            if trace_id is not None:
                self._last_trace_id = trace_id
        capture = (
            _SpanCapture()
            if (self.span_backhaul and trace_id is not None)
            else None
        )
        try:
            # adopting the coordinator's trace id makes this worker's
            # span, metrics, and log lines correlatable with the
            # originating request on the far side of the wire
            with span(
                "worker.chunk",
                trace_id=trace_id,
                registry=self.registry,
                buffer=capture,
                span_range=f"[{start}, {stop})",
                backend=self._backend.effective_name,
            ):
                results = run_trial_span(self._backend, fn, payload, start, stop)
        except Exception as exc:
            with self._lock:
                self._trial_errors += 1
            _log.error(
                "trial function raised in chunk [%d, %d): %s", start, stop, exc,
                extra={"trace_id": trace_id},
            )
            raise
        spans = None
        if capture is not None and capture.spans:
            spans = [
                entry.as_dict()
                for entry in capture.spans[:MAX_BACKHAUL_SPANS]
            ]
        with self._lock:
            self._chunks += 1
            self._trials += stop - start
            if spans:
                self._backhauled_spans += len(spans)
        _log.info(
            "executed chunk [%d, %d) on %s", start, stop,
            self._backend.effective_name, extra={"trace_id": trace_id},
        )
        return wire.encode_response(results, start, stop, trace_id, spans=spans)

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (``/healthz`` answers 503)."""
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Flip ``/healthz`` to 503 *before* the sockets close.

        A coordinator probing mid-shutdown sees an explicit "leaving"
        instead of a connection error it must classify, and stops
        scheduling here; chunks already in flight still complete.
        """
        with self._lock:
            self._draining = True

    def health(self) -> dict[str, object]:
        """The ``/healthz`` body: liveness plus compatibility facts."""
        with self._lock:
            status = "draining" if self._draining else "ok"
        return {
            "status": status,
            "protocol": wire.PROTOCOL_VERSION,
            "protocol_minor": wire.PROTOCOL_MINOR,
            "backend": self.backend_requested,
            "backend_effective": self._backend.effective_name,
        }

    def stats(self) -> dict[str, object]:
        """The ``/stats`` body: counters, uptime, last chunk's trace id."""
        with self._lock:
            counters = {
                "chunks": self._chunks,
                "trials": self._trials,
                "rejected_frames": self._rejected,
                "trial_errors": self._trial_errors,
                "backhauled_spans": self._backhauled_spans,
                "backend": self.backend_requested,
                "backend_effective": self._backend.effective_name,
                "uptime_seconds": time.monotonic() - self._started,
                "last_trace_id": self._last_trace_id,
                "draining": self._draining,
            }
        if self.heartbeat is not None:
            counters["registration"] = self.heartbeat.stats()
        if self.profiler is not None:
            counters["profiles"] = {"profiler": self.profiler.stats()}
        return merged_stats(counters)

    def shutdown(self) -> None:
        """Release the local backend's resources (idempotent)."""
        self._backend.shutdown()


class _TrialWorkerHandler(BaseHTTPRequestHandler):
    """HTTP routes over one :class:`TrialWorker`."""

    worker: TrialWorker = None  # type: ignore[assignment]  # set by make_worker
    profile_source: str = "worker"  # refined to worker:<port> by make_worker

    server_version = "RankingFactsWorker/1.0"
    # HTTP/1.1: the coordinator keeps one persistent connection per
    # worker, so chunks after the first skip the TCP handshake
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep daemon output clean

    # coordinators hold persistent connections, so a handler thread can
    # outlive serve_forever; the server tracks open sockets so stop()
    # can sever them the way a killed process would
    def setup(self) -> None:
        connections = getattr(self.server, "live_connections", None)
        if connections is not None:
            connections.add(self.request)
        super().setup()

    def finish(self) -> None:
        super().finish()
        connections = getattr(self.server, "live_connections", None)
        if connections is not None:
            connections.discard(self.request)

    def _send_bytes(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, data: object) -> None:
        self._send_bytes(
            status, "application/json", json.dumps(data, indent=2).encode("utf-8")
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.partition("?")[0]
        if path == "/healthz":
            # the probe's own latency is a health signal: a loaded
            # worker answers slowly long before it answers wrongly
            started = time.perf_counter()
            body = self.worker.health()
            self._send_json(200 if body["status"] == "ok" else 503, body)
            self.worker.registry.histogram(
                "repro_worker_healthz_seconds",
                "Latency of this worker's own /healthz responses",
            ).observe(time.perf_counter() - started)
        elif path == "/stats":
            self._send_json(200, self.worker.stats())
        elif path == "/debug/profile":
            self._get_debug_profile()
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _get_debug_profile(self) -> None:
        """``GET /debug/profile?seconds=N&hz=H&format=collapsed|json``.

        The worker half of the fleet-wide profile backhaul: same
        parameters and payload shape as the coordinator's endpoint
        (:mod:`repro.app.server`), so one client can sweep both.  The
        handler thread blocks for the window while the sampler captures
        every *other* thread — chunk execution included.
        """
        profiler = self.worker.profiler
        if profiler is None:
            self._send_json(
                503, {"error": "profiling is not available on this worker"}
            )
            return
        params = parse_qs(self.path.partition("?")[2])
        try:
            seconds = float(params.get("seconds", ["2"])[-1])
            hz = float(params.get("hz", [str(DEFAULT_WINDOW_HZ)])[-1])
        except ValueError as exc:
            self._send_json(400, {"error": f"bad profile parameter: {exc}"})
            return
        fmt = params.get("format", ["json"])[-1]
        if fmt not in ("json", "collapsed"):
            self._send_json(
                400,
                {"error": f"unknown profile format {fmt!r}; use collapsed or json"},
            )
            return
        report = profiler.window(seconds, hz=hz)
        report.source = self.profile_source
        if fmt == "collapsed":
            self._send_bytes(
                200, "text/plain", report.to_collapsed().encode("utf-8")
            )
        else:
            self._send_json(200, report.as_dict())

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.partition("?")[0]
        if path != "/trials":
            self._send_json(404, {"error": f"unknown POST path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        data = self.rfile.read(length) if length > 0 else b""
        try:
            response = self.worker.run_chunk(data)
        except ClusterError as exc:  # rejected frame: refuse, don't guess
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # the trial itself raised
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_bytes(200, "application/octet-stream", response)


class WorkerHandle:
    """A running worker daemon plus its thread (context manager)."""

    def __init__(
        self,
        server: ThreadingHTTPServer,
        worker: TrialWorker,
        heartbeat: HeartbeatLoop | None = None,
    ):
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)
        self.worker = worker
        self.heartbeat = heartbeat
        #: whether this daemon started the process profiler's continuous
        #: sink (and so must stop it on shutdown); set by make_worker
        self.owns_continuous = False

    @property
    def address(self) -> str:
        """``host:port`` the daemon is bound to — a registry entry."""
        host, port = self._server.server_address[:2]
        return f"{host}:{int(port)}"

    @property
    def url(self) -> str:
        """Base URL for client requests."""
        return f"http://{self.address}"

    def start(self) -> "WorkerHandle":
        """Start serving in the background (and the heartbeat, if any)."""
        self._thread.start()
        if self.heartbeat is not None:
            self.heartbeat.start()
        return self

    def stop(self) -> None:
        """Drain, deregister, stop serving, release the backend (idempotent).

        The order is the graceful-exit protocol: ``/healthz`` flips to
        503 first, then the registry lease is released, and only then
        do the sockets close — a coordinator watching either signal
        stops scheduling here before requests start failing.

        Also severs any kept-alive client connections, so a stopped
        daemon looks exactly like a killed one to a coordinator holding
        a persistent connection (its next request fails instead of
        being served by a lingering handler thread).
        """
        self.worker.begin_drain()
        if self.heartbeat is not None:
            self.heartbeat.stop(deregister=True)
        self._server.shutdown()
        self._server.server_close()
        for connection in list(getattr(self._server, "live_connections", ())):
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._thread.is_alive():
            self._thread.join(timeout=5)
        if self.owns_continuous and self.worker.profiler is not None:
            self.worker.profiler.stop_continuous()
            self.owns_continuous = False
        self.worker.shutdown()

    def __enter__(self) -> "WorkerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def make_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    backend: str | None = None,
    workers: int | None = None,
    registry: MetricsRegistry | None = None,
    register_url: str | None = None,
    advertise: str | None = None,
    heartbeat_ttl: float = DEFAULT_LEASE_TTL,
    span_backhaul: bool = True,
    profile: bool | None = None,
    profile_hz: float | None = None,
) -> WorkerHandle:
    """Bind a worker daemon (port 0 = ephemeral, for tests).

    ``backend`` names the local :class:`TrialBackend` chunks execute on
    (default ``vectorized``); ``workers`` sizes pool backends;
    ``registry`` scopes the daemon's metrics (default: process-wide).
    ``register_url`` points at a :mod:`repro.cluster.registry` service:
    the handle then announces itself on start (as ``advertise`` if
    given — for daemons whose bind address is not how coordinators
    reach them — else its own bound ``host:port``), heartbeats every
    ``heartbeat_ttl / 3`` seconds, and deregisters on stop.  The
    returned handle is a context manager that starts serving on entry.

    ``profile`` (default: the ``REPRO_PROFILE`` environment variable)
    keeps the process profiler's low-rate continuous sampler running;
    ``GET /debug/profile`` windows work either way.
    """
    worker = TrialWorker(
        backend=backend, workers=workers, registry=registry,
        span_backhaul=span_backhaul,
    )
    worker.profiler = get_default_profiler()
    if profile is None:
        profile = env_profile_enabled()
    owns_continuous = False
    if profile:
        owns_continuous = worker.profiler.start_continuous(
            hz=profile_hz or DEFAULT_CONTINUOUS_HZ
        )
    handler = type("BoundWorkerHandler", (_TrialWorkerHandler,), {"worker": worker})
    server = ThreadingHTTPServer((host, port), handler)
    server.live_connections = set()  # severed on stop(); see WorkerHandle
    handler.profile_source = f"worker:{int(server.server_address[1])}"
    handle = WorkerHandle(server, worker)
    handle.owns_continuous = owns_continuous
    if register_url:
        handle.heartbeat = HeartbeatLoop(
            RegistryClient(register_url),
            advertise or handle.address,
            ttl=heartbeat_ttl,
            meta={
                "role": "worker",
                "protocol": wire.PROTOCOL_VERSION,
                "backend": worker.backend_requested,
            },
        )
        worker.heartbeat = handle.heartbeat  # surfaces in /stats
    return handle


def serve_worker_forever(
    host: str = "127.0.0.1",
    port: int = 8101,
    backend: str | None = None,
    workers: int | None = None,
    log_level: str | None = None,
    register: str | None = None,
    advertise: str | None = None,
    heartbeat_ttl: float = DEFAULT_LEASE_TTL,
    profile: bool | None = None,
) -> None:
    """Run a worker daemon until interrupted (the CLI's ``worker``).

    ``log_level`` (or ``REPRO_LOG_LEVEL``) turns on structured JSON
    logs on stderr — chunk executions tagged with the coordinator's
    propagated trace ids; unset, the daemon stays as quiet as before.

    ``register`` (a registry URL) enrolls the daemon in a fleet.  Both
    SIGTERM and Ctrl-C exit gracefully: drain (``/healthz`` → 503),
    deregister, then stop — so an orchestrator's ordinary stop signal
    never leaves a stale lease behind.
    """
    log_level = log_level or os.environ.get("REPRO_LOG_LEVEL") or None
    if log_level:
        configure_logging(log_level)
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        with make_worker(
            host=host, port=port, backend=backend, workers=workers,
            register_url=register, advertise=advertise,
            heartbeat_ttl=heartbeat_ttl, profile=profile,
        ) as handle:
            registered = f", registered at {register}" if register else ""
            print(
                f"Ranking Facts trial worker on {handle.url} "
                f"(backend {handle.worker.backend_requested}{registered}, "
                "Ctrl-C to stop)"
            )
            try:
                stop.wait()
                print("worker draining (SIGTERM)")
            except KeyboardInterrupt:
                print("worker draining (interrupt)")
    finally:
        signal.signal(signal.SIGTERM, previous)


def add_worker_arguments(parser: argparse.ArgumentParser) -> None:
    """The worker daemon's options — shared with ``ranking-facts worker``.

    One source of truth, so the module entry point and the CLI
    subcommand cannot drift apart.
    """
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8101)
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "vectorized"),
        default="vectorized",
        help="local backend trial chunks execute on (default vectorized)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count for thread/process backends (default: CPU count)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit structured JSON logs on stderr at this level (debug, "
        "info, ...); default: the REPRO_LOG_LEVEL environment variable, "
        "else quiet",
    )
    parser.add_argument(
        "--register", default=None, metavar="URL",
        help="registry service to announce this worker to (e.g. "
        "http://127.0.0.1:8100); heartbeats keep the lease alive and "
        "a graceful stop deregisters",
    )
    parser.add_argument(
        "--advertise", default=None, metavar="HOST:PORT",
        help="address to register instead of the bound one (when "
        "coordinators reach this worker through NAT or a proxy)",
    )
    parser.add_argument(
        "--heartbeat-ttl", type=float, default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="registry lease TTL; heartbeats fire every TTL/3 "
        f"(default {DEFAULT_LEASE_TTL:g})",
    )
    parser.add_argument(
        "--profile", action="store_true", default=None,
        help="keep a low-rate continuous sampling profiler running "
        "(default: the REPRO_PROFILE environment variable); "
        "GET /debug/profile windows work either way",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.cluster.worker`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="Run a Ranking Facts Monte-Carlo trial worker daemon",
    )
    add_worker_arguments(parser)
    args = parser.parse_args(argv)
    serve_worker_forever(
        host=args.host, port=args.port, backend=args.backend,
        workers=args.workers, log_level=args.log_level,
        register=args.register, advertise=args.advertise,
        heartbeat_ttl=args.heartbeat_ttl, profile=args.profile,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
