"""The worker registry: dynamic fleet membership over TTL leases.

Static ``REPRO_TRIAL_WORKERS`` lists freeze the worker set at process
start — a replacement host needs a coordinator restart to join, and a
decommissioned one keeps eating probe timeouts forever.  This module
makes membership a *protocol*: workers announce themselves to a tiny
stdlib-HTTP registry service and keep their entry alive with heartbeat
leases; coordinators poll the live view and reshape their fleet
mid-run.

The service (``ranking-facts registry`` /
``python -m repro.cluster.registry``):

- ``POST /register``    — body ``{"address": "host:port", "ttl": 15,
  "meta": {...}}``; (re-)creates the worker's lease.  Registration is
  idempotent: a worker that lost contact simply registers again.
- ``POST /heartbeat``   — ``{"address": ...}``; renews the lease.  An
  unknown address gets 404, which tells the worker to re-register (the
  registry may have restarted and lost its in-memory table — workers
  are the source of truth about themselves).
- ``POST /deregister``  — ``{"address": ...}``; explicit, graceful
  removal (the worker is draining; don't wait for the TTL).
- ``GET /workers``      — the live membership: every lease whose TTL
  has not lapsed, expired ones pruned (and counted) on read.
- ``GET /healthz`` / ``GET /stats`` — the usual daemon surface.

Client side:

- :class:`RegistryClient` — one registry's HTTP API as methods, every
  failure a :class:`ClusterError`.
- :class:`HeartbeatLoop` — the worker's registration thread: register,
  then beat at ``ttl / 3`` with per-beat jitter (a fleet of workers
  started together must not heartbeat in lockstep), re-register on 404,
  deregister on graceful stop.  ``pause()`` stops beats without
  stopping the worker — the fault injection tests use it to simulate
  heartbeat loss on a live host.

The registry holds *soft* state only: every fact it serves is
re-announced by the workers within one TTL, so a restarted (or
partitioned) registry converges by itself and coordinators keep their
last-known membership in the meantime
(:class:`repro.cluster.coordinator.RemoteTrialBackend`).
"""

from __future__ import annotations

import argparse
import json
import random
import signal
import sys
import threading
import time
from collections.abc import Sequence
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cluster import wire
from repro.errors import ClusterError
from repro.telemetry import (
    MetricsRegistry,
    configure_logging,
    get_default_registry,
    get_logger,
    merged_stats,
)

_log = get_logger("cluster.registry")

__all__ = [
    "WorkerRegistry",
    "RegistryClient",
    "HeartbeatLoop",
    "RegistryHandle",
    "make_registry",
    "serve_registry_forever",
    "add_registry_arguments",
    "main",
]

#: default lease time-to-live; a worker missing ~3 beats is dropped
DEFAULT_LEASE_TTL = 15.0


def _check_address(address: object) -> str:
    """Validate a ``host:port`` address; the registry never stores junk."""
    if not isinstance(address, str):
        raise ClusterError(f"worker address must be a string, got {address!r}")
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ClusterError(f"bad worker address {address!r}; expected host:port")
    try:
        int(port)
    except ValueError:
        raise ClusterError(
            f"bad worker address {address!r}; port {port!r} is not a number"
        ) from None
    return address


class _Lease:
    """One worker's registration: identity plus a heartbeat deadline."""

    __slots__ = ("address", "ttl", "meta", "registered_at", "renewed_at", "beats")

    def __init__(self, address: str, ttl: float, meta: dict):
        self.address = address
        self.ttl = ttl
        self.meta = meta
        self.registered_at = time.time()
        self.renewed_at = time.monotonic()
        self.beats = 0

    def expired(self, now: float) -> bool:
        return now - self.renewed_at > self.ttl

    def view(self, now: float) -> dict[str, object]:
        return {
            "address": self.address,
            "ttl": self.ttl,
            "registered_at": self.registered_at,
            "expires_in": max(0.0, self.ttl - (now - self.renewed_at)),
            "beats": self.beats,
            "meta": self.meta,
        }


class WorkerRegistry:
    """The membership table: TTL leases keyed by worker address.

    Pure state machine (no HTTP), so tests and future transports can
    drive it directly.  Expired leases are pruned lazily on every read
    or write — the registry needs no timer thread of its own.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.metrics = registry if registry is not None else get_default_registry()
        self._workers_gauge = self.metrics.gauge(
            "repro_registry_workers", "Live worker leases in the registry"
        )
        self._events = self.metrics.counter(
            "repro_registry_events_total",
            "Registry lease events (register, heartbeat, expire, deregister)",
            tag_names=("event",),
        )
        self._lock = threading.Lock()
        self._leases: dict[str, _Lease] = {}
        self._started = time.monotonic()
        self._registrations = 0
        self._heartbeats = 0
        self._expirations = 0
        self._deregistrations = 0

    def _prune(self, now: float) -> None:
        """Drop lapsed leases (caller holds the lock)."""
        for address in [
            address
            for address, lease in self._leases.items()
            if lease.expired(now)
        ]:
            del self._leases[address]
            self._expirations += 1
            self._events.inc(event="expire")
            _log.warning("lease expired: %s", address)
        self._workers_gauge.set(len(self._leases))

    def register(
        self,
        address: str,
        ttl: float = DEFAULT_LEASE_TTL,
        meta: dict | None = None,
    ) -> dict[str, object]:
        """Create (or replace) a lease; idempotent re-announcement."""
        address = _check_address(address)
        if not (isinstance(ttl, (int, float)) and ttl > 0):
            raise ClusterError(f"lease ttl must be a positive number, got {ttl!r}")
        lease = _Lease(address, float(ttl), dict(meta or {}))
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            known = address in self._leases
            self._leases[address] = lease
            self._registrations += 1
            self._events.inc(event="register")
            self._workers_gauge.set(len(self._leases))
        _log.info(
            "worker %s %s (ttl %.1fs)",
            address, "re-registered" if known else "registered", ttl,
        )
        return lease.view(now)

    def heartbeat(self, address: str) -> dict[str, object]:
        """Renew a lease; raises :class:`KeyError` for unknown workers."""
        address = _check_address(address)
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            lease = self._leases.get(address)
            if lease is None:
                raise KeyError(address)
            lease.renewed_at = now
            lease.beats += 1
            self._heartbeats += 1
            self._events.inc(event="heartbeat")
            return lease.view(now)

    def deregister(self, address: str) -> bool:
        """Remove a lease explicitly; True if it existed."""
        address = _check_address(address)
        with self._lock:
            lease = self._leases.pop(address, None)
            if lease is not None:
                self._deregistrations += 1
                self._events.inc(event="deregister")
            self._workers_gauge.set(len(self._leases))
        if lease is not None:
            _log.info("worker %s deregistered", address)
        return lease is not None

    def workers(self) -> list[dict[str, object]]:
        """Every live lease, oldest registration first."""
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            leases = sorted(
                self._leases.values(), key=lambda lease: lease.registered_at
            )
            return [lease.view(now) for lease in leases]

    def stats(self) -> dict[str, object]:
        """Lease-event counters and the live worker count."""
        with self._lock:
            self._prune(time.monotonic())
            return merged_stats({
                "workers": len(self._leases),
                "registrations": self._registrations,
                "heartbeats": self._heartbeats,
                "expirations": self._expirations,
                "deregistrations": self._deregistrations,
                "uptime_seconds": time.monotonic() - self._started,
            })


class _RegistryHandler(BaseHTTPRequestHandler):
    """HTTP routes over one :class:`WorkerRegistry`."""

    registry: WorkerRegistry = None  # type: ignore[assignment]  # see make_registry

    server_version = "RankingFactsRegistry/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep daemon output clean

    def _partitioned(self) -> bool:
        """Fault injection: a partitioned registry drops connections cold.

        A shutdown (not a close) sends FIN without a response byte and
        leaves the buffered writer empty, so the handler loop winds
        down quietly while the client sees exactly what a network
        partition looks like: EOF with no answer.
        """
        if getattr(self.server, "partitioned", False):
            import socket as _socket

            try:
                self.connection.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            self.close_connection = True
            return True
        return False

    def _send_json(self, status: int, data: object) -> None:
        body = json.dumps(data, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:  # client went away mid-response
            self.close_connection = True

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise ClusterError(f"request body is not JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ClusterError("request body must be a JSON object")
        return data

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self._partitioned():
            return
        path = self.path.partition("?")[0]
        if path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "role": "registry",
                "protocol": wire.PROTOCOL_VERSION,
            })
        elif path == "/workers":
            workers = self.registry.workers()
            self._send_json(200, {"workers": workers, "count": len(workers)})
        elif path == "/stats":
            self._send_json(200, self.registry.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self._partitioned():
            return
        path = self.path.partition("?")[0]
        try:
            data = self._read_json()
            if path == "/register":
                lease = self.registry.register(
                    data.get("address"),
                    ttl=data.get("ttl", DEFAULT_LEASE_TTL),
                    meta=data.get("meta"),
                )
                self._send_json(200, lease)
            elif path == "/heartbeat":
                try:
                    lease = self.registry.heartbeat(data.get("address"))
                except KeyError:
                    # the signal to re-register (e.g. after a registry
                    # restart lost the in-memory table)
                    self._send_json(404, {
                        "error": f"unknown worker {data.get('address')!r}; "
                        "register first"
                    })
                else:
                    self._send_json(200, lease)
            elif path == "/deregister":
                removed = self.registry.deregister(data.get("address"))
                self._send_json(200, {"removed": removed})
            else:
                self._send_json(404, {"error": f"unknown POST path {self.path!r}"})
        except ClusterError as exc:
            self._send_json(400, {"error": str(exc)})


class RegistryHandle:
    """A running registry daemon plus its thread (context manager)."""

    def __init__(self, server: ThreadingHTTPServer, registry: WorkerRegistry):
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever, daemon=True)
        self.registry = registry

    @property
    def address(self) -> str:
        """The bound ``host:port`` (real port even when bound to 0)."""
        host, port = self._server.server_address[:2]
        return f"{host}:{int(port)}"

    @property
    def url(self) -> str:
        """Base URL — what workers' ``--register`` and coordinators take."""
        return f"http://{self.address}"

    def partition(self, partitioned: bool = True) -> None:
        """Fault injection: drop every connection cold while partitioned."""
        self._server.partitioned = partitioned

    def start(self) -> "RegistryHandle":
        """Begin serving on the daemon thread; returns ``self``."""
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the HTTP server down and join the serving thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5)

    def __enter__(self) -> "RegistryHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def make_registry(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: MetricsRegistry | None = None,
) -> RegistryHandle:
    """Bind a registry daemon (port 0 = ephemeral, for tests)."""
    worker_registry = WorkerRegistry(registry=registry)
    handler = type(
        "BoundRegistryHandler", (_RegistryHandler,), {"registry": worker_registry}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.partitioned = False  # fault-injection flag; see RegistryHandle
    return RegistryHandle(server, worker_registry)


class RegistryClient:
    """One registry's HTTP API as methods (workers and coordinators).

    Stateless per call (registry traffic is tiny JSON, not worth a
    kept-alive pipe); every transport or protocol problem surfaces as
    :class:`ClusterError` so callers have exactly one failure mode to
    handle.
    """

    def __init__(self, url: str, timeout: float = 5.0):
        self.url = url.rstrip("/")
        if not self.url.startswith(("http://", "https://")):
            self.url = "http://" + self.url
        self.timeout = timeout

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        import urllib.error
        import urllib.request

        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", "")
            except Exception:
                detail = ""
            raise ClusterError(
                f"registry {self.url}{path} returned HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            ) from exc
        except (OSError, ValueError) as exc:
            raise ClusterError(
                f"registry {self.url} unreachable: {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ClusterError(f"registry {self.url}{path} sent a non-object body")
        return payload

    def register(
        self,
        address: str,
        ttl: float = DEFAULT_LEASE_TTL,
        meta: dict | None = None,
    ) -> dict:
        """Announce ``address`` with a ``ttl``-second lease (idempotent)."""
        return self._call(
            "POST", "/register",
            {"address": address, "ttl": ttl, "meta": meta or {}},
        )

    def heartbeat(self, address: str) -> dict:
        """Renew ``address``'s lease; ``HTTP 404`` means re-register."""
        return self._call("POST", "/heartbeat", {"address": address})

    def deregister(self, address: str) -> dict:
        """Drop ``address``'s lease now, graceful-exit style (idempotent)."""
        return self._call("POST", "/deregister", {"address": address})

    def workers(self) -> list[dict]:
        """The live lease views (address, ttl, expires_in, beats, meta)."""
        payload = self._call("GET", "/workers")
        workers = payload.get("workers")
        if not isinstance(workers, list):
            raise ClusterError(
                f"registry {self.url}/workers sent no worker list"
            )
        return workers

    def addresses(self) -> tuple[str, ...]:
        """Just the live ``host:port`` strings — the coordinator's view."""
        return tuple(
            str(worker["address"])
            for worker in self.workers()
            if isinstance(worker, dict) and worker.get("address")
        )

    def stats(self) -> dict:
        """The registry daemon's ``/stats`` document."""
        return self._call("GET", "/stats")


class HeartbeatLoop:
    """A worker's registration thread: register, beat, re-register, leave.

    The beat interval is ``ttl / 3`` so a worker survives two lost
    beats, and every sleep is jittered (uniformly ±40%) so a fleet
    booted by one orchestrator does not thunder its heartbeats in
    lockstep.  A beat answered 404 means the registry forgot us
    (restart); the loop re-registers instead of dying.  A beat that
    cannot reach the registry at all is retried sooner (the lease is
    burning down); the worker itself keeps serving chunks throughout —
    membership is advisory, execution is not.
    """

    def __init__(
        self,
        client: RegistryClient,
        address: str,
        ttl: float = DEFAULT_LEASE_TTL,
        meta: dict | None = None,
        rng: random.Random | None = None,
    ):
        self.client = client
        self.address = address
        self.ttl = ttl
        self.meta = dict(meta or {})
        self._rng = rng if rng is not None else random.Random()
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{address}", daemon=True
        )
        self._lock = threading.Lock()
        self.beats = 0
        self.reregistrations = 0
        self.errors = 0
        self.last_error: str | None = None

    def _jittered(self, base: float) -> float:
        return base * (0.6 + 0.8 * self._rng.random())

    def start(self) -> "HeartbeatLoop":
        """Register now and start the beat thread; returns ``self``."""
        try:
            self.client.register(self.address, ttl=self.ttl, meta=self.meta)
        except ClusterError as exc:
            # the registry may simply not be up yet; the loop keeps
            # trying — a worker must not die because membership is late
            with self._lock:
                self.errors += 1
                self.last_error = str(exc)
            _log.warning("initial registration failed: %s", exc)
        self._thread.start()
        return self

    def pause(self) -> None:
        """Stop beating without stopping the worker (fault injection)."""
        self._paused.set()

    def resume(self) -> None:
        """Resume beating after :meth:`pause` (re-registers via the 404 path)."""
        self._paused.clear()

    def _run(self) -> None:
        interval = max(self.ttl / 3.0, 0.05)
        while not self._stop.wait(self._jittered(interval)):
            if self._paused.is_set():
                continue
            try:
                self.client.heartbeat(self.address)
                with self._lock:
                    self.beats += 1
            except ClusterError as exc:
                with self._lock:
                    self.errors += 1
                    self.last_error = str(exc)
                if "HTTP 404" in str(exc):
                    # the registry restarted and lost our lease;
                    # re-announce ourselves (workers are the truth)
                    try:
                        self.client.register(
                            self.address, ttl=self.ttl, meta=self.meta
                        )
                        with self._lock:
                            self.reregistrations += 1
                    except ClusterError as exc2:
                        with self._lock:
                            self.last_error = str(exc2)

    def stop(self, deregister: bool = True) -> None:
        """Stop beating; with ``deregister``, leave gracefully too."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5)
        if deregister:
            try:
                self.client.deregister(self.address)
            except ClusterError as exc:
                # best effort: the TTL will reap us anyway
                _log.warning("graceful deregistration failed: %s", exc)

    def stats(self) -> dict[str, object]:
        """Beat/re-registration/error counters for ``/stats`` documents."""
        with self._lock:
            return {
                "registry": self.client.url,
                "address": self.address,
                "ttl": self.ttl,
                "beats": self.beats,
                "reregistrations": self.reregistrations,
                "errors": self.errors,
                "last_error": self.last_error,
            }


def serve_registry_forever(
    host: str = "127.0.0.1",
    port: int = 8100,
    log_level: str | None = None,
) -> None:
    """Run a registry daemon until interrupted (the CLI's ``registry``)."""
    import os

    log_level = log_level or os.environ.get("REPRO_LOG_LEVEL") or None
    if log_level:
        configure_logging(log_level)
    stop = threading.Event()
    try:
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
    except ValueError:  # not the main thread (tests)
        pass
    with make_registry(host=host, port=port) as handle:
        print(
            f"Ranking Facts worker registry on {handle.url} "
            "(Ctrl-C or SIGTERM to stop)"
        )
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print("registry shutting down")


def add_registry_arguments(parser: argparse.ArgumentParser) -> None:
    """The registry daemon's options — shared with ``ranking-facts registry``."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        help="emit structured JSON logs on stderr at this level (debug, "
        "info, ...); default: the REPRO_LOG_LEVEL environment variable, "
        "else quiet",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.cluster.registry`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.registry",
        description="Run the Ranking Facts worker registry daemon",
    )
    add_registry_arguments(parser)
    args = parser.parse_args(argv)
    serve_registry_forever(
        host=args.host, port=args.port, log_level=args.log_level
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
