"""The trial-cluster wire protocol: versioned, fingerprinted frames.

A coordinator ships Monte-Carlo work to a worker as one binary frame::

    magic    b"RFTC"                     (4 bytes)
    version  protocol number, big-endian (2 bytes)
    start    first trial index           (8 bytes)
    stop     one past the last index     (8 bytes)
    digest   SHA-256 of the body         (32 bytes)
    body     pickle of (trial_fn, payload)

and the worker replies with the same framing around a pickled result
list (``start``/``stop`` echo the span, so a response can never be
attributed to the wrong chunk).  Three properties matter:

- **Version gate.**  ``version`` must equal :data:`PROTOCOL_VERSION`
  on both ends.  A worker running older code — whose trial functions
  or payload dataclasses may have drifted — *rejects* the frame with a
  :class:`~repro.errors.ClusterError` instead of unpickling it and
  producing silently different label bytes.  Version checks also run
  at registration time: the worker's ``/healthz`` reports its protocol
  number and the coordinator refuses to schedule onto a mismatch.
- **Payload fingerprint.**  ``digest`` is the SHA-256 of the body
  bytes.  A truncated or corrupted frame (proxy, partial read, flaky
  network) fails the digest check and is rejected rather than fed to
  the unpickler.
- **Span framing.**  ``start``/``stop`` travel in the header, outside
  the body, so one expensive body pickle (table + design) is encoded
  once per batch and reused across every chunk of the shard.

Trust model: the body is a pickle, so a worker must only accept frames
from a coordinator it trusts (the daemon binds to localhost by
default).  This mirrors ``ProcessPoolExecutor``'s trust of its parent
process — the cluster is a wider process pool, not a public API.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, Callable

from repro.errors import ClusterError

__all__ = [
    "PROTOCOL_VERSION",
    "encode_trial_work",
    "frame",
    "unframe",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
]

#: bump when the frame layout or the trial payload contracts change
PROTOCOL_VERSION = 1

_MAGIC = b"RFTC"
_HEADER = struct.Struct(">4sHQQ32s")  # magic, version, start, stop, digest


def encode_trial_work(fn: Callable, payload: Any) -> bytes:
    """Pickle ``(fn, payload)`` once, for reuse across a batch's chunks.

    Raises :class:`ClusterError` when the work cannot cross the wire
    (the same contract as the process backend's pickle probe), so the
    coordinator can fall back to its local backend deterministically.
    """
    try:
        return pickle.dumps((fn, payload))
    except Exception as exc:
        raise ClusterError(f"trial work is not picklable: {exc}") from exc


def frame(body: bytes, start: int = 0, stop: int = 0) -> bytes:
    """Wrap ``body`` in a versioned, fingerprinted frame."""
    digest = hashlib.sha256(body).digest()
    return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, start, stop, digest) + body


def unframe(data: bytes) -> tuple[bytes, int, int]:
    """Verify a frame and return ``(body, start, stop)``.

    Rejects — with a :class:`ClusterError` naming the cause — anything
    that is not a well-formed frame of *this* protocol version with an
    intact body.
    """
    if len(data) < _HEADER.size:
        raise ClusterError(
            f"frame too short: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, start, stop, digest = _HEADER.unpack(data[: _HEADER.size])
    if magic != _MAGIC:
        raise ClusterError(f"bad frame magic {magic!r}; not a trial-cluster frame")
    if version != PROTOCOL_VERSION:
        raise ClusterError(
            f"protocol version mismatch: frame is v{version}, "
            f"this end speaks v{PROTOCOL_VERSION}"
        )
    body = data[_HEADER.size:]
    if hashlib.sha256(body).digest() != digest:
        raise ClusterError("payload fingerprint mismatch: frame body corrupted")
    if stop < start:
        raise ClusterError(f"invalid trial span [{start}, {stop})")
    return body, start, stop


def encode_request(body: bytes, start: int, stop: int) -> bytes:
    """A chunk request: pre-encoded trial work plus its span."""
    if stop <= start:
        raise ClusterError(f"chunk span [{start}, {stop}) is empty")
    return frame(body, start, stop)


def decode_request(data: bytes) -> tuple[Callable, Any, int, int]:
    """Verify and unpack a chunk request into ``(fn, payload, start, stop)``."""
    body, start, stop = unframe(data)
    if stop <= start:
        raise ClusterError(f"chunk span [{start}, {stop}) is empty")
    try:
        fn, payload = pickle.loads(body)
    except Exception as exc:
        raise ClusterError(f"cannot unpickle trial work: {exc}") from exc
    if not callable(fn):
        raise ClusterError(f"trial work is not callable: {type(fn).__name__}")
    return fn, payload, start, stop


def encode_response(results: list, start: int, stop: int) -> bytes:
    """A chunk response: the span's results, span echoed in the header."""
    return frame(pickle.dumps(list(results)), start, stop)


def decode_response(data: bytes, start: int, stop: int) -> list:
    """Verify a chunk response against the span the caller requested."""
    body, got_start, got_stop = unframe(data)
    if (got_start, got_stop) != (start, stop):
        raise ClusterError(
            f"response span [{got_start}, {got_stop}) does not match "
            f"requested [{start}, {stop})"
        )
    try:
        results = pickle.loads(body)
    except Exception as exc:
        raise ClusterError(f"cannot unpickle chunk results: {exc}") from exc
    if not isinstance(results, list):
        raise ClusterError(f"chunk results are {type(results).__name__}, not a list")
    if len(results) != stop - start:
        raise ClusterError(
            f"chunk returned {len(results)} results for a "
            f"{stop - start}-trial span"
        )
    return results
