"""The trial-cluster wire protocol: versioned, fingerprinted frames.

A coordinator ships Monte-Carlo work to a worker as one binary frame::

    magic    b"RFTC"                     (4 bytes)
    version  protocol major, big-endian  (2 bytes)
    start    first trial index           (8 bytes)
    stop     one past the last index     (8 bytes)
    digest   SHA-256 of the body         (32 bytes)
    minor    protocol minor, big-endian  (2 bytes)   [since minor 1]
    trace    trace id, 16 raw bytes      (16 bytes)  [since minor 1]
    body     pickle of (trial_fn, payload)

and the worker replies with the same framing around a pickled result
list (``start``/``stop`` echo the span, so a response can never be
attributed to the wrong chunk).  Four properties matter:

- **Major-version gate.**  ``version`` must equal
  :data:`PROTOCOL_VERSION` on both ends.  A worker running code of a
  different major — whose trial functions or payload dataclasses may
  have drifted — *rejects* the frame with a
  :class:`~repro.errors.ClusterError` instead of unpickling it and
  producing silently different label bytes.  Version checks also run
  at registration time: the worker's ``/healthz`` reports its protocol
  number and the coordinator refuses to schedule onto a major
  mismatch.
- **Minor revisions are additive.**  :data:`PROTOCOL_MINOR` counts
  field additions within a major.  Minor 1 added the ``minor`` and
  ``trace`` header fields — the coordinator stamps the originating
  request's trace id so worker logs and metrics can be correlated with
  it; an end that doesn't understand a propagated trace id simply
  ignores the field (all-zero trace bytes mean "no trace").  Frames
  from minor 0 (no ``minor``/``trace`` fields) still decode: the
  parser tries the current layout first and falls back to the legacy
  one, in both cases proven by the digest, so a mixed-minor pair never
  *misreads* a frame — the worst case is a clean rejection.
- **Payload fingerprint.**  ``digest`` is the SHA-256 of the body
  bytes.  A truncated or corrupted frame (proxy, partial read, flaky
  network) fails the digest check and is rejected rather than fed to
  the unpickler.  The digest is also what makes the legacy-layout
  fallback sound: exactly one layout can hash the body correctly.
- **Span framing.**  ``start``/``stop`` travel in the header, outside
  the body, so one expensive body pickle (table + design) is encoded
  once per batch and reused across every chunk of the shard.

Trust model: the body is a pickle, so a worker must only accept frames
from a coordinator it trusts (the daemon binds to localhost by
default).  This mirrors ``ProcessPoolExecutor``'s trust of its parent
process — the cluster is a wider process pool, not a public API.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, Callable

from repro.errors import ClusterError

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_MINOR",
    "MAX_RESPONSE_SPANS",
    "TRACE_ID_BYTES",
    "encode_trial_work",
    "frame",
    "unframe",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "decode_response_spans",
]

#: bump when the frame layout or the trial payload contracts change
#: incompatibly; a mismatch is rejected at probe time and frame time
PROTOCOL_VERSION = 1

#: additive revisions within the major; minor 1 added the trace-id
#: field, minor 2 added the optional span-backhaul response body (a
#: ``{"results", "spans"}`` dict instead of the bare result list —
#: both shapes decode, so mixed-minor pairs interoperate)
PROTOCOL_MINOR = 2

#: ceiling on spans accepted from one response body, over and above the
#: producer-side cap (``repro.telemetry.collect.MAX_BACKHAUL_SPANS``);
#: a misbehaving worker cannot make the coordinator buffer more
MAX_RESPONSE_SPANS = 256

#: width of the raw trace-id header field (32 hex chars when encoded)
TRACE_ID_BYTES = 16

_MAGIC = b"RFTC"
#: shared prefix of both layouts: magic, version, start, stop, digest
_HEADER_V0 = struct.Struct(">4sHQQ32s")
#: current layout appends minor (H) and the raw trace id (16s)
_HEADER = struct.Struct(">4sHQQ32sH16s")

_NO_TRACE = b"\x00" * TRACE_ID_BYTES


def _trace_bytes(trace_id: "str | None") -> bytes:
    if trace_id is None:
        return _NO_TRACE
    try:
        raw = bytes.fromhex(trace_id)
    except ValueError:
        raise ClusterError(
            f"bad trace id {trace_id!r}; expected {TRACE_ID_BYTES * 2} hex chars"
        ) from None
    if len(raw) != TRACE_ID_BYTES:
        raise ClusterError(
            f"bad trace id {trace_id!r}; expected {TRACE_ID_BYTES * 2} hex chars"
        )
    return raw


def encode_trial_work(fn: Callable, payload: Any) -> bytes:
    """Pickle ``(fn, payload)`` once, for reuse across a batch's chunks.

    Raises :class:`ClusterError` when the work cannot cross the wire
    (the same contract as the process backend's pickle probe), so the
    coordinator can fall back to its local backend deterministically.
    """
    try:
        return pickle.dumps((fn, payload))
    except Exception as exc:
        raise ClusterError(f"trial work is not picklable: {exc}") from exc


def frame(
    body: bytes, start: int = 0, stop: int = 0, trace_id: "str | None" = None
) -> bytes:
    """Wrap ``body`` in a versioned, fingerprinted frame.

    ``trace_id`` (32 hex chars, or ``None`` for the all-zero "no
    trace") rides in the header so the receiving end can tag its logs
    and metrics with the originating request's trace.
    """
    digest = hashlib.sha256(body).digest()
    return _HEADER.pack(
        _MAGIC, PROTOCOL_VERSION, start, stop, digest,
        PROTOCOL_MINOR, _trace_bytes(trace_id),
    ) + body


def unframe(data: bytes) -> tuple[bytes, int, int, "str | None"]:
    """Verify a frame; returns ``(body, start, stop, trace_id)``.

    Rejects — with a :class:`ClusterError` naming the cause — anything
    that is not a well-formed frame of *this* protocol major with an
    intact body.  Frames from minor 0 (no trace field) decode with
    ``trace_id=None``; the digest proves which layout the sender used.
    """
    if len(data) < _HEADER_V0.size:
        raise ClusterError(
            f"frame too short: {len(data)} bytes < {_HEADER_V0.size}-byte header"
        )
    magic, version, start, stop, digest = _HEADER_V0.unpack(
        data[: _HEADER_V0.size]
    )
    if magic != _MAGIC:
        raise ClusterError(f"bad frame magic {magic!r}; not a trial-cluster frame")
    if version != PROTOCOL_VERSION:
        raise ClusterError(
            f"protocol version mismatch: frame is v{version}, "
            f"this end speaks v{PROTOCOL_VERSION}"
        )
    trace_id: str | None = None
    if len(data) >= _HEADER.size:
        *_, _minor, trace_raw = _HEADER.unpack(data[: _HEADER.size])
        body = data[_HEADER.size:]
        if hashlib.sha256(body).digest() == digest:
            if trace_raw != _NO_TRACE:
                trace_id = trace_raw.hex()
            if stop < start:
                raise ClusterError(f"invalid trial span [{start}, {stop})")
            return body, start, stop, trace_id
    # legacy minor-0 layout: the body starts right after the digest
    body = data[_HEADER_V0.size:]
    if hashlib.sha256(body).digest() != digest:
        raise ClusterError("payload fingerprint mismatch: frame body corrupted")
    if stop < start:
        raise ClusterError(f"invalid trial span [{start}, {stop})")
    return body, start, stop, None


def encode_request(
    body: bytes, start: int, stop: int, trace_id: "str | None" = None
) -> bytes:
    """A chunk request: pre-encoded trial work plus its span and trace."""
    if stop <= start:
        raise ClusterError(f"chunk span [{start}, {stop}) is empty")
    return frame(body, start, stop, trace_id)


def decode_request(data: bytes) -> tuple[Callable, Any, int, int, "str | None"]:
    """Verify and unpack a request into ``(fn, payload, start, stop, trace_id)``."""
    body, start, stop, trace_id = unframe(data)
    if stop <= start:
        raise ClusterError(f"chunk span [{start}, {stop}) is empty")
    try:
        fn, payload = pickle.loads(body)
    except Exception as exc:
        raise ClusterError(f"cannot unpickle trial work: {exc}") from exc
    if not callable(fn):
        raise ClusterError(f"trial work is not callable: {type(fn).__name__}")
    return fn, payload, start, stop, trace_id


def encode_response(
    results: list,
    start: int,
    stop: int,
    trace_id: "str | None" = None,
    spans: "list[dict] | None" = None,
) -> bytes:
    """A chunk response: the span's results, span + trace echoed.

    ``spans`` (minor 2) backhauls the worker's completed trace spans —
    a bounded list of JSON-safe ``Span.as_dict()`` entries — alongside
    the results.  Without spans the body stays the bare pickled result
    list of minor <= 1, so the common path pays nothing and older
    decoders keep working.
    """
    if spans:
        body = pickle.dumps(
            {"results": list(results), "spans": list(spans)[:MAX_RESPONSE_SPANS]}
        )
    else:
        body = pickle.dumps(list(results))
    return frame(body, start, stop, trace_id)


def _decode_response_body(
    data: bytes, start: int, stop: int
) -> tuple[list, list]:
    body, got_start, got_stop, _trace = unframe(data)
    if (got_start, got_stop) != (start, stop):
        raise ClusterError(
            f"response span [{got_start}, {got_stop}) does not match "
            f"requested [{start}, {stop})"
        )
    try:
        decoded = pickle.loads(body)
    except Exception as exc:
        raise ClusterError(f"cannot unpickle chunk results: {exc}") from exc
    spans: list = []
    if isinstance(decoded, dict):  # minor-2 body: results + backhauled spans
        results = decoded.get("results")
        raw_spans = decoded.get("spans")
        if isinstance(raw_spans, list):
            spans = [
                entry for entry in raw_spans[:MAX_RESPONSE_SPANS]
                if isinstance(entry, dict)
            ]
    else:
        results = decoded
    if not isinstance(results, list):
        raise ClusterError(
            f"chunk results are {type(results).__name__}, not a list"
        )
    if len(results) != stop - start:
        raise ClusterError(
            f"chunk returned {len(results)} results for a "
            f"{stop - start}-trial span"
        )
    return results, spans


def decode_response(data: bytes, start: int, stop: int) -> list:
    """Verify a chunk response against the span the caller requested."""
    results, _spans = _decode_response_body(data, start, stop)
    return results


def decode_response_spans(data: bytes, start: int, stop: int) -> tuple[list, list]:
    """Like :func:`decode_response`, plus the backhauled span dicts."""
    return _decode_response_body(data, start, stop)
