"""Distributed Monte-Carlo trial execution: workers + coordinator.

The Ranking Facts label spends almost all of its compute in the
Monte-Carlo stability trials, and PRs 2-3 made that loop pluggable
(:mod:`repro.engine.backends`) and picklable
(:func:`repro.stability.montecarlo.run_payload_trials` over plain
payload dataclasses).  This package is the step those PRs set up:
running the trial batch across *machines*.

- :mod:`repro.cluster.wire` — the framing protocol: versioned,
  fingerprinted binary frames carrying pickled ``(trial_fn, payload)``
  work plus a trial-index span, so a mismatched or corrupted worker is
  *rejected*, never silently wrong;
- :mod:`repro.cluster.worker` — a stdlib ``http.server`` daemon that
  executes trial-chunk requests through any local backend (default
  ``vectorized``) and exposes ``/healthz`` + ``/stats``;
- :mod:`repro.cluster.coordinator` —
  :class:`~repro.cluster.coordinator.RemoteTrialBackend`, a
  :class:`~repro.engine.backends.TrialBackend` that registers workers,
  health-probes them, shards a trial batch into contiguous spans,
  fails chunks over to other workers on error or timeout, and falls
  back to a local backend when the cluster is empty or degraded —
  recording why;
- :mod:`repro.cluster.registry` — dynamic membership: a TTL-lease
  registry service workers announce themselves to (jittered
  heartbeats, graceful deregistration), which coordinators poll so the
  fleet reshapes mid-run without static address lists;
- :mod:`repro.cluster.policy` — the failure policy engine: one
  :class:`~repro.cluster.policy.FailurePolicy` drives per-worker
  circuit breakers (closed → open → half-open with a single probe
  chunk), jittered exponential re-probe backoff, and per-run retry
  budgets.

Determinism contract (inherited from the backends): every chunk runs
its trials at their *absolute* indices, so each trial draws from its
own ``[seed, trial]`` RNG stream no matter which worker (or which
retry) executed it.  A label computed on a cluster — including one
that lost workers mid-batch — is byte-identical to a serial build.
"""

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteTrialBackend",
    "WorkerClient",
    "TrialWorker",
    "make_worker",
    "serve_worker_forever",
    "workers_from_env",
    "workers_from_file",
    "FailurePolicy",
    "CircuitBreaker",
    "WorkerRegistry",
    "RegistryClient",
    "HeartbeatLoop",
    "make_registry",
    "serve_registry_forever",
]

# lazy exports (PEP 562): ``python -m repro.cluster.worker`` must be able
# to run the worker module as __main__ without this package having
# already imported it (runpy warns about the double import otherwise)
_EXPORTS = {
    "PROTOCOL_VERSION": "repro.cluster.wire",
    "RemoteTrialBackend": "repro.cluster.coordinator",
    "WorkerClient": "repro.cluster.coordinator",
    "workers_from_env": "repro.cluster.coordinator",
    "workers_from_file": "repro.cluster.coordinator",
    "TrialWorker": "repro.cluster.worker",
    "make_worker": "repro.cluster.worker",
    "serve_worker_forever": "repro.cluster.worker",
    "FailurePolicy": "repro.cluster.policy",
    "CircuitBreaker": "repro.cluster.policy",
    "WorkerRegistry": "repro.cluster.registry",
    "RegistryClient": "repro.cluster.registry",
    "HeartbeatLoop": "repro.cluster.registry",
    "make_registry": "repro.cluster.registry",
    "serve_registry_forever": "repro.cluster.registry",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
