r"""Mitigation: suggest modified scoring functions (paper §4 future work).

"We are also working on extending Ranking Facts to support richer
scoring function design functionality.  For example, we plan to include
methods that help the user mitigate lack of fairness and diversity by
suggesting modified scoring functions."

Two complementary mechanisms:

- :mod:`repro.mitigation.weights` — search the weight space near the
  designer's recipe for the *smallest* change that makes a chosen
  fairness measure pass (or restores a missing category to the top-k),
  and map the distance-vs-fairness frontier;
- the FA\*IR re-ranker (:func:`repro.fairness.fair_star_rerank`)
  already covers the post-processing route: keep the recipe, fix the
  output.
"""

from repro.mitigation.weights import (
    MitigationSuggestion,
    fairness_frontier,
    suggest_diverse_weights,
    suggest_fair_weights,
)

__all__ = [
    "MitigationSuggestion",
    "suggest_fair_weights",
    "suggest_diverse_weights",
    "fairness_frontier",
]
