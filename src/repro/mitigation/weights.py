"""Weight-space mitigation search.

The designer's weights encode intent, so a mitigation suggestion should
move them as little as possible.  The search enumerates candidate
weight vectors on rings of increasing L1 distance around the original
recipe (plus axis-aligned and convex-mixture candidates), re-ranks, and
audits each candidate with the requested fairness measure.  Results
come back ordered by distance, so the first suggestion is the minimal
intervention.

This is a deliberately transparent search — a handful of interpretable
candidates rather than a black-box optimizer — because the suggestions
themselves go *on the label*: a user must be able to read "lower
Faculty's weight from 0.40 to 0.22" and understand it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import FairnessConfigError, RankingFactsError
from repro.fairness.base import FairnessMeasure, ProtectedGroup
from repro.fairness.fair_star.verifier import FairStarMeasure
from repro.ranking.ranker import rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.tabular.table import Table

__all__ = [
    "MitigationSuggestion",
    "suggest_fair_weights",
    "suggest_diverse_weights",
    "fairness_frontier",
]


@dataclass(frozen=True)
class MitigationSuggestion:
    """One candidate recipe and what it buys.

    Attributes
    ----------
    weights:
        The suggested weight vector (same attributes as the original).
    distance:
        L1 distance from the original weights (after both are
        normalized to unit absolute sum) — the "size" of the change.
    fair:
        Whether the audited measure passes under these weights.
    p_value:
        The measure's p-value under these weights.
    top_k_overlap:
        Fraction of the original top-k retained — how much of the
        original outcome survives the intervention.
    """

    weights: dict[str, float]
    distance: float
    fair: bool
    p_value: float
    top_k_overlap: float

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "weights": dict(self.weights),
            "distance": self.distance,
            "fair": self.fair,
            "p_value": self.p_value,
            "top_k_overlap": self.top_k_overlap,
        }


def _normalized(weights: dict[str, float]) -> dict[str, float]:
    total = sum(abs(w) for w in weights.values())
    if total == 0.0:
        raise RankingFactsError("cannot normalize an all-zero weight vector")
    return {a: w / total for a, w in weights.items()}


def _l1(a: dict[str, float], b: dict[str, float]) -> float:
    return float(sum(abs(a[k] - b[k]) for k in a))


def _candidate_weight_vectors(
    base: dict[str, float], steps: int, rng: np.random.Generator
) -> list[dict[str, float]]:
    """Interpretable candidates around ``base`` (normalized, unit L1)."""
    attributes = list(base)
    base_vec = np.asarray([base[a] for a in attributes], dtype=np.float64)
    signs = np.sign(base_vec)
    signs[signs == 0] = 1.0
    magnitudes = np.abs(base_vec)

    candidates: list[np.ndarray] = []
    # 1. single-attribute emphasis: each axis alone (keeps original sign)
    for i in range(len(attributes)):
        axis = np.zeros_like(magnitudes)
        axis[i] = 1.0
        candidates.append(axis)
    # 2. uniform recipe
    candidates.append(np.full_like(magnitudes, 1.0 / len(attributes)))
    # 3. convex mixtures of the base with each of the above
    anchors = list(candidates)
    for anchor in anchors:
        for t in np.linspace(0.1, 0.9, steps):
            candidates.append((1 - t) * magnitudes + t * anchor)
    # 4. random simplex draws, denser near the base
    for _ in range(steps * 10):
        draw = rng.dirichlet(np.ones(len(attributes)))
        for t in (0.25, 0.5, 1.0):
            candidates.append((1 - t) * magnitudes + t * draw)

    unique: dict[tuple, np.ndarray] = {}
    for vec in candidates:
        total = vec.sum()
        if total <= 0:
            continue
        normalized = vec / total
        key = tuple(np.round(normalized, 4))
        unique.setdefault(key, normalized)
    return [
        {a: float(s * v) for a, s, v in zip(attributes, signs, vec)}
        for vec in unique.values()
    ]


def _audit_candidate(
    table: Table,
    weights: dict[str, float],
    attribute: str,
    category: str,
    measure: FairnessMeasure,
    id_column: str | None,
    baseline_top: set,
    k: int,
) -> tuple[bool, float, float]:
    scorer = LinearScoringFunction(weights)
    ranking = rank_table(table, scorer, id_column)
    try:
        group = ProtectedGroup(ranking, attribute, category)
        result = measure.audit(group)
        fair, p_value = result.fair, result.p_value
    except FairnessConfigError:
        return False, 0.0, 0.0
    top = set(ranking.item_ids()[:k])
    overlap = len(top & baseline_top) / max(len(baseline_top), 1)
    return fair, p_value, overlap


def suggest_fair_weights(
    table: Table,
    scorer: LinearScoringFunction,
    sensitive_attribute: str,
    protected_category: str,
    k: int = 10,
    alpha: float = 0.05,
    measure: FairnessMeasure | None = None,
    id_column: str | None = None,
    max_suggestions: int = 5,
    steps: int = 5,
    seed: int = 20180610,
) -> list[MitigationSuggestion]:
    """Smallest-change weight vectors that make the measure pass.

    Parameters
    ----------
    table:
        The (already preprocessed) data — the same table the label was
        built on, so scales match the original recipe.
    scorer:
        The designer's recipe to stay close to.
    sensitive_attribute / protected_category:
        The group whose treatment is being fixed.
    k, alpha:
        Audit parameters.
    measure:
        The fairness measure that must pass (default: FA\\*IR at
        ``k``/``alpha``, the paper's headline test).
    id_column:
        Item identifier (for top-k overlap accounting).
    max_suggestions:
        How many passing candidates to return (distance-ordered).
    steps / seed:
        Search density and RNG seed.

    Returns
    -------
    Passing candidates sorted by (distance, -top_k_overlap); empty when
    no candidate in the searched neighbourhood passes.
    """
    if max_suggestions < 1:
        raise RankingFactsError(f"max_suggestions must be >= 1, got {max_suggestions}")
    column = table.categorical_column(sensitive_attribute)
    if protected_category not in column.categories():
        raise RankingFactsError(
            f"attribute {sensitive_attribute!r} has no category "
            f"{protected_category!r}; present: {', '.join(column.categories())}"
        )
    if measure is None:
        measure = FairStarMeasure(k=k, alpha=alpha)
    rng = np.random.default_rng(seed)
    base = _normalized(scorer.weights)
    baseline = rank_table(table, scorer, id_column)
    baseline_top = set(baseline.item_ids()[:k])

    suggestions: list[MitigationSuggestion] = []
    for weights in _candidate_weight_vectors(base, steps, rng):
        fair, p_value, overlap = _audit_candidate(
            table, weights, sensitive_attribute, protected_category,
            measure, id_column, baseline_top, k,
        )
        if not fair:
            continue
        suggestions.append(
            MitigationSuggestion(
                weights=weights,
                distance=_l1(base, weights),
                fair=True,
                p_value=p_value,
                top_k_overlap=overlap,
            )
        )
    suggestions.sort(key=lambda s: (s.distance, -s.top_k_overlap))
    return suggestions[:max_suggestions]


def suggest_diverse_weights(
    table: Table,
    scorer: LinearScoringFunction,
    attribute: str,
    missing_category: str,
    k: int = 10,
    minimum_count: int = 1,
    id_column: str | None = None,
    max_suggestions: int = 5,
    steps: int = 5,
    seed: int = 20180610,
) -> list[MitigationSuggestion]:
    """Smallest-change weights that bring a missing category into the top-k.

    The diversity analogue of :func:`suggest_fair_weights`: Figure 1's
    "only large departments in the top-10" becomes a search for the
    nearest recipe whose top-10 contains at least ``minimum_count``
    small departments.  ``p_value`` on the results is the achieved
    count scaled into [0, 1] (count / k) rather than a test p-value.
    """
    if minimum_count < 1 or minimum_count > k:
        raise RankingFactsError(
            f"minimum_count must be in [1, {k}], got {minimum_count}"
        )
    column = table.categorical_column(attribute)
    if missing_category not in column.categories():
        raise RankingFactsError(
            f"attribute {attribute!r} has no category {missing_category!r}"
        )
    rng = np.random.default_rng(seed)
    base = _normalized(scorer.weights)
    baseline = rank_table(table, scorer, id_column)
    baseline_top = set(baseline.item_ids()[:k])

    suggestions: list[MitigationSuggestion] = []
    for weights in _candidate_weight_vectors(base, steps, rng):
        ranking = rank_table(table, LinearScoringFunction(weights), id_column)
        count = ranking.group_count_at_k(attribute, missing_category, k)
        if count < minimum_count:
            continue
        top = set(ranking.item_ids()[:k])
        suggestions.append(
            MitigationSuggestion(
                weights=weights,
                distance=_l1(base, weights),
                fair=True,
                p_value=count / k,
                top_k_overlap=len(top & baseline_top) / max(len(baseline_top), 1),
            )
        )
    suggestions.sort(key=lambda s: (s.distance, -s.top_k_overlap))
    return suggestions[:max_suggestions]


def fairness_frontier(
    table: Table,
    scorer: LinearScoringFunction,
    sensitive_attribute: str,
    protected_category: str,
    k: int = 10,
    alpha: float = 0.05,
    measure: FairnessMeasure | None = None,
    id_column: str | None = None,
    steps: int = 5,
    seed: int = 20180610,
    resolution: float = 0.1,
) -> list[MitigationSuggestion]:
    """The distance-vs-fairness trade-off curve.

    Buckets all searched candidates by L1 distance (bucket width
    ``resolution``) and keeps the best candidate (highest p-value) per
    bucket, passing or not — the curve a design view would plot so the
    user sees how much recipe change buys how much fairness.
    """
    if resolution <= 0:
        raise RankingFactsError(f"resolution must be positive, got {resolution}")
    if measure is None:
        measure = FairStarMeasure(k=k, alpha=alpha)
    rng = np.random.default_rng(seed)
    base = _normalized(scorer.weights)
    baseline = rank_table(table, scorer, id_column)
    baseline_top = set(baseline.item_ids()[:k])

    best_by_bucket: dict[int, MitigationSuggestion] = {}
    for weights in _candidate_weight_vectors(base, steps, rng):
        fair, p_value, overlap = _audit_candidate(
            table, weights, sensitive_attribute, protected_category,
            measure, id_column, baseline_top, k,
        )
        suggestion = MitigationSuggestion(
            weights=weights,
            distance=_l1(base, weights),
            fair=fair,
            p_value=p_value,
            top_k_overlap=overlap,
        )
        bucket = int(suggestion.distance / resolution)
        current = best_by_bucket.get(bucket)
        if current is None or suggestion.p_value > current.p_value:
            best_by_bucket[bucket] = suggestion
    return [best_by_bucket[b] for b in sorted(best_by_bucket)]
