"""Process resource observatory: the ``repro_process_*`` metric families.

One :class:`ResourceCollector` per process reads cheap OS-level facts —
CPU seconds, RSS and peak RSS, thread count, open file descriptors, GC
activity — and exposes them two ways: :meth:`snapshot` (a JSON-safe
dict for ``/engine/stats`` and the CLI's resources pane) and
:meth:`refresh` (gauge updates into a :class:`MetricsRegistry`, called
at scrape time so ``GET /metrics`` always renders current values
without a background thread).

Memory numbers come from ``/proc/self/status`` (``VmRSS`` / ``VmHWM``)
where available, with a ``resource.getrusage`` fallback for peak RSS on
non-Linux platforms; fields the platform can't provide are simply
omitted from the snapshot and never exported as zero-lies.  GC pauses
are measured via paired ``gc.callbacks`` start/stop events — the
callbacks run on whichever thread triggered collection, but CPython
runs a collection to completion on one thread, so a single pending
timestamp suffices.  ``tracemalloc`` allocation tracking is opt-in
(``track_allocations=True`` / ``--track-allocations``): it costs real
memory and CPU, so it must never be ambient.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time

from repro.telemetry.registry import MetricsRegistry

__all__ = [
    "ResourceCollector",
]

_PROC_STATUS = "/proc/self/status"
_PROC_FD = "/proc/self/fd"


def _read_proc_status() -> dict[str, int]:
    """``VmRSS``/``VmHWM``/``Threads`` from procfs (bytes), or ``{}``."""
    out: dict[str, int] = {}
    try:
        with open(_PROC_STATUS, encoding="ascii", errors="replace") as handle:
            for line in handle:
                key, _, rest = line.partition(":")
                if key in ("VmRSS", "VmHWM"):
                    parts = rest.split()
                    if parts and parts[0].isdigit():
                        out[key] = int(parts[0]) * 1024  # procfs reports kB
                elif key == "Threads":
                    value = rest.strip()
                    if value.isdigit():
                        out[key] = int(value)
    except OSError:
        return {}
    return out


def _peak_rss_fallback() -> int | None:
    """Peak RSS via ``getrusage`` (portable; units differ per platform)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - resource is POSIX-only
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS
    return peak if sys.platform.startswith("darwin") else peak * 1024


def _open_fds() -> int | None:
    """Open descriptor count via procfs, or ``None`` where unsupported."""
    try:
        return len(os.listdir(_PROC_FD))
    except OSError:
        return None


class ResourceCollector:
    """Samples process-level resource facts on demand.

    Construct once per process and :meth:`install` to hook GC callbacks
    (paired with :meth:`close`, so tests don't leak callbacks into each
    other).  All reads happen in the caller's thread at snapshot/refresh
    time — the collector owns no thread of its own.
    """

    def __init__(self, track_allocations: bool = False, top_allocators: int = 10):
        self._started_at = time.time()
        self._lock = threading.Lock()
        self._installed = False
        self._gc_started: float | None = None
        self._gc_pauses = 0
        self._gc_pause_seconds = 0.0
        self._gc_collected = 0
        self._track_allocations = bool(track_allocations)
        self._top_allocators = max(1, int(top_allocators))
        self._tracemalloc_started = False

    # -- lifecycle ----------------------------------------------------------------------

    def install(self) -> "ResourceCollector":
        """Hook ``gc.callbacks`` (and ``tracemalloc`` if opted in); idempotent."""
        if not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True
        if self._track_allocations and not self._tracemalloc_started:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
        return self

    def close(self) -> None:
        """Unhook the GC callback and stop tracemalloc we started; idempotent."""
        if self._installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:
                pass
            self._installed = False
        if self._tracemalloc_started:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started = False

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_started = time.perf_counter()
            return
        # phase == "stop": CPython finishes one collection before another
        # starts, so the single pending timestamp pairs correctly.
        started = self._gc_started
        self._gc_started = None
        with self._lock:
            self._gc_pauses += 1
            if started is not None:
                self._gc_pause_seconds += max(
                    0.0, time.perf_counter() - started
                )
            collected = info.get("collected")
            if isinstance(collected, int):
                self._gc_collected += collected

    # -- reads --------------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """One JSON-safe resource snapshot (``/engine/stats`` shape)."""
        times = os.times()
        status = _read_proc_status()
        with self._lock:
            gc_block: dict[str, object] = {
                "pauses": self._gc_pauses,
                "pause_seconds": round(self._gc_pause_seconds, 6),
                "collected": self._gc_collected,
            }
        counts = gc.get_count()
        gc_block["pending"] = list(counts)
        out: dict[str, object] = {
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "cpu_seconds": round(times.user + times.system, 3),
            "cpu_user_seconds": round(times.user, 3),
            "cpu_system_seconds": round(times.system, 3),
            "threads": status.get("Threads", threading.active_count()),
            "gc": gc_block,
        }
        rss = status.get("VmRSS")
        if rss is not None:
            out["rss_bytes"] = rss
        peak = status.get("VmHWM")
        if peak is None:
            peak = _peak_rss_fallback()
        if peak is not None:
            out["peak_rss_bytes"] = peak
        fds = _open_fds()
        if fds is not None:
            out["open_fds"] = fds
        allocators = self._top_allocations()
        if allocators is not None:
            out["top_allocators"] = allocators
        return out

    def _top_allocations(self) -> list[dict[str, object]] | None:
        if not self._track_allocations:
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():
            return None
        try:
            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("lineno")
        except Exception:  # noqa: BLE001 - diagnostics must not break stats
            return None
        top = []
        for stat in stats[: self._top_allocators]:
            frame = stat.traceback[0]
            top.append(
                {
                    "file": os.path.basename(frame.filename),
                    "line": frame.lineno,
                    "size_bytes": stat.size,
                    "count": stat.count,
                }
            )
        return top

    def refresh(self, registry: MetricsRegistry) -> None:
        """Update the ``repro_process_*`` gauges from a fresh snapshot.

        Called at scrape time (``GET /metrics``) and before stats pages
        render, so exported values are current without a poller thread.
        """
        snap = self.snapshot()
        gauge = registry.gauge
        gauge(
            "repro_process_cpu_seconds",
            "Process CPU time consumed (user+system), seconds",
        ).set(float(snap["cpu_seconds"]))
        gauge(
            "repro_process_uptime_seconds", "Seconds since the collector started"
        ).set(float(snap["uptime_seconds"]))
        gauge(
            "repro_process_threads", "Live threads in the process"
        ).set(float(snap["threads"]))
        if "rss_bytes" in snap:
            gauge(
                "repro_process_rss_bytes", "Resident set size, bytes"
            ).set(float(snap["rss_bytes"]))  # type: ignore[arg-type]
        if "peak_rss_bytes" in snap:
            gauge(
                "repro_process_peak_rss_bytes", "Peak resident set size, bytes"
            ).set(float(snap["peak_rss_bytes"]))  # type: ignore[arg-type]
        if "open_fds" in snap:
            gauge(
                "repro_process_open_fds", "Open file descriptors"
            ).set(float(snap["open_fds"]))  # type: ignore[arg-type]
        gc_block = snap["gc"]
        gauge(
            "repro_process_gc_pauses", "Garbage collections observed"
        ).set(float(gc_block["pauses"]))  # type: ignore[index]
        gauge(
            "repro_process_gc_pause_seconds",
            "Total time spent inside observed garbage collections, seconds",
        ).set(float(gc_block["pause_seconds"]))  # type: ignore[index]
        gauge(
            "repro_process_gc_collected", "Objects reclaimed by observed collections"
        ).set(float(gc_block["collected"]))  # type: ignore[index]
