"""Request tracing: ids, a contextvars-propagated span, a trace buffer.

A *trace* is one logical request — an HTTP call, a CLI label build —
identified by a 32-hex-char ``trace_id`` (16 bytes, the width the
cluster wire frame carries).  A *span* is one timed operation inside
it: ``label.build``, ``store.get``, ``worker.chunk``.  Spans nest via a
``contextvars.ContextVar``, so the active span follows the request
through nested calls (and across threads wherever the caller copies
its context, as the batch executor does); a span opened with no parent
starts a fresh trace.

Two things happen when a span closes:

- its duration and outcome land in the ``repro_span_seconds`` histogram
  of the target registry (tagged by span name and ``ok``/``error``), so
  every instrumented operation gets a latency distribution for free;
- the completed span is appended to an in-memory ring buffer
  (:class:`TraceBuffer`), giving ``/engine/stats`` a "recently
  completed traces" view without any storage backend.

Cross-process propagation is explicit: the HTTP server accepts an
``X-Trace-Id`` request header, and the cluster coordinator stamps the
current trace id into its wire frames so worker logs and metrics carry
the originating request's id (``span(..., trace_id=...)`` adopts a
propagated id as the root of a local span tree).
"""

from __future__ import annotations

import re
import secrets
import threading
import time
from collections import deque
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar

from repro.telemetry.profiling import note_span_enter, note_span_exit
from repro.telemetry.registry import (
    MetricsRegistry,
    get_default_registry,
    set_exemplar_source,
)

__all__ = [
    "MAX_SPAN_TAGS",
    "MAX_TAG_VALUE_CHARS",
    "TRACE_ID_BYTES",
    "Span",
    "TraceBuffer",
    "clamp_tags",
    "current_span",
    "current_trace_id",
    "get_trace_buffer",
    "is_trace_id",
    "new_span_id",
    "new_trace_id",
    "span",
]

#: trace ids are 16 random bytes, hex-encoded (the wire frame's width)
TRACE_ID_BYTES = 16

#: per-span tag budget, enforced at record time: a pathological caller
#: (or a misbehaving worker backhauling spans) must not be able to bloat
#: ``/engine/stats`` or the durable trace archive
MAX_SPAN_TAGS = 16
MAX_TAG_VALUE_CHARS = 128

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")

#: span-duration histogram buckets: spans range from sub-ms SQLite ops
#: to multi-second Monte-Carlo builds
_SPAN_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return secrets.token_hex(TRACE_ID_BYTES)


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return secrets.token_hex(8)


def is_trace_id(value: object) -> bool:
    """Whether ``value`` is a well-formed trace id (wire/header safe)."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


def clamp_tags(tags: "Mapping[str, object] | dict[str, object]") -> dict[str, str]:
    """Stringify span tags under the record-time budget.

    At most :data:`MAX_SPAN_TAGS` tags survive (in insertion order —
    the caller's first tags are the ones worth keeping) and each value
    is truncated to :data:`MAX_TAG_VALUE_CHARS` characters with a ``…``
    marker.  Applied to every locally opened span *and* to spans
    revived from a worker's backhaul, so no code path can bloat the
    trace buffer or the archive.
    """
    clamped: dict[str, str] = {}
    for key, value in tags.items():
        if len(clamped) >= MAX_SPAN_TAGS:
            break
        text = str(value)
        if len(text) > MAX_TAG_VALUE_CHARS:
            text = text[: MAX_TAG_VALUE_CHARS - 1] + "…"
        clamped[str(key)[:MAX_TAG_VALUE_CHARS]] = text
    return clamped


class Span:
    """One timed operation within a trace (created by :func:`span`)."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "tags",
        "started_at", "duration", "status", "error",
    )

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: str | None, tags: dict[str, str]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self.started_at = time.time()
        self.duration: float | None = None
        self.status = "ok"
        self.error: str | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form for ``/engine/stats`` and tests."""
        entry: dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
        }
        if self.tags:
            entry["tags"] = dict(self.tags)
        if self.error is not None:
            entry["error"] = self.error
        return entry


_current_span: ContextVar[Span | None] = ContextVar(
    "repro_current_span", default=None
)


def current_span() -> Span | None:
    """The active span in this context, if any."""
    return _current_span.get()


def current_trace_id() -> str | None:
    """The active trace id in this context, if any."""
    active = _current_span.get()
    return None if active is None else active.trace_id


# histograms sample the active trace id as their per-bucket exemplar
set_exemplar_source(current_trace_id)


class TraceBuffer:
    """A bounded ring of recently completed spans (newest last).

    Listeners (see :meth:`add_listener`) observe every recorded span —
    the hook :class:`~repro.telemetry.collect.TraceCollector` uses to
    assemble whole traces without the hot path knowing about it.
    """

    def __init__(self, capacity: int = 256):
        self._capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._completed = 0
        self._dropped = 0
        self._listeners: list[Callable[[Span], None]] = []

    def record(self, span: Span) -> None:
        """Append a completed span (oldest entries fall off the ring)."""
        with self._lock:
            if len(self._spans) == self._capacity:
                self._dropped += 1
            self._spans.append(span)
            self._completed += 1
            listeners = tuple(self._listeners)
        for listener in listeners:  # outside the lock: listeners may be slow
            try:
                listener(span)
            except Exception:  # noqa: BLE001 - a broken listener must not break spans
                pass

    def add_listener(self, listener: "Callable[[Span], None]") -> None:
        """Subscribe ``listener`` to every span recorded from now on."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: "Callable[[Span], None]") -> None:
        """Unsubscribe a listener (no-op if it was never added)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def recent(self, limit: int | None = None) -> list[dict[str, object]]:
        """The newest-first JSON-safe view (at most ``limit`` spans)."""
        with self._lock:
            spans = list(self._spans)
        spans.reverse()
        if limit is not None:
            spans = spans[:limit]
        return [entry.as_dict() for entry in spans]

    @property
    def completed(self) -> int:
        """Total spans ever recorded (the ring only keeps the tail)."""
        with self._lock:
            return self._completed

    @property
    def dropped_spans(self) -> int:
        """Spans that have fallen off the ring (recorded but no longer held)."""
        with self._lock:
            return self._dropped

    def snapshot(self) -> dict[str, int]:
        """Ring health counters for ``/engine/stats``."""
        with self._lock:
            return {
                "capacity": self._capacity,
                "buffered": len(self._spans),
                "completed": self._completed,
                "dropped_spans": self._dropped,
            }

    def clear(self) -> None:
        """Drop the buffered spans (tests)."""
        with self._lock:
            self._spans.clear()


_default_buffer = TraceBuffer()


def get_trace_buffer() -> TraceBuffer:
    """The process-wide ring of recently completed spans."""
    return _default_buffer


@contextmanager
def span(
    name: str,
    trace_id: str | None = None,
    registry: MetricsRegistry | None = None,
    buffer: TraceBuffer | None = None,
    **tags: object,
) -> Iterator[Span]:
    """Open a span: times the block, records duration + outcome.

    Nested calls become children of the active span; with no parent a
    fresh trace starts.  ``trace_id`` adopts a propagated id (a wire
    frame, an ``X-Trace-Id`` header) as this context's trace — it wins
    over both the ambient trace and a fresh one.  An exception marks
    the span ``error`` (with the exception's type and message) and
    re-raises; the duration is recorded either way.
    """
    parent = _current_span.get()
    if trace_id is not None and not is_trace_id(trace_id):
        trace_id = None  # a malformed propagated id must not poison tracing
    if trace_id is None:
        trace_id = parent.trace_id if parent is not None else new_trace_id()
    entry = Span(
        name=name,
        trace_id=trace_id,
        span_id=new_span_id(),
        parent_id=parent.span_id if parent is not None else None,
        tags=clamp_tags(tags),
    )
    token = _current_span.set(entry)
    # mirror enter/exit into the profiler's per-thread table: span() runs
    # both on the executing thread, which is exactly the thread whose
    # samples should attribute to this span
    note_span_enter(name)
    start = time.perf_counter()
    try:
        yield entry
    except BaseException as exc:
        entry.status = "error"
        entry.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        entry.duration = time.perf_counter() - start
        note_span_exit()
        _current_span.reset(token)
        (buffer if buffer is not None else _default_buffer).record(entry)
        target = registry if registry is not None else get_default_registry()
        target.histogram(
            "repro_span_seconds",
            "Duration of instrumented operations (spans), by name and outcome",
            tag_names=("name", "status"),
            buckets=_SPAN_BUCKETS,
        ).observe(entry.duration, name=name, status=entry.status)
