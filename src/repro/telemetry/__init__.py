"""Unified telemetry: metrics, tracing, collection, SLOs, exporters.

The observability layer every subsystem shares:

- :mod:`repro.telemetry.registry` — thread-safe ``Counter`` / ``Gauge``
  / ``Histogram`` families in a :class:`MetricsRegistry`, plus the
  process-wide default registry and the :func:`merged_stats` helper the
  ``stats()`` endpoints assemble themselves with;
- :mod:`repro.telemetry.tracing` — trace/span ids, the contextvar
  ``span()`` context manager, and the in-memory ring of recently
  completed traces;
- :mod:`repro.telemetry.collect` — the trace collector: assembles
  coordinator *and* backhauled worker spans into whole traces and
  archives the keepers under tail-based sampling;
- :mod:`repro.telemetry.slo` — declared latency/error objectives
  evaluated against the live metric families (error-budget burn for
  ``/healthz`` and ``fleet status``);
- :mod:`repro.telemetry.logging` — JSON log formatter that auto-injects
  the active trace/span ids; ``configure_logging`` opts a process in
  (quiet by default);
- :mod:`repro.telemetry.exporters` — Prometheus text-format rendering,
  served at the app server's ``GET /metrics`` (optionally with
  OpenMetrics trace-id exemplars);
- :mod:`repro.telemetry.profiling` — the sampling wall-clock profiler:
  collapsed flamegraph-ready stacks, per-span frame attribution,
  on-demand windows (``GET /debug/profile``) and an always-on low-rate
  continuous mode;
- :mod:`repro.telemetry.resources` — the process resource collector
  behind the ``repro_process_*`` gauge families (CPU, RSS, threads,
  fds, GC pauses, opt-in allocation tracking).
"""

from repro.telemetry.collect import (
    MAX_BACKHAUL_SPANS,
    SamplingPolicy,
    TraceCollector,
    revive_spans,
    span_tree,
)
from repro.telemetry.exporters import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.telemetry.logging import JSONLogFormatter, configure_logging, get_logger
from repro.telemetry.profiling import (
    DEFAULT_CONTINUOUS_HZ,
    DEFAULT_WINDOW_HZ,
    ProfileReport,
    SamplingProfiler,
    env_profile_enabled,
    get_default_profiler,
    set_default_profiler,
)
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
    merged_stats,
    set_default_registry,
)
from repro.telemetry.resources import ResourceCollector
from repro.telemetry.slo import (
    ErrorRateObjective,
    LatencyObjective,
    SLOEngine,
    default_objectives,
)
from repro.telemetry.tracing import (
    MAX_SPAN_TAGS,
    MAX_TAG_VALUE_CHARS,
    Span,
    TraceBuffer,
    clamp_tags,
    current_span,
    current_trace_id,
    get_trace_buffer,
    is_trace_id,
    new_span_id,
    new_trace_id,
    span,
)

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "JSONLogFormatter",
    "configure_logging",
    "get_logger",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_default_registry",
    "merged_stats",
    "set_default_registry",
    "DEFAULT_CONTINUOUS_HZ",
    "DEFAULT_WINDOW_HZ",
    "ProfileReport",
    "SamplingProfiler",
    "env_profile_enabled",
    "get_default_profiler",
    "set_default_profiler",
    "ResourceCollector",
    "MAX_BACKHAUL_SPANS",
    "SamplingPolicy",
    "TraceCollector",
    "revive_spans",
    "span_tree",
    "ErrorRateObjective",
    "LatencyObjective",
    "SLOEngine",
    "default_objectives",
    "MAX_SPAN_TAGS",
    "MAX_TAG_VALUE_CHARS",
    "Span",
    "TraceBuffer",
    "clamp_tags",
    "current_span",
    "current_trace_id",
    "get_trace_buffer",
    "is_trace_id",
    "new_span_id",
    "new_trace_id",
    "span",
]
