"""Unified telemetry: metrics, tracing, structured logs, exporters.

The observability layer every subsystem shares:

- :mod:`repro.telemetry.registry` — thread-safe ``Counter`` / ``Gauge``
  / ``Histogram`` families in a :class:`MetricsRegistry`, plus the
  process-wide default registry and the :func:`merged_stats` helper the
  ``stats()`` endpoints assemble themselves with;
- :mod:`repro.telemetry.tracing` — trace/span ids, the contextvar
  ``span()`` context manager, and the in-memory ring of recently
  completed traces;
- :mod:`repro.telemetry.logging` — JSON log formatter that auto-injects
  the active trace/span ids; ``configure_logging`` opts a process in
  (quiet by default);
- :mod:`repro.telemetry.exporters` — Prometheus text-format rendering,
  served at the app server's ``GET /metrics``.
"""

from repro.telemetry.exporters import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.telemetry.logging import JSONLogFormatter, configure_logging, get_logger
from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
    merged_stats,
    set_default_registry,
)
from repro.telemetry.tracing import (
    Span,
    TraceBuffer,
    current_span,
    current_trace_id,
    get_trace_buffer,
    is_trace_id,
    new_span_id,
    new_trace_id,
    span,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "JSONLogFormatter",
    "configure_logging",
    "get_logger",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_default_registry",
    "merged_stats",
    "set_default_registry",
    "Span",
    "TraceBuffer",
    "current_span",
    "current_trace_id",
    "get_trace_buffer",
    "is_trace_id",
    "new_span_id",
    "new_trace_id",
    "span",
]
