"""Prometheus text-format rendering of one or more metric registries.

:func:`render_prometheus` produces exposition-format 0.0.4 text — the
format every Prometheus-compatible scraper (Prometheus, VictoriaMetrics,
Grafana Agent...) accepts — from :class:`~repro.telemetry.registry.
MetricsRegistry` snapshots.  Served by the app server's ``GET
/metrics``.

Renders several registries in one page because the process keeps
component-scoped registries (a coordinator or store constructed with
its own) alongside the process-wide default; duplicate registry
objects are skipped, and a family name appearing in two registries is
emitted once with the union of its series (first registry wins on
``HELP`` text).

Conventions honored:

- counters are registered with a ``_total``-suffixed name and typed
  ``counter``;
- histograms render cumulative ``_bucket{le="..."}`` series (the
  registry stores per-bucket counts; the cumulation happens here),
  plus ``_sum`` and ``_count``;
- label values escape backslash, double-quote, and newline; ``HELP``
  text escapes backslash and newline.
"""

from __future__ import annotations

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
]

#: the Content-Type a /metrics response must declare
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: the Content-Type for the exemplar-annotated page (OpenMetrics);
#: classic 0.0.4 parsers reject mid-line ``#``, so exemplars are strictly
#: opt-in and switch the declared format
OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def _labels(tags: tuple, extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = tuple(tags) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _exemplar_suffix(cell, index: int) -> str:
    """The OpenMetrics exemplar annotation for one bucket, or ``""``."""
    exemplars = getattr(cell, "exemplars", None)
    if not exemplars:
        return ""
    entry = exemplars[index]
    if entry is None:
        return ""
    trace_id, value, stamp = entry
    return (
        f' # {{trace_id="{_escape_label(str(trace_id))}"}}'
        f" {_format_value(value)} {_format_value(stamp)}"
    )


def render_prometheus(*registries: MetricsRegistry, exemplars: bool = False) -> str:
    """The exposition page for ``registries`` (deduplicated, sorted).

    ``exemplars=True`` appends OpenMetrics exemplar annotations
    (``# {trace_id="..."} value ts``) to histogram ``_bucket`` lines
    that have a traced observation, and terminates the page with
    ``# EOF``.  Off by default: the classic page stays byte-identical,
    so existing scrapes are unaffected.
    """
    seen_registries: list[MetricsRegistry] = []
    for registry in registries:
        if not any(registry is existing for existing in seen_registries):
            seen_registries.append(registry)

    # family name -> (family, [series...]): union series across registries
    families: dict[str, tuple[object, list]] = {}
    for registry in seen_registries:
        for family in registry.families():
            entry = families.get(family.name)
            if entry is None:
                families[family.name] = (family, list(family.series()))
            else:
                entry[1].extend(family.series())

    lines: list[str] = []
    for name in sorted(families):
        family, series = families[name]
        if family.help:
            lines.append(f"# HELP {name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {name} {family.kind}")
        if isinstance(family, Histogram):
            for tags, cell in series:
                cumulative = 0
                for index, (bound, count) in enumerate(
                    zip(family.buckets, cell.counts)
                ):
                    cumulative += count
                    suffix = _exemplar_suffix(cell, index) if exemplars else ""
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels(tags, (('le', _format_value(bound)),))} "
                        f"{cumulative}{suffix}"
                    )
                cumulative += cell.counts[-1]
                suffix = _exemplar_suffix(cell, -1) if exemplars else ""
                lines.append(
                    f"{name}_bucket{_labels(tags, (('le', '+Inf'),))} "
                    f"{cumulative}{suffix}"
                )
                lines.append(f"{name}_sum{_labels(tags)} {_format_value(cell.sum)}")
                lines.append(f"{name}_count{_labels(tags)} {cell.count}")
        elif isinstance(family, (Counter, Gauge)):
            for tags, cell in series:
                lines.append(f"{name}{_labels(tags)} {_format_value(cell.value)}")
    if exemplars:
        lines.append("# EOF")
    return "\n".join(lines) + ("\n" if lines else "")
