"""Structured JSON logs that carry the active trace and span ids.

Every subsystem logs through :func:`get_logger` (children of the
``repro`` logger).  By default the tree is quiet — a ``NullHandler``
on ``repro`` keeps ``logging.lastResort`` from printing stray warnings
to stderr, and no level is forced, so CLI output is byte-identical to
an unconfigured process (records still propagate to the root logger,
which is how pytest's ``caplog`` sees them).

:func:`configure_logging` opts in: one stderr handler with
:class:`JSONLogFormatter`, which renders each record as a single JSON
object and auto-injects the ambient trace/span ids from
:mod:`repro.telemetry.tracing` — so a ``grep trace_id=...`` (or a jq
filter) follows one request across the server, the coordinator, and a
remote worker daemon.  A record may also carry *explicit*
``trace_id``/``span_id`` attributes (via ``extra={...}``); those win
over the ambient context, which is what cross-thread and cross-process
call sites (the coordinator's chunk pool, the worker) use.

Wired by ``serve --log-level`` / ``worker --log-level`` and the
``REPRO_LOG_LEVEL`` environment variable.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

from repro.errors import TelemetryError
from repro.telemetry.tracing import current_span

__all__ = ["JSONLogFormatter", "configure_logging", "get_logger"]

_ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not payload
_RESERVED = frozenset(vars(logging.makeLogRecord({}))) | {
    "message", "asctime", "taskName",
}

# quiet by default: a handler (even a null one) stops logging.lastResort
# from printing un-configured WARNING+ records to stderr, while records
# still propagate to the root logger for anyone (pytest) listening there
logging.getLogger(_ROOT_LOGGER).addHandler(logging.NullHandler())


class JSONLogFormatter(logging.Formatter):
    """One JSON object per record, trace/span ids injected."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        active = current_span()
        trace_id = getattr(record, "trace_id", None) or (
            active.trace_id if active is not None else None
        )
        span_id = getattr(record, "span_id", None) or (
            active.span_id if active is not None else None
        )
        if trace_id:
            entry["trace_id"] = trace_id
        if span_id:
            entry["span_id"] = span_id
        for key, value in record.__dict__.items():
            if key.startswith("_") or key in _RESERVED or key in entry:
                continue
            entry[key] = value
        if record.exc_info:
            entry["exception"] = self.formatException(record.exc_info)
        return json.dumps(entry, default=str)


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger("cluster.worker")``)."""
    if name == _ROOT_LOGGER or name.startswith(_ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_LOGGER}.{name}")


def _resolve_level(level: "int | str") -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).strip().upper())
    if not isinstance(resolved, int):
        raise TelemetryError(
            f"unknown log level {level!r}; expected one of "
            "debug, info, warning, error, critical (or a number)"
        )
    return resolved


def configure_logging(
    level: "int | str" = "info", stream: "IO[str] | None" = None
) -> logging.Logger:
    """Emit structured JSON logs for the ``repro`` tree at ``level``.

    Idempotent: reconfiguring replaces the handler this function
    installed earlier (never anyone else's), so tests and long-lived
    processes can change the level without stacking duplicate handlers.
    Propagation is switched off while configured — the JSON handler is
    now the one sink, not a second copy next to the root logger's.
    """
    logger = logging.getLogger(_ROOT_LOGGER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JSONLogFormatter())
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_telemetry", False):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(_resolve_level(level))
    logger.propagate = False
    return logger
