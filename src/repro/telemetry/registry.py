"""Thread-safe metrics primitives: the one registry every layer shares.

A :class:`MetricsRegistry` holds named metric *families* — `Counter`,
`Gauge`, and fixed-bucket `Histogram` — each of which fans out into
*series* keyed by a frozen tag tuple (``(("route", "/label"), ...)``).
The design goals, in order:

- **stdlib-only and cheap on the hot path.**  An increment is one dict
  lookup plus one striped-lock acquire; no allocation beyond the tag
  tuple.  Lock striping (``hash(series key) % stripes``) keeps
  concurrent updates to *different* series from serializing on one
  lock, while updates to the *same* series stay atomic.
- **bounded cardinality by construction.**  A family declares its tag
  names at registration; an update must supply exactly those names, so
  a typo (or an unbounded value like a session token) fails loudly
  instead of silently growing a new series per request.
- **registration is idempotent.**  ``registry.counter("x", ...)``
  returns the existing family when called twice with a compatible
  declaration — instrumentation code can ask for its metric at the
  call site without threading family objects around — and raises on a
  kind/tag mismatch, which is always a bug.

One process-wide default registry (:func:`get_default_registry`) is
what the HTTP server, the engine, and the cluster coordinator write to
unless handed an explicit registry (tests isolate themselves by
constructing their own).  :func:`merged_stats` is the single
stats-assembly helper that replaced the hand-rolled dict merges in
``LabelExecutor.stats()``, ``LabelService.stats()``, and the cluster
worker.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections.abc import Callable, Mapping, Sequence

from repro.errors import TelemetryError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_default_registry",
    "set_default_registry",
    "set_exemplar_source",
    "merged_stats",
]

#: zero-arg callable returning the active trace id (or ``None``); the
#: tracing module injects :func:`~repro.telemetry.tracing.
#: current_trace_id` at import so histograms can attach per-bucket
#: exemplars without this module depending on tracing (which imports us)
_exemplar_source: Callable[[], str | None] | None = None


def set_exemplar_source(source: Callable[[], str | None] | None) -> None:
    """Install the trace-id provider histogram exemplars sample from."""
    global _exemplar_source
    _exemplar_source = source

#: seconds; Prometheus-style request-latency defaults (le semantics)
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _freeze_tags(tag_names: tuple[str, ...], tags: Mapping[str, object]) -> tuple:
    """The series key: values frozen as strings, in declared name order."""
    if set(tags) != set(tag_names):
        raise TelemetryError(
            f"metric update tags {sorted(tags)} do not match the declared "
            f"tag names {sorted(tag_names)}"
        )
    return tuple((name, str(tags[name])) for name in tag_names)


class _MetricFamily:
    """Shared plumbing: series registry + striped locking."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 tag_names: tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help
        self.tag_names = tag_names
        self._series: dict[tuple, object] = {}
        self._series_lock = threading.Lock()  # guards dict shape only

    def _lock_for(self, key: tuple) -> threading.Lock:
        return self._registry._stripe_for(self.name, key)

    def _slot(self, key: tuple, default: Callable[[], object]) -> object:
        slot = self._series.get(key)
        if slot is None:
            with self._series_lock:
                slot = self._series.setdefault(key, default())
        return slot

    def series(self) -> list[tuple[tuple, object]]:
        """``(tag tuple, value)`` pairs, sorted for deterministic export."""
        with self._series_lock:
            items = list(self._series.items())
        return sorted(items, key=lambda item: item[0])

    def _declaration(self) -> tuple:
        return (self.kind, self.tag_names)


class _Cell:
    """One mutable float slot (lists would read as 'why a list?')."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_MetricFamily):
    """A monotonically increasing count (renders with a ``_total`` name)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **tags: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``tags``."""
        if amount < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease ({amount})")
        key = _freeze_tags(self.tag_names, tags)
        cell = self._slot(key, _Cell)
        with self._lock_for(key):
            cell.value += amount

    def value(self, **tags: object) -> float:
        """The series' current total (0 if never incremented)."""
        key = _freeze_tags(self.tag_names, tags)
        cell = self._series.get(key)
        if cell is None:
            return 0.0
        with self._lock_for(key):
            return cell.value


class Gauge(_MetricFamily):
    """A value that goes up and down (in-flight requests, pool sizes)."""

    kind = "gauge"

    def set(self, value: float, **tags: object) -> None:
        """Replace the series' value outright."""
        key = _freeze_tags(self.tag_names, tags)
        cell = self._slot(key, _Cell)
        with self._lock_for(key):
            cell.value = float(value)

    def inc(self, amount: float = 1.0, **tags: object) -> None:
        """Add ``amount`` to the series (negative amounts allowed)."""
        key = _freeze_tags(self.tag_names, tags)
        cell = self._slot(key, _Cell)
        with self._lock_for(key):
            cell.value += amount

    def dec(self, amount: float = 1.0, **tags: object) -> None:
        """Subtract ``amount`` from the series."""
        self.inc(-amount, **tags)

    def value(self, **tags: object) -> float:
        """The series' current value (0 if never touched)."""
        key = _freeze_tags(self.tag_names, tags)
        cell = self._series.get(key)
        if cell is None:
            return 0.0
        with self._lock_for(key):
            return cell.value


class _HistogramCell:
    __slots__ = ("counts", "sum", "count", "exemplars")

    def __init__(self, buckets: int):
        self.counts = [0] * (buckets + 1)  # +1: the implicit +Inf bucket
        self.sum = 0.0
        self.count = 0
        # per-bucket (trace_id, value, unix_ts) — allocated lazily on the
        # first traced observation so untraced histograms pay nothing
        self.exemplars: list | None = None


class Histogram(_MetricFamily):
    """Fixed upper-bound buckets with Prometheus ``le`` (<=) semantics.

    ``observe(v)`` lands in the first bucket whose bound is ``>= v`` —
    a value exactly on a bucket edge belongs to that bucket, which is
    what ``bisect_left`` gives us — and values above the last bound go
    to the implicit ``+Inf`` bucket.  The exporter cumulates.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 tag_names: tuple[str, ...],
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(registry, name, help, tag_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise TelemetryError(
                f"histogram {name} buckets must be strictly increasing: {bounds}"
            )
        self.buckets = bounds

    def _declaration(self) -> tuple:
        return (self.kind, self.tag_names, self.buckets)

    def observe(self, value: float, **tags: object) -> None:
        """Record one observation into the series selected by ``tags``.

        When a trace is active (see :func:`set_exemplar_source`) the
        observation's trace id is kept as the bucket's exemplar — the
        last traced observation per bucket — which the exporter can
        render (behind its ``exemplars`` flag) per OpenMetrics.
        """
        key = _freeze_tags(self.tag_names, tags)
        cell = self._slot(key, lambda: _HistogramCell(len(self.buckets)))
        index = bisect_left(self.buckets, value)
        source = _exemplar_source
        trace_id = source() if source is not None else None
        with self._lock_for(key):
            cell.counts[index] += 1
            cell.sum += value
            cell.count += 1
            if trace_id is not None:
                if cell.exemplars is None:
                    cell.exemplars = [None] * len(cell.counts)
                cell.exemplars[index] = (trace_id, value, time.time())

    def snapshot_series(self, **tags: object) -> dict[str, object]:
        """One series' state: per-bucket counts, sum, count (tests/stats)."""
        key = _freeze_tags(self.tag_names, tags)
        cell = self._series.get(key)
        if cell is None:
            return {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
        with self._lock_for(key):
            return {"counts": list(cell.counts), "sum": cell.sum, "count": cell.count}


class MetricsRegistry:
    """A named collection of metric families with striped series locks."""

    def __init__(self, stripes: int = 16):
        if stripes < 1:
            raise TelemetryError(f"stripes must be >= 1, got {stripes}")
        self._families: dict[str, _MetricFamily] = {}
        self._registry_lock = threading.Lock()
        self._stripes = tuple(threading.Lock() for _ in range(stripes))

    def _stripe_for(self, name: str, key: tuple) -> threading.Lock:
        return self._stripes[hash((name, key)) % len(self._stripes)]

    def _register(self, cls, name: str, help: str,
                  tag_names: Sequence[str], **kwargs) -> _MetricFamily:
        names = tuple(tag_names)
        with self._registry_lock:
            existing = self._families.get(name)
            if existing is not None:
                probe = cls(self, name, help, names, **kwargs)
                if existing._declaration() != probe._declaration():
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing._declaration()}, not {probe._declaration()}"
                    )
                return existing
            family = cls(self, name, help, names, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", tag_names: Sequence[str] = ()) -> Counter:
        """Get-or-register a counter family."""
        return self._register(Counter, name, help, tag_names)

    def gauge(self, name: str, help: str = "", tag_names: Sequence[str] = ()) -> Gauge:
        """Get-or-register a gauge family."""
        return self._register(Gauge, name, help, tag_names)

    def histogram(self, name: str, help: str = "", tag_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        """Get-or-register a histogram family."""
        return self._register(Histogram, name, help, tag_names, buckets=buckets)

    def families(self) -> list[_MetricFamily]:
        """Every registered family, sorted by name (exporters iterate this)."""
        with self._registry_lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> dict[str, object]:
        """A JSON-safe dump of every series (the ``/engine/stats`` block).

        Histograms are summarized as ``{count, sum}`` per series rather
        than full bucket vectors — the full shape lives in ``/metrics``.
        """
        out: dict[str, object] = {}
        for family in self.families():
            series_out = []
            for key, cell in family.series():
                tags = dict(key)
                if isinstance(cell, _HistogramCell):
                    lock = self._stripe_for(family.name, key)
                    with lock:
                        series_out.append(
                            {"tags": tags, "count": cell.count, "sum": cell.sum}
                        )
                else:
                    lock = self._stripe_for(family.name, key)
                    with lock:
                        series_out.append({"tags": tags, "value": cell.value})
            out[family.name] = {"kind": family.kind, "series": series_out}
        return out


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code writes to by default."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous


def merged_stats(base: "Mapping | Callable[[], Mapping] | None" = None,
                 /, **sections) -> dict[str, object]:
    """Assemble a stats snapshot from flat counters plus named sections.

    The one helper behind every ``stats()`` in the codebase —
    ``LabelExecutor``, ``LabelService``, ``RemoteTrialBackend``,
    ``TrialWorker`` — replacing their hand-rolled dict merges.  ``base``
    (a mapping or a zero-arg callable) provides the flat keys; each
    keyword is a nested section.  ``None`` sources (and sources that
    resolve to ``None``) are skipped, so optional sections like a
    missing store or a backend without cluster stats simply don't
    appear, exactly as before.
    """
    snapshot: dict[str, object] = dict(base() if callable(base) else (base or {}))
    for name, source in sections.items():
        if source is None:
            continue
        value = source() if callable(source) else source
        if value is None:
            continue
        snapshot[name] = dict(value) if isinstance(value, Mapping) else value
    return snapshot
