"""Sampling wall-clock profiler: collapsed stacks, per-span attribution.

The metrics/traces/logs pillars say *what* is slow and *which request*
was slow; this module answers *why*: a daemon sampler thread walks
``sys._current_frames()`` at a configurable rate and folds every
thread's stack into counted *collapsed-stack* form (the semicolon
format flamegraph tooling eats directly).  Design goals, in order:

- **zero overhead when idle.**  The sampler thread only exists while at
  least one *sink* is attached; with no window open and continuous mode
  off there is no thread, no timer, and the per-span bookkeeping is two
  dict operations — the label hot path is unaffected and label bytes
  are identical with profiling on or off (sampling only ever *reads*
  frames).
- **bounded memory by construction.**  Each sink caps its distinct
  stack table (overflow folds into one ``(overflow)`` bucket and is
  counted), stacks are depth-limited, and per-span frame tables are
  capped the same way.
- **windows don't fight continuous mode.**  Each capture is its own
  sink; one sample folds into every attached sink, the sampler runs at
  the fastest attached rate, and detaching a window never perturbs the
  always-on profile.  ``GET /debug/profile?seconds=N`` is just a
  transient sink.

Per-span attribution rides on a per-thread span-name stack maintained
by :func:`note_span_enter` / :func:`note_span_exit` (called from
``tracing.span()`` on the executing thread): a sample landing on a
thread with an open span is bucketed under that span's name, so a slow
``cluster.chunk`` in ``trace show`` can print the frames that burned
its time — on the coordinator or on a worker.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections.abc import Mapping

__all__ = [
    "DEFAULT_CONTINUOUS_HZ",
    "DEFAULT_WINDOW_HZ",
    "MAX_PROFILE_SECONDS",
    "MAX_STACK_DEPTH",
    "ProfileReport",
    "SamplingProfiler",
    "active_span_name",
    "env_profile_enabled",
    "get_default_profiler",
    "note_span_enter",
    "note_span_exit",
    "set_default_profiler",
]

#: default sampling rates: windows sample fast (they're short-lived),
#: continuous mode samples slow (it's always on).  Primes, so the
#: sampler doesn't phase-lock with periodic work like heartbeats.
DEFAULT_WINDOW_HZ = 97.0
DEFAULT_CONTINUOUS_HZ = 19.0

#: hard bounds a request can't exceed (``/debug/profile`` is unauthenticated
#: inside the trust boundary, but a typo'd ``seconds=3600`` must not pin
#: a handler thread for an hour)
MAX_PROFILE_SECONDS = 60.0
MAX_HZ = 500.0

#: frames kept per stack; deeper stacks keep the *leaf* end (that's
#: where the time is) and gain a ``(truncated)`` root marker
MAX_STACK_DEPTH = 48

#: distinct collapsed stacks per sink before folding into ``(overflow)``
DEFAULT_MAX_STACKS = 4096

#: distinct leaf frames tracked per span name (span attribution table)
_MAX_SPAN_FRAMES = 256
_MAX_SPAN_NAMES = 512

_OVERFLOW_KEY = "(overflow)"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def env_profile_enabled(default: bool = False) -> bool:
    """Whether ``REPRO_PROFILE`` asks for always-on continuous profiling."""
    raw = os.environ.get("REPRO_PROFILE")
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


# -- per-thread span attribution ------------------------------------------------------
#
# The sampler thread cannot read another thread's contextvars, so the
# tracing layer mirrors its enter/exit into this plain dict keyed by
# thread id.  Only the owning thread mutates its own stack (span() is
# entered and exited on the same thread); the sampler just reads, and
# a racing pop at worst loses one sample's attribution — guarded below.

_span_stacks: dict[int, list[str]] = {}


def note_span_enter(name: str) -> None:
    """Record (on the calling thread) that a span named ``name`` opened."""
    tid = threading.get_ident()
    stack = _span_stacks.get(tid)
    if stack is None:
        _span_stacks[tid] = [name]
    else:
        stack.append(name)


def note_span_exit() -> None:
    """Record that the calling thread's innermost span closed."""
    tid = threading.get_ident()
    stack = _span_stacks.get(tid)
    if stack:
        stack.pop()
        if not stack:
            _span_stacks.pop(tid, None)  # stay bounded as threads churn


def active_span_name(thread_id: int) -> str | None:
    """The innermost open span on ``thread_id``, if any (sampler-side)."""
    stack = _span_stacks.get(thread_id)
    if not stack:
        return None
    try:
        return stack[-1]
    except IndexError:  # the owner popped between the check and the read
        return None


# -- stack folding --------------------------------------------------------------------


def _fold_stack(frame, max_depth: int = MAX_STACK_DEPTH) -> str:
    """One thread's live frame chain as a collapsed stack (root-first)."""
    names: list[str] = []
    depth = 0
    while frame is not None and depth < max_depth:
        code = frame.f_code
        names.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
        frame = frame.f_back
        depth += 1
    if frame is not None:
        names.append("(truncated)")
    names.reverse()
    return ";".join(names)


class _ProfileSink:
    """One capture's accumulator: bounded stack + span tables.

    Mutated only under the owning profiler's lock, so no lock of its own.
    """

    __slots__ = (
        "hz", "max_stacks", "owner", "started_at", "samples",
        "stacks", "span_samples", "span_frames",
        "stack_overflow", "span_overflow",
    )

    def __init__(self, hz: float, max_stacks: int, owner: int | None = None):
        self.hz = hz
        self.max_stacks = max_stacks
        # the thread blocked inside window() awaiting this capture; its
        # own sleeping frames are noise in its own report, so skip it
        self.owner = owner
        self.started_at = time.time()
        self.samples = 0
        self.stacks: dict[str, int] = {}
        self.span_samples: dict[str, int] = {}
        self.span_frames: dict[str, dict[str, int]] = {}
        self.stack_overflow = 0
        self.span_overflow = 0

    def add(self, collapsed: str, leaf: str, span_name: str | None) -> None:
        self.samples += 1
        count = self.stacks.get(collapsed)
        if count is not None:
            self.stacks[collapsed] = count + 1
        elif len(self.stacks) < self.max_stacks:
            self.stacks[collapsed] = 1
        else:
            self.stack_overflow += 1
            self.stacks[_OVERFLOW_KEY] = self.stacks.get(_OVERFLOW_KEY, 0) + 1
        if span_name is None:
            return
        if span_name not in self.span_samples and len(self.span_samples) >= _MAX_SPAN_NAMES:
            self.span_overflow += 1
            return
        self.span_samples[span_name] = self.span_samples.get(span_name, 0) + 1
        frames = self.span_frames.setdefault(span_name, {})
        if leaf in frames:
            frames[leaf] += 1
        elif len(frames) < _MAX_SPAN_FRAMES:
            frames[leaf] = 1
        else:
            self.span_overflow += 1


class ProfileReport:
    """An immutable snapshot of one capture, renderable three ways.

    ``to_collapsed()`` is the flamegraph.pl / speedscope input format;
    ``as_dict()`` is the JSON the HTTP endpoints and the store carry;
    ``render()`` is the CLI's ASCII flame summary.  ``from_dict`` round-
    trips the JSON form (the CLI uses it on fleet responses and the
    waterfall uses it on archived profiles).
    """

    def __init__(
        self,
        *,
        source: str = "process",
        started_at: float = 0.0,
        duration: float = 0.0,
        hz: float = 0.0,
        samples: int = 0,
        stacks: Mapping[str, int] | None = None,
        span_samples: Mapping[str, int] | None = None,
        span_frames: Mapping[str, Mapping[str, int]] | None = None,
        stack_overflow: int = 0,
        span_overflow: int = 0,
    ):
        self.source = source
        self.started_at = float(started_at)
        self.duration = float(duration)
        self.hz = float(hz)
        self.samples = int(samples)
        self.stacks = dict(stacks or {})
        self.span_samples = dict(span_samples or {})
        self.span_frames = {
            name: dict(frames) for name, frames in (span_frames or {}).items()
        }
        self.stack_overflow = int(stack_overflow)
        self.span_overflow = int(span_overflow)

    @property
    def is_empty(self) -> bool:
        """Whether the capture saw no samples at all."""
        return self.samples == 0

    def to_collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame;frame count`` per line."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def top_frames(self, limit: int = 10) -> list[tuple[str, int]]:
        """Self-time leaders: leaf-frame sample counts across all stacks."""
        leaves: dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: max(0, limit)]

    def span_top_frames(self, limit: int = 5) -> dict[str, list[tuple[str, int]]]:
        """Per-span self-time leaders (the "top frames under a span" view)."""
        out: dict[str, list[tuple[str, int]]] = {}
        for name, frames in self.span_frames.items():
            ranked = sorted(frames.items(), key=lambda item: (-item[1], item[0]))
            out[name] = ranked[: max(0, limit)]
        return out

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form (HTTP ``format=json``, store payloads)."""
        return {
            "source": self.source,
            "started_at": self.started_at,
            "duration": self.duration,
            "hz": self.hz,
            "samples": self.samples,
            "distinct_stacks": len(self.stacks),
            "stack_overflow": self.stack_overflow,
            "span_overflow": self.span_overflow,
            "stacks": dict(self.stacks),
            "spans": {
                name: {
                    "samples": self.span_samples.get(name, 0),
                    "frames": dict(self.span_frames.get(name, {})),
                }
                for name in sorted(
                    set(self.span_samples) | set(self.span_frames)
                )
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProfileReport":
        """Rebuild a report from its ``as_dict()`` JSON (untrusted-safe)."""
        if not isinstance(payload, Mapping):
            return cls()
        stacks: dict[str, int] = {}
        raw_stacks = payload.get("stacks")
        if isinstance(raw_stacks, Mapping):
            for stack, count in raw_stacks.items():
                if isinstance(stack, str) and isinstance(count, (int, float)):
                    stacks[stack] = int(count)
        span_samples: dict[str, int] = {}
        span_frames: dict[str, dict[str, int]] = {}
        raw_spans = payload.get("spans")
        if isinstance(raw_spans, Mapping):
            for name, entry in raw_spans.items():
                if not isinstance(name, str) or not isinstance(entry, Mapping):
                    continue
                count = entry.get("samples")
                span_samples[name] = int(count) if isinstance(count, (int, float)) else 0
                frames = entry.get("frames")
                if isinstance(frames, Mapping):
                    span_frames[name] = {
                        frame: int(n)
                        for frame, n in frames.items()
                        if isinstance(frame, str) and isinstance(n, (int, float))
                    }

        def _num(key: str, default: float = 0.0) -> float:
            value = payload.get(key)
            return float(value) if isinstance(value, (int, float)) else default

        source = payload.get("source")
        return cls(
            source=source if isinstance(source, str) else "process",
            started_at=_num("started_at"),
            duration=_num("duration"),
            hz=_num("hz"),
            samples=int(_num("samples")),
            stacks=stacks,
            span_samples=span_samples,
            span_frames=span_frames,
            stack_overflow=int(_num("stack_overflow")),
            span_overflow=int(_num("span_overflow")),
        )

    def render(self, width: int = 72, limit: int = 12, span_limit: int = 3) -> str:
        """ASCII flame summary: header, top self-time frames, per-span frames."""
        lines = [
            f"profile {self.source}  duration={self.duration:.1f}s  "
            f"hz={self.hz:g}  samples={self.samples}  "
            f"stacks={len(self.stacks)}"
        ]
        if self.is_empty:
            lines.append("  (no samples — process was idle)")
            return "\n".join(lines)
        bar_width = max(10, width - 52)
        top = self.top_frames(limit)
        peak = top[0][1] if top else 1
        lines.append("  top frames (self time):")
        for frame, count in top:
            share = count / self.samples
            bar = "█" * max(1, round(bar_width * count / peak))
            lines.append(
                f"    {bar:<{bar_width}} {share:6.1%} {count:>6}  {frame}"
            )
        per_span = self.span_top_frames(span_limit)
        if per_span:
            lines.append("  spans:")
            ranked = sorted(
                per_span.items(),
                key=lambda item: -self.span_samples.get(item[0], 0),
            )
            for name, frames in ranked:
                span_count = self.span_samples.get(name, 0)
                lines.append(f"    {name}  ({span_count} samples)")
                for frame, count in frames:
                    share = count / span_count if span_count else 0.0
                    lines.append(f"      {share:6.1%} {count:>6}  {frame}")
        if self.stack_overflow or self.span_overflow:
            lines.append(
                f"  (bounded: {self.stack_overflow} stack / "
                f"{self.span_overflow} span samples folded into overflow)"
            )
        return "\n".join(lines)


class SamplingProfiler:
    """The sampler: a daemon thread feeding any number of attached sinks.

    The thread exists only while a sink is attached; it samples at the
    fastest attached rate and exits when the last sink detaches, so an
    idle profiler costs nothing.  ``window()`` is a blocking capture
    (attach, sleep, detach, report); ``start_continuous()`` attaches a
    long-lived low-rate sink whose live snapshot ``continuous_report()``
    serves.  All sink state is guarded by one lock — sampling ticks are
    ~tens of microseconds, far below any sane sampling interval.
    """

    def __init__(
        self,
        source: str = "process",
        max_depth: int = MAX_STACK_DEPTH,
        max_stacks: int = DEFAULT_MAX_STACKS,
    ):
        self.source = source
        self._max_depth = max(1, int(max_depth))
        self._max_stacks = max(16, int(max_stacks))
        self._lock = threading.Lock()
        self._sinks: list[_ProfileSink] = []
        self._continuous: _ProfileSink | None = None
        self._thread: threading.Thread | None = None
        self._wake = threading.Event()
        self._ticks = 0
        self._samples_total = 0
        self._thread_starts = 0
        self._windows = 0

    # -- lifecycle ----------------------------------------------------------------------

    def _ensure_thread_locked(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread_starts += 1
            self._thread.start()

    def _attach(self, sink: _ProfileSink) -> None:
        with self._lock:
            self._sinks.append(sink)
            self._ensure_thread_locked()
        self._wake.set()  # re-evaluate rate now, not after the old interval

    def _detach(self, sink: _ProfileSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
        self._wake.set()

    def _run(self) -> None:
        own = threading.get_ident()
        while True:
            with self._lock:
                if not self._sinks:
                    self._thread = None
                    return
                hz = max(sink.hz for sink in self._sinks)
            interval = 1.0 / max(0.1, min(float(hz), MAX_HZ))
            if self._wake.wait(interval):
                self._wake.clear()
                continue  # sink set or rate changed; don't sample this tick
            frames = sys._current_frames()
            try:
                with self._lock:
                    if not self._sinks:
                        continue
                    self._ticks += 1
                    for tid, frame in frames.items():
                        if tid == own:
                            continue
                        collapsed = _fold_stack(frame, self._max_depth)
                        leaf = collapsed.rsplit(";", 1)[-1]
                        span_name = active_span_name(tid)
                        for sink in self._sinks:
                            if sink.owner != tid:
                                sink.add(collapsed, leaf, span_name)
                        self._samples_total += 1
            finally:
                del frames  # drop the frame references promptly

    # -- captures -----------------------------------------------------------------------

    def window(
        self, seconds: float, hz: float = DEFAULT_WINDOW_HZ
    ) -> ProfileReport:
        """Blocking capture: sample for ``seconds`` and return the report."""
        seconds = max(0.05, min(float(seconds), MAX_PROFILE_SECONDS))
        hz = max(1.0, min(float(hz), MAX_HZ))
        sink = _ProfileSink(
            hz=hz, max_stacks=self._max_stacks, owner=threading.get_ident()
        )
        self._attach(sink)
        try:
            time.sleep(seconds)
        finally:
            self._detach(sink)
        with self._lock:
            self._windows += 1
            return self._report_locked(sink, duration=seconds)

    def start_continuous(self, hz: float = DEFAULT_CONTINUOUS_HZ) -> bool:
        """Attach the always-on low-rate sink (idempotent; ``True`` if new)."""
        hz = max(0.5, min(float(hz), MAX_HZ))
        with self._lock:
            if self._continuous is not None:
                return False
            sink = _ProfileSink(hz=hz, max_stacks=self._max_stacks)
            self._continuous = sink
            self._sinks.append(sink)
            self._ensure_thread_locked()
        self._wake.set()
        return True

    def stop_continuous(self) -> ProfileReport | None:
        """Detach the continuous sink; its final report (idempotent)."""
        with self._lock:
            sink = self._continuous
            if sink is None:
                return None
            self._continuous = None
            if sink in self._sinks:
                self._sinks.remove(sink)
            report = self._report_locked(sink)
        self._wake.set()
        return report

    def rotate_continuous(self) -> ProfileReport | None:
        """Drain the continuous sink and restart it fresh (``None`` when off).

        The trace collector's hook: when a slow trace finalizes, the
        drained report is "what this process was doing lately, that
        slow trace included" — archived beside the trace, while the
        fresh sink keeps sampling without a gap.
        """
        with self._lock:
            sink = self._continuous
            if sink is None:
                return None
            report = self._report_locked(sink)
            fresh = _ProfileSink(hz=sink.hz, max_stacks=self._max_stacks)
            if sink in self._sinks:
                self._sinks.remove(sink)
            self._sinks.append(fresh)
            self._continuous = fresh
            return report

    def continuous_report(self) -> ProfileReport | None:
        """A live snapshot of the continuous sink (``None`` when off)."""
        with self._lock:
            sink = self._continuous
            if sink is None:
                return None
            return self._report_locked(sink)

    def _report_locked(
        self, sink: _ProfileSink, duration: float | None = None
    ) -> ProfileReport:
        return ProfileReport(
            source=self.source,
            started_at=sink.started_at,
            duration=(
                duration
                if duration is not None
                else max(0.0, time.time() - sink.started_at)
            ),
            hz=sink.hz,
            samples=sink.samples,
            stacks=sink.stacks,
            span_samples=sink.span_samples,
            span_frames=sink.span_frames,
            stack_overflow=sink.stack_overflow,
            span_overflow=sink.span_overflow,
        )

    # -- observability ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread currently exists."""
        with self._lock:
            return self._thread is not None

    @property
    def continuous(self) -> bool:
        """Whether the always-on sink is attached."""
        with self._lock:
            return self._continuous is not None

    def stats(self) -> dict[str, object]:
        """JSON-safe counters for ``/engine/stats``."""
        with self._lock:
            continuous: dict[str, object] | None = None
            if self._continuous is not None:
                sink = self._continuous
                continuous = {
                    "hz": sink.hz,
                    "since": sink.started_at,
                    "samples": sink.samples,
                    "distinct_stacks": len(sink.stacks),
                }
            return {
                "running": self._thread is not None,
                "sinks": len(self._sinks),
                "windows": self._windows,
                "ticks": self._ticks,
                "samples_total": self._samples_total,
                "thread_starts": self._thread_starts,
                "continuous": continuous,
            }


_default_profiler = SamplingProfiler()
_default_lock = threading.Lock()


def get_default_profiler() -> SamplingProfiler:
    """The process-wide profiler the server, worker, and CLI share."""
    return _default_profiler


def set_default_profiler(profiler: SamplingProfiler) -> SamplingProfiler:
    """Swap the process-wide profiler (tests); returns the previous one."""
    global _default_profiler
    with _default_lock:
        previous, _default_profiler = _default_profiler, profiler
    return previous
