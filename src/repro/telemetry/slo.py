"""SLO objectives evaluated against the live metric families.

An *objective* declares what "good" means over one metric family the
process already exports — no new instrumentation, no time-series
database.  Two kinds cover the families we have:

- :class:`LatencyObjective` — "``target`` of observations complete
  within ``threshold`` seconds", read from a histogram's cumulative
  buckets (``repro_http_request_seconds``);
- :class:`ErrorRateObjective` — "``target`` of events are good", read
  from a counter family by classifying each series' tag value
  (``repro_http_requests_total`` by status prefix,
  ``repro_streams_total`` by outcome).

:class:`SLOEngine` evaluates the declared objectives on demand and
reports *error-budget burn*: ``burn = (1 - attainment)/(1 - target)``,
so ``1.0`` means the budget is exactly spent and anything above it is
an SLO breach.  Attainment is computed over the process lifetime (the
counters are cumulative); each evaluation also reports the delta since
the previous one, so a watcher polling ``/healthz`` sees recent burn
alongside the lifetime number.  The health verdict is deliberately
*advisory*: ``/healthz`` stays 200 while degraded — an SLO burn means
"page a human", not "take the instance out of rotation".
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Callable, Iterable, Sequence

from repro.telemetry.registry import Counter, Histogram, MetricsRegistry

__all__ = [
    "ErrorRateObjective",
    "LatencyObjective",
    "SLOEngine",
    "default_objectives",
]

#: burn thresholds for the advisory verdict per objective
WARN_BURN = 0.5
BREACH_BURN = 1.0


class _Objective:
    """Shared declaration plumbing; subclasses implement ``measure``."""

    kind = "objective"

    def __init__(self, name: str, family: str, target: float, description: str = ""):
        if not 0.0 < target <= 1.0:
            raise ValueError(f"SLO target must be in (0, 1], got {target}")
        self.name = name
        self.family = family
        self.target = float(target)
        self.description = description

    def measure(self, families: "Sequence[object]") -> tuple[float, float]:
        """``(good, total)`` event counts over the family instances."""
        raise NotImplementedError

    def declaration(self) -> dict[str, object]:
        """JSON-safe declaration for stats pages."""
        return {
            "name": self.name,
            "kind": self.kind,
            "family": self.family,
            "target": self.target,
            "description": self.description,
        }


class LatencyObjective(_Objective):
    """``target`` of a histogram's observations land within ``threshold``.

    ``threshold`` (seconds) is resolved against the histogram's bucket
    bounds: the largest bound ``<= threshold`` is used, because bucket
    counts are only knowable at bounds.  A threshold below every bound
    measures zero observations as good — declare thresholds on bucket
    edges (the default latency buckets include 0.1, 0.5, 1.0, 2.5...).
    """

    kind = "latency"

    def __init__(self, name: str, family: str, threshold: float, target: float,
                 description: str = ""):
        super().__init__(name, family, target, description)
        self.threshold = float(threshold)

    def measure(self, families: "Sequence[object]") -> tuple[float, float]:
        good = total = 0.0
        for family in families:
            if not isinstance(family, Histogram):
                continue
            # observations <= the largest bound that fits the threshold
            edge = bisect_right(family.buckets, self.threshold)
            for _tags, cell in family.series():
                good += sum(cell.counts[:edge])
                total += cell.count
        return good, total

    def declaration(self) -> dict[str, object]:
        entry = super().declaration()
        entry["threshold"] = self.threshold
        return entry


class ErrorRateObjective(_Objective):
    """``target`` of a counter family's events classify as good.

    A series is *bad* when its ``tag`` value is in ``bad_values`` or
    starts with one of ``bad_prefixes`` (how HTTP status classes are
    matched: ``bad_prefixes=("5",)``).
    """

    kind = "error_rate"

    def __init__(self, name: str, family: str, tag: str,
                 target: float, bad_values: Iterable[str] = (),
                 bad_prefixes: Iterable[str] = (), description: str = ""):
        super().__init__(name, family, target, description)
        self.tag = tag
        self.bad_values = frozenset(bad_values)
        self.bad_prefixes = tuple(bad_prefixes)

    def _is_bad(self, value: str) -> bool:
        if value in self.bad_values:
            return True
        return any(value.startswith(prefix) for prefix in self.bad_prefixes)

    def measure(self, families: "Sequence[object]") -> tuple[float, float]:
        good = total = 0.0
        for family in families:
            if not isinstance(family, Counter):
                continue
            for tags, cell in family.series():
                value = dict(tags).get(self.tag, "")
                total += cell.value
                if not self._is_bad(value):
                    good += cell.value
        return good, total

    def declaration(self) -> dict[str, object]:
        entry = super().declaration()
        entry["tag"] = self.tag
        entry["bad_values"] = sorted(self.bad_values)
        entry["bad_prefixes"] = list(self.bad_prefixes)
        return entry


def default_objectives() -> tuple[_Objective, ...]:
    """The server's out-of-the-box objectives.

    Matched to the families the app server already exports; tune by
    constructing the engine with your own declarations.
    """
    return (
        LatencyObjective(
            "http-latency",
            family="repro_http_request_seconds",
            threshold=2.5,
            target=0.99,
            description="99% of HTTP requests complete within 2.5s",
        ),
        ErrorRateObjective(
            "http-errors",
            family="repro_http_requests_total",
            tag="status",
            target=0.999,
            bad_prefixes=("5",),
            description="99.9% of HTTP responses are not 5xx",
        ),
        ErrorRateObjective(
            "stream-errors",
            family="repro_streams_total",
            tag="outcome",
            target=0.99,
            bad_values=("aborted", "rejected"),
            description="99% of SSE streams are neither aborted nor rejected",
        ),
    )


def _burn(attainment: float, target: float) -> float:
    """Error-budget burn: 1.0 = budget exactly spent."""
    if target >= 1.0:
        return 0.0 if attainment >= 1.0 else float("inf")
    return (1.0 - attainment) / (1.0 - target)


def _state(burn: float | None) -> str:
    if burn is None:
        return "no_data"
    if burn >= BREACH_BURN:
        return "breach"
    if burn >= WARN_BURN:
        return "warn"
    return "ok"


class SLOEngine:
    """Evaluates declared objectives against one or more registries.

    ``registries`` is a zero-arg callable returning the registries to
    read (the server passes the same union its ``/metrics`` page
    renders) or a static sequence.  ``evaluate()`` is cheap — a few
    dict scans — and stateless except for remembering the previous
    counts per objective, which is what makes the ``window`` block
    (burn since the last evaluation) possible.
    """

    def __init__(
        self,
        objectives: Sequence[_Objective] | None = None,
        registries: "Callable[[], Sequence[MetricsRegistry]] | Sequence[MetricsRegistry]" = (),
    ):
        self.objectives = tuple(
            objectives if objectives is not None else default_objectives()
        )
        self._registries = registries
        self._last: dict[str, tuple[float, float]] = {}

    def _resolve_registries(self) -> list[MetricsRegistry]:
        source = self._registries
        registries = list(source() if callable(source) else source)
        unique: list[MetricsRegistry] = []
        for registry in registries:
            if not any(registry is seen for seen in unique):
                unique.append(registry)
        return unique

    def _families_named(self, name: str) -> list[object]:
        found: list[object] = []
        for registry in self._resolve_registries():
            for family in registry.families():
                if family.name == name:
                    found.append(family)
        return found

    def evaluate(self) -> list[dict[str, object]]:
        """One JSON-safe report per objective (lifetime + window burn)."""
        report: list[dict[str, object]] = []
        for objective in self.objectives:
            good, total = objective.measure(self._families_named(objective.family))
            attainment = (good / total) if total > 0 else None
            burn = _burn(attainment, objective.target) if attainment is not None else None

            last_good, last_total = self._last.get(objective.name, (0.0, 0.0))
            window_good = max(0.0, good - last_good)
            window_total = max(0.0, total - last_total)
            window_attainment = (
                (window_good / window_total) if window_total > 0 else None
            )
            window_burn = (
                _burn(window_attainment, objective.target)
                if window_attainment is not None
                else None
            )
            self._last[objective.name] = (good, total)

            entry = objective.declaration()
            entry.update(
                {
                    "good": good,
                    "total": total,
                    "attainment": attainment,
                    "burn": burn,
                    "state": _state(burn),
                    "window": {
                        "good": window_good,
                        "total": window_total,
                        "attainment": window_attainment,
                        "burn": window_burn,
                        "state": _state(window_burn),
                    },
                }
            )
            report.append(entry)
        return report

    def health(self) -> dict[str, object]:
        """The ``/healthz`` block: overall status + per-objective burn.

        ``status`` is ``"ok"`` unless some objective is warning or
        breaching over the process lifetime — then ``"degraded"``,
        still served with HTTP 200 (burn is a page, not an outage).
        """
        objectives = self.evaluate()
        worst = "ok"
        for entry in objectives:
            state = entry["state"]
            if state == "breach":
                worst = "breach"
                break
            if state == "warn":
                worst = "warn"
        return {
            "status": "ok" if worst == "ok" else "degraded",
            "worst_state": worst,
            "objectives": objectives,
        }
