"""Trace assembly: spans from every process, one trace, one archive row.

The tracing layer (:mod:`repro.telemetry.tracing`) records *spans* —
each process keeps its own ring.  This module turns those rings into
whole *traces*:

- :func:`revive_spans` rebuilds :class:`~repro.telemetry.tracing.Span`
  objects from the JSON-safe dicts a worker backhauls in its chunk
  response (``repro.cluster.wire`` minor 2), re-parenting worker roots
  under the coordinator's per-attempt span so the tree connects;
- :class:`TraceCollector` listens on a :class:`~repro.telemetry.
  tracing.TraceBuffer`, groups completed spans by trace id, and — when
  a trace's *root* span closes (the span with no parent: the HTTP
  request, or ``label.build`` from the CLI) — finalizes the trace and
  hands it to an archive under a tail-based :class:`SamplingPolicy`;
- :func:`span_tree` nests a flat span list into the parent/child tree
  that ``GET /traces/<id>`` serves and the CLI waterfall renders.

Tail-based sampling decides *after* the trace completes, so the
decision can see what head-based sampling cannot: error traces and
slow-over-threshold traces are always kept, the rest are sampled
1-in-N — deterministically by trace id, so every process holding the
same trace agrees.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.telemetry.profiling import SamplingProfiler
from repro.telemetry.tracing import (
    Span,
    TraceBuffer,
    clamp_tags,
    get_trace_buffer,
    is_trace_id,
    new_span_id,
)

__all__ = [
    "MAX_BACKHAUL_SPANS",
    "SamplingPolicy",
    "TraceCollector",
    "revive_spans",
    "span_tree",
]

#: the most spans a single chunk response may carry back; anything past
#: the cap is dropped worker-side (and again coordinator-side, so a
#: misbehaving worker cannot bloat the collector)
MAX_BACKHAUL_SPANS = 32

_SPAN_ID_LENGTH = 16


def _is_span_id(value: object) -> bool:
    return (
        isinstance(value, str)
        and len(value) == _SPAN_ID_LENGTH
        and all(ch in "0123456789abcdef" for ch in value)
    )


def revive_spans(
    entries: Sequence[Mapping[str, object]],
    *,
    trace_id: str,
    parent_id: str | None = None,
    extra_tags: Mapping[str, object] | None = None,
    limit: int = MAX_BACKHAUL_SPANS,
) -> list[Span]:
    """Rebuild backhauled span dicts as :class:`Span` objects, safely.

    Everything a remote process sent is treated as untrusted: the
    trace id is forced to the coordinator's ``trace_id`` (the worker
    only ever echoes it anyway), span ids are validated or re-minted,
    tags are clamped under the record-time budget, and at most
    ``limit`` entries survive.  Entries without a parent (the worker's
    local roots, e.g. ``worker.chunk``) are re-parented under
    ``parent_id`` so the cross-process tree connects; intra-worker
    nesting is preserved.
    """
    if not is_trace_id(trace_id):
        return []
    revived: list[Span] = []
    extras = dict(extra_tags or {})
    for entry in list(entries)[: max(0, limit)]:
        if not isinstance(entry, Mapping):
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            continue
        span_id = entry.get("span_id")
        if not _is_span_id(span_id):
            span_id = new_span_id()
        entry_parent = entry.get("parent_id")
        if not _is_span_id(entry_parent):
            entry_parent = parent_id
        tags = entry.get("tags")
        merged = dict(tags) if isinstance(tags, Mapping) else {}
        merged.update(extras)
        revived_span = Span(
            name=name[:120],
            trace_id=trace_id,
            span_id=span_id,  # type: ignore[arg-type]
            parent_id=entry_parent,  # type: ignore[arg-type]
            tags=clamp_tags(merged),
        )
        try:
            revived_span.started_at = float(entry.get("started_at"))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            pass  # keep the construction timestamp
        try:
            revived_span.duration = float(entry.get("duration"))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            revived_span.duration = 0.0
        if entry.get("status") == "error":
            revived_span.status = "error"
            error = entry.get("error")
            if isinstance(error, str):
                revived_span.error = error[:200]
        revived.append(revived_span)
    return revived


def span_tree(spans: Iterable[Mapping[str, object]]) -> list[dict[str, object]]:
    """Nest a flat span list into parent/child trees (roots returned).

    Spans whose parent is absent from the list are promoted to roots
    rather than lost; siblings sort by start time.  Input dicts are the
    ``Span.as_dict()`` shape; output nodes add a ``children`` list.
    """
    nodes: dict[object, dict[str, object]] = {}
    ordered: list[dict[str, object]] = []
    for entry in spans:
        span_id = entry.get("span_id")
        if span_id in nodes:
            continue  # duplicate span ids keep the first occurrence
        node = dict(entry)
        node["children"] = []
        nodes[span_id] = node
        ordered.append(node)
    ordered.sort(key=lambda node: (node.get("started_at") or 0.0))
    roots: list[dict[str, object]] = []
    for node in ordered:
        parent = node.get("parent_id")
        if parent is not None and parent in nodes and parent != node["span_id"]:
            nodes[parent]["children"].append(node)  # type: ignore[union-attr]
        else:
            roots.append(node)
    return roots


class SamplingPolicy:
    """Tail-based keep/drop decisions for completed traces.

    ``decide`` returns why a trace is kept — ``"error"``, ``"slow"``,
    or ``"sampled"`` — or ``None`` to drop it.  Error traces and traces
    slower than ``slow_threshold`` seconds are always kept; the rest
    are kept 1-in-``sample_rate``, chosen deterministically from the
    trace id so the decision is stable across processes and restarts.
    ``sample_rate=1`` (the default) keeps everything — the right call
    for a single-node deployment; raise it under heavy traffic.
    """

    def __init__(
        self,
        sample_rate: int = 1,
        slow_threshold: float = 1.0,
        keep_errors: bool = True,
    ):
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        self.sample_rate = int(sample_rate)
        self.slow_threshold = float(slow_threshold)
        self.keep_errors = keep_errors

    def decide(self, trace_id: str, status: str, duration: float) -> str | None:
        """``"error"``/``"slow"``/``"sampled"`` to keep, ``None`` to drop."""
        if self.keep_errors and status == "error":
            return "error"
        if duration >= self.slow_threshold:
            return "slow"
        if self.sample_rate == 1:
            return "sampled"
        if int(trace_id[:8], 16) % self.sample_rate == 0:
            return "sampled"
        return None

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form for stats pages."""
        return {
            "sample_rate": self.sample_rate,
            "slow_threshold": self.slow_threshold,
            "keep_errors": self.keep_errors,
        }


class _PendingTrace:
    __slots__ = ("spans", "span_ids", "first_seen", "dropped")

    def __init__(self, clock_now: float):
        self.spans: list[Span] = []
        self.span_ids: set[str] = set()
        self.first_seen = clock_now
        self.dropped = 0


class TraceCollector:
    """Groups completed spans into traces and archives the keepers.

    Installed as a listener on a :class:`TraceBuffer` (the process-wide
    default unless told otherwise), so every locally recorded span —
    including worker spans the coordinator revives from a chunk
    backhaul — flows through with zero changes to instrumented code.
    A trace finalizes when its root span (no parent) closes; the
    sampling policy then decides whether the assembled trace reaches
    the ``archive`` (anything with a ``put_trace`` method, normally the
    SQLite :class:`~repro.store.store.LabelStore`).

    Bounded on every axis: at most ``max_pending`` unfinished traces
    (oldest evicted first), at most ``max_spans_per_trace`` spans kept
    per trace (the rest counted, not stored).  Archive failures are
    counted and swallowed — a broken store must never break serving.
    """

    def __init__(
        self,
        archive: object | None = None,
        policy: SamplingPolicy | None = None,
        buffer: TraceBuffer | None = None,
        max_pending: int = 128,
        max_spans_per_trace: int = 512,
        clock: Callable[[], float] = time.time,
        profiler: SamplingProfiler | None = None,
    ):
        self._archive = archive
        # when handed a profiler running in continuous mode, a trace
        # kept for being *slow* also archives the profiler's rolling
        # window (rotated fresh afterwards), linked by trace id — the
        # "why was it slow" beside the "what was slow"
        self._profiler = profiler
        self.policy = policy if policy is not None else SamplingPolicy()
        self._buffer = buffer if buffer is not None else get_trace_buffer()
        self._max_pending = max_pending
        self._max_spans = max_spans_per_trace
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: dict[str, _PendingTrace] = {}
        self._installed = False
        self._finalized = 0
        self._archived = 0
        self._sampled_out = 0
        self._evicted = 0
        self._span_overflow = 0
        self._archive_errors = 0
        self._profiles_linked = 0
        self._profile_errors = 0
        self._kept_by_reason: dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------------------------

    def install(self) -> "TraceCollector":
        """Start listening on the buffer (idempotent)."""
        if not self._installed:
            self._buffer.add_listener(self.on_span)
            self._installed = True
        return self

    def close(self) -> None:
        """Stop listening (idempotent; pending partial traces are kept)."""
        if self._installed:
            self._buffer.remove_listener(self.on_span)
            self._installed = False

    # -- span intake --------------------------------------------------------------------

    def on_span(self, entry: Span) -> None:
        """Buffer listener: one completed span."""
        finalize: _PendingTrace | None = None
        with self._lock:
            pending = self._pending.get(entry.trace_id)
            if pending is None:
                while len(self._pending) >= self._max_pending:
                    # oldest first: dict insertion order is arrival order
                    evicted_id = next(iter(self._pending))
                    del self._pending[evicted_id]
                    self._evicted += 1
                pending = _PendingTrace(self._clock())
                self._pending[entry.trace_id] = pending
            if entry.span_id in pending.span_ids:
                return  # a duplicate backhaul: keep the first copy
            pending.span_ids.add(entry.span_id)
            if len(pending.spans) >= self._max_spans:
                pending.dropped += 1
                self._span_overflow += 1
            else:
                pending.spans.append(entry)
            if entry.parent_id is None:
                finalize = self._pending.pop(entry.trace_id)
                self._finalized += 1
        if finalize is not None:
            self._finalize(entry.trace_id, root=entry, pending=finalize)

    def _finalize(self, trace_id: str, root: Span, pending: _PendingTrace) -> None:
        duration = root.duration if root.duration is not None else 0.0
        status = "error" if any(
            entry.status == "error" for entry in pending.spans
        ) else root.status
        reason = self.policy.decide(trace_id, status, duration)
        if reason is None:
            with self._lock:
                self._sampled_out += 1
            return
        with self._lock:
            self._kept_by_reason[reason] = self._kept_by_reason.get(reason, 0) + 1
        archive = self._archive
        if archive is None:
            return
        spans = sorted(pending.spans, key=lambda entry: entry.started_at)
        try:
            archive.put_trace(  # type: ignore[attr-defined]
                trace_id=trace_id,
                root_name=root.name,
                status=status,
                started_at=root.started_at,
                duration=duration,
                spans=[entry.as_dict() for entry in spans],
                sampled=reason,
            )
            with self._lock:
                self._archived += 1
        except Exception:  # noqa: BLE001 - archiving must never break serving
            with self._lock:
                self._archive_errors += 1
            return
        if reason == "slow":
            self._link_profile(trace_id, archive)

    def _link_profile(self, trace_id: str, archive: object) -> None:
        """Archive the profiler's rolling window against a slow trace."""
        profiler = self._profiler
        put_profile = getattr(archive, "put_profile", None)
        if profiler is None or put_profile is None:
            return
        try:
            report = profiler.rotate_continuous()
            if report is None or report.is_empty:
                return
            put_profile(
                secrets.token_hex(16),
                source=report.source,
                started_at=report.started_at,
                duration=report.duration,
                hz=report.hz,
                sample_count=report.samples,
                report=report.as_dict(),
                trace_id=trace_id,
            )
            with self._lock:
                self._profiles_linked += 1
        except Exception:  # noqa: BLE001 - profiling must never break serving
            with self._lock:
                self._profile_errors += 1

    # -- observability ------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """JSON-safe counters for ``/engine/stats``."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "finalized": self._finalized,
                "archived": self._archived,
                "sampled_out": self._sampled_out,
                "kept": dict(self._kept_by_reason),
                "evicted_pending": self._evicted,
                "span_overflow": self._span_overflow,
                "archive_errors": self._archive_errors,
                "profiles_linked": self._profiles_linked,
                "profile_errors": self._profile_errors,
                "policy": self.policy.as_dict(),
            }
