"""Ranking Facts: nutritional labels for rankings.

A from-scratch reproduction of *A Nutritional Label for Rankings*
(Yang, Stoyanovich, Asudeh, Howe, Jagadish, Miklau — SIGMOD 2018,
DOI 10.1145/3183713.3193568).

Quickstart
----------
>>> from repro import RankingFactsBuilder, LinearScoringFunction, render_text
>>> from repro.datasets import cs_departments
>>> facts = (
...     RankingFactsBuilder(cs_departments(), dataset_name="CS departments")
...     .with_id_column("DeptName")
...     .with_scoring(LinearScoringFunction(
...         {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}))
...     .with_sensitive_attribute("DeptSizeBin")
...     .with_diversity_attributes(["DeptSizeBin", "Region"])
...     .build()
... )
>>> print(render_text(facts.label))  # doctest: +SKIP

The subpackages (see DESIGN.md for the full inventory):

- :mod:`repro.tabular` — columnar table substrate (CSV, schemas, stats);
- :mod:`repro.preprocess` — normalization / standardization / binning;
- :mod:`repro.stats` — distributions, tests, regression, correlation;
- :mod:`repro.ranking` — scoring functions, rankings, rank distances;
- :mod:`repro.ingredients` — attribute-importance estimators;
- :mod:`repro.stability` — slope / weight-jitter / data-noise stability;
- :mod:`repro.fairness` — FA*IR, proportion, pairwise, rND/rKL/rRD,
  the generative fair-ranking model;
- :mod:`repro.diversity` — top-k vs overall category breakdowns;
- :mod:`repro.label` — widgets, label builder, renderers;
- :mod:`repro.datasets` — the three demo datasets (synthesized) + CSV;
- :mod:`repro.engine` — the label computation service: content-hash
  caching, batch execution, parallel Monte-Carlo stability;
- :mod:`repro.cluster` — Monte-Carlo trials sharded across machines;
- :mod:`repro.store` — the durable label store: persistent
  content-addressed L2 cache with provenance and drift APIs;
- :mod:`repro.app` — workflow session, CLI, demo HTTP server.
"""

from repro.engine.jobs import LabelDesign, LabelJob
from repro.engine.service import LabelService
from repro.errors import RankingFactsError
from repro.label.builder import RankingFacts, RankingFactsBuilder
from repro.label.render_html import render_html
from repro.label.render_json import render_json
from repro.label.render_markdown import render_markdown
from repro.label.render_text import render_text
from repro.label.widgets import NutritionalLabel
from repro.preprocess.pipeline import NormalizationPlan
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.tabular.csvio import read_csv
from repro.tabular.table import Table

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "RankingFactsError",
    "LabelDesign",
    "LabelJob",
    "LabelService",
    "Table",
    "read_csv",
    "LinearScoringFunction",
    "Ranking",
    "rank_table",
    "NormalizationPlan",
    "RankingFactsBuilder",
    "RankingFacts",
    "NutritionalLabel",
    "render_text",
    "render_html",
    "render_json",
    "render_markdown",
]
