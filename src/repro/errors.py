"""Exception hierarchy for the Ranking Facts library.

Every error raised deliberately by this library derives from
:class:`RankingFactsError`, so callers can catch one base class at an
application boundary.  Subclasses are fine-grained enough that tests and
user code can distinguish bad input data from bad configuration.
"""

from __future__ import annotations

__all__ = [
    "RankingFactsError",
    "SchemaError",
    "ColumnTypeError",
    "MissingColumnError",
    "EmptyTableError",
    "CSVFormatError",
    "NormalizationError",
    "ScoringError",
    "WeightError",
    "RankingError",
    "FairnessConfigError",
    "ProtectedGroupError",
    "StabilityError",
    "LabelError",
    "DatasetError",
    "SessionStateError",
    "EngineError",
    "ClusterError",
    "StoreError",
    "TelemetryError",
]


class RankingFactsError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(RankingFactsError):
    """A table or column violates its declared schema."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of the wrong type.

    For example, requesting a histogram of a categorical column, or using
    a categorical attribute inside a linear scoring function.
    """


class MissingColumnError(SchemaError, KeyError):
    """A referenced column name does not exist in the table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = tuple(available)
        msg = f"column {name!r} not found"
        if self.available:
            msg += f"; available columns: {', '.join(self.available)}"
        super().__init__(msg)

    def __str__(self) -> str:  # KeyError.__str__ adds quotes; keep message readable
        return self.args[0]


class EmptyTableError(RankingFactsError):
    """An operation that requires at least one row got an empty table."""


class CSVFormatError(RankingFactsError):
    """A CSV file could not be parsed into a well-formed table."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class NormalizationError(RankingFactsError):
    """A normalizer could not be fit or applied (e.g. zero variance)."""


class ScoringError(RankingFactsError):
    """A scoring function is malformed or cannot be evaluated."""


class WeightError(ScoringError):
    """Scoring weights are invalid (wrong sign, non-finite, empty...)."""


class RankingError(RankingFactsError):
    """A ranking operation failed (e.g. top-k larger than the ranking)."""


class FairnessConfigError(RankingFactsError):
    """A fairness measure was configured with invalid parameters."""


class ProtectedGroupError(FairnessConfigError):
    """The protected group is empty, universal, or otherwise degenerate."""


class StabilityError(RankingFactsError):
    """A stability estimator could not be computed."""


class LabelError(RankingFactsError):
    """A nutritional label could not be assembled or rendered."""


class DatasetError(RankingFactsError):
    """A built-in dataset generator or loader received bad parameters."""


class EngineError(RankingFactsError):
    """The label engine was misused (bad job spec, unknown batch id...)."""


class ClusterError(EngineError):
    """A distributed-trial operation failed (bad frame, dead worker...).

    Raised by the wire layer on malformed or version-mismatched frames
    and by the coordinator when a worker cannot be reached or returns an
    error.  The coordinator catches it internally to fail chunks over to
    other workers (or the local backend); it only escapes to callers for
    misconfiguration (e.g. an unparsable worker address).
    """


class StoreError(EngineError):
    """A durable label-store operation failed.

    Raised when a store file is not a label store (or was written by a
    newer engine whose schema this one cannot read), when a fingerprint
    prefix is unknown or ambiguous, and for invalid store
    configuration.  Never raised for a plain miss — lookups return
    ``None`` so the tiered cache can fall through to a rebuild.
    """


class TelemetryError(RankingFactsError):
    """The telemetry layer was misconfigured or misused.

    Raised for metric-registry misuse (re-registering a name as a
    different kind, updating with the wrong tag names — always a bug in
    instrumentation code, never a runtime condition) and for an unknown
    log level handed to ``configure_logging``.
    """


class SessionStateError(RankingFactsError):
    """A demo-session method was called out of workflow order.

    The Figure-3 workflow is: load dataset -> (optional) preprocess ->
    design scoring function -> preview -> build label.  Calling e.g.
    ``preview()`` before a scoring function exists raises this error.
    """
