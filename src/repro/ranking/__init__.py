"""The ranking engine: scoring functions, rankings, and rank comparison.

Everything the label explains is produced here:

- :mod:`repro.ranking.scoring` — linear scoring functions (attribute
  weights), the "Recipe" the paper's user designs in Figure 3;
- :mod:`repro.ranking.ranker` — the :class:`Ranking` object: a scored,
  ordered view of a table with top-k slicing and group lookups;
- :mod:`repro.ranking.compare` — distances between rankings (Kendall
  tau, Spearman footrule/rho, top-k overlap), used by the perturbation
  stability estimators; the index-based variants (inversion counting
  over permutation arrays) back the vectorized trial kernels.
"""

from repro.ranking.compare import (
    count_inversions,
    count_inversions_batch,
    kendall_distance,
    kendall_tau_from_discordant,
    kendall_tau_positions,
    kendall_tau_rankings,
    rank_biased_overlap,
    rank_displacement,
    spearman_footrule,
    top_k_jaccard,
    top_k_overlap,
    top_k_overlap_positions,
)
from repro.ranking.ranker import RankedItem, Ranking, rank_table
from repro.ranking.scoring import LinearScoringFunction, ScoringFunction

__all__ = [
    "ScoringFunction",
    "LinearScoringFunction",
    "Ranking",
    "RankedItem",
    "rank_table",
    "kendall_tau_rankings",
    "kendall_tau_positions",
    "kendall_tau_from_discordant",
    "count_inversions",
    "count_inversions_batch",
    "kendall_distance",
    "spearman_footrule",
    "rank_displacement",
    "top_k_overlap",
    "top_k_overlap_positions",
    "top_k_jaccard",
    "rank_biased_overlap",
]
