"""The :class:`Ranking`: a scored, ordered view of a table.

A ranking remembers three things: the ordered table (best row first),
the score of each row, and which column (if any) identifies items.
Widgets consume rankings, never raw tables — the top-10/over-all
contrast that every detailed widget draws (paper §2.1) is exactly
``ranking.top_k(10)`` versus ``ranking``.

Ordering is descending by score.  Ties break by original row order,
which makes rankings deterministic; NaN scores sort to the bottom
(a row the scorer could not evaluate can never crack the top-k).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import RankingError
from repro.ranking.scoring import ScoringFunction
from repro.tabular.table import Table

__all__ = ["Ranking", "RankedItem", "rank_table"]


@dataclass(frozen=True)
class RankedItem:
    """One row of a ranking: its 1-based rank, score, id, and attributes."""

    rank: int
    score: float
    item_id: object
    attributes: dict[str, object]


class Ranking:
    """An immutable ranking over a table.

    Construct via :func:`rank_table` (score with a
    :class:`~repro.ranking.scoring.ScoringFunction`) or
    :meth:`Ranking.from_scores` (bring your own score vector — e.g. the
    COMPAS decile scores, which arrive pre-computed).

    Parameters
    ----------
    ordered_table:
        The table already sorted best-first.
    ordered_scores:
        Scores aligned with ``ordered_table`` rows, non-increasing
        (NaNs allowed only in a suffix).
    id_column:
        Optional name of the column identifying items; defaults to the
        1-based position when absent.
    check_monotone:
        Verify that scores are non-increasing (on by default).  The
        FA*IR re-ranker disables this: its positions are intentional
        even where they break score order.
    """

    def __init__(
        self,
        ordered_table: Table,
        ordered_scores: np.ndarray,
        id_column: str | None = None,
        check_monotone: bool = True,
    ):
        scores = np.asarray(ordered_scores, dtype=np.float64)
        if scores.shape != (ordered_table.num_rows,):
            raise RankingError(
                f"scores have shape {scores.shape}, table has {ordered_table.num_rows} rows"
            )
        finite = scores[~np.isnan(scores)]
        if np.isnan(scores).any():
            first_nan = int(np.flatnonzero(np.isnan(scores)).min())
            if not np.isnan(scores[first_nan:]).all():
                raise RankingError("NaN scores must form a suffix of the ranking")
        if check_monotone and finite.size > 1 and (np.diff(finite) > 1e-12).any():
            raise RankingError("scores must be non-increasing in rank order")
        if id_column is not None and id_column not in ordered_table:
            raise RankingError(f"id column {id_column!r} not in table")
        self._table = ordered_table
        self._scores = scores
        self._scores.setflags(write=False)
        self._id_column = id_column

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_scores(
        cls,
        table: Table,
        scores: Sequence[float] | np.ndarray,
        id_column: str | None = None,
    ) -> "Ranking":
        """Order ``table`` by ``scores`` (descending, stable, NaNs last)."""
        table.require_rows(1)
        arr = np.asarray(scores, dtype=np.float64)
        if arr.shape != (table.num_rows,):
            raise RankingError(
                f"scores have shape {arr.shape}, table has {table.num_rows} rows"
            )
        keys = -arr.copy()
        keys[np.isnan(keys)] = np.inf  # NaN scores sort last
        order = np.argsort(keys, kind="stable")
        return cls(table.take(order), arr[order], id_column=id_column)

    @classmethod
    def presorted(
        cls,
        ordered_table: Table,
        ordered_scores: Sequence[float] | np.ndarray,
        id_column: str | None = None,
    ) -> "Ranking":
        """Wrap an already-ordered table *without* the monotonicity check.

        For rankings whose positions are intentional but whose scores
        may be locally non-monotone — e.g. the output of the FA*IR
        re-ranker, which can force a lower-scored protected item above
        a higher-scored one.  Everything else about the ranking behaves
        normally.
        """
        return cls(
            ordered_table,
            np.asarray(ordered_scores, dtype=np.float64).copy(),
            id_column=id_column,
            check_monotone=False,
        )

    # -- basics --------------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The ordered table (rank 1 first)."""
        return self._table

    @property
    def scores(self) -> np.ndarray:
        """Scores in rank order (read-only)."""
        return self._scores

    @property
    def id_column(self) -> str | None:
        """Name of the identifying column, if any."""
        return self._id_column

    @property
    def size(self) -> int:
        """Number of ranked items."""
        return self._table.num_rows

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"Ranking({self.size} items, id={self._id_column!r})"

    def item_ids(self) -> list[object]:
        """Item identifiers in rank order (1-based positions if no id column)."""
        if self._id_column is None:
            return list(range(1, self.size + 1))
        return list(self._table.column(self._id_column).values)

    def item(self, rank: int) -> RankedItem:
        """The item at 1-based ``rank``."""
        if not 1 <= rank <= self.size:
            raise RankingError(f"rank {rank} out of range 1..{self.size}")
        row = self._table.row(rank - 1)
        item_id = row[self._id_column] if self._id_column else rank
        return RankedItem(
            rank=rank, score=float(self._scores[rank - 1]), item_id=item_id, attributes=row
        )

    def __iter__(self):
        for rank in range(1, self.size + 1):
            yield self.item(rank)

    # -- slicing ----------------------------------------------------------------------

    def top_k(self, k: int) -> "Ranking":
        """The first ``k`` items as a ranking (k is clamped to the size)."""
        if k <= 0:
            raise RankingError(f"top_k needs k >= 1, got {k}")
        k = min(k, self.size)
        return Ranking(
            self._table.head(k), self._scores[:k].copy(), id_column=self._id_column
        )

    def rank_of(self, item_id: object) -> int:
        """1-based rank of ``item_id`` (raises if absent or ambiguous)."""
        ids = self.item_ids()
        hits = [i for i, v in enumerate(ids) if v == item_id]
        if not hits:
            raise RankingError(f"item {item_id!r} is not in this ranking")
        if len(hits) > 1:
            raise RankingError(f"item {item_id!r} appears {len(hits)} times")
        return hits[0] + 1

    # -- group views --------------------------------------------------------------------

    def group_mask(self, attribute: str, category: str) -> np.ndarray:
        """Boolean mask, in rank order, of items whose ``attribute`` equals ``category``."""
        return self._table.categorical_column(attribute).indicator(category)

    def group_count_at_k(self, attribute: str, category: str, k: int) -> int:
        """Number of ``category`` members in the top ``k``."""
        if k <= 0:
            raise RankingError(f"group_count_at_k needs k >= 1, got {k}")
        k = min(k, self.size)
        return int(self.group_mask(attribute, category)[:k].sum())

    def group_share_overall(self, attribute: str, category: str) -> float:
        """Fraction of the whole ranking belonging to ``category``."""
        mask = self.group_mask(attribute, category)
        return float(mask.mean()) if mask.size else 0.0

    # -- serialization ------------------------------------------------------------------

    def to_records(self) -> list[dict[str, object]]:
        """Rank/score/id/attribute dicts for JSON output and previews."""
        return [
            {
                "rank": item.rank,
                "score": item.score,
                "item_id": item.item_id,
                **item.attributes,
            }
            for item in self
        ]


def rank_table(
    table: Table, scorer: ScoringFunction, id_column: str | None = None
) -> Ranking:
    """Score ``table`` with ``scorer`` and return the resulting ranking.

    This is the single entry point the demo session uses after the user
    finishes designing the scoring function.

    >>> from repro.tabular import Table
    >>> from repro.ranking import LinearScoringFunction, rank_table
    >>> t = Table.from_dict({"name": ["x", "y"], "v": [1.0, 2.0]})
    >>> rank_table(t, LinearScoringFunction({"v": 1.0}), "name").item_ids()
    ['y', 'x']
    """
    return Ranking.from_scores(table, scorer.score_table(table), id_column=id_column)
