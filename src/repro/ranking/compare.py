"""Distances and agreement measures between two rankings.

The perturbation-based stability estimators (paper §2.2's "alternatively,
stability can be computed ...") quantify how far a ranking moves when
weights or data are jittered.  These functions are the movement metrics:
Kendall tau / Kendall distance over the common items, Spearman footrule,
maximum rank displacement, and set overlap of the top-k.
"""

from __future__ import annotations

from repro.errors import RankingError
from repro.ranking.ranker import Ranking
from repro.stats.correlation import kendall_tau

__all__ = [
    "kendall_tau_rankings",
    "kendall_tau_ids",
    "kendall_distance",
    "spearman_footrule",
    "rank_displacement",
    "top_k_overlap",
    "top_k_overlap_ids",
    "top_k_jaccard",
    "rank_biased_overlap",
]


def _common_rank_vectors(a: Ranking, b: Ranking) -> tuple[list[int], list[int]]:
    """Ranks in ``a`` and ``b`` of the items present in both (by item id)."""
    return _common_ranks_from_ids(a.item_ids(), b.item_ids())


def _common_ranks_from_ids(ids_a, ids_b) -> tuple[list[int], list[int]]:
    """Rank vectors over the common items of two id sequences."""
    if len(set(ids_a)) != len(ids_a) or len(set(ids_b)) != len(ids_b):
        raise RankingError("rank comparison requires unique item ids")
    pos_b = {item: i + 1 for i, item in enumerate(ids_b)}
    ranks_a: list[int] = []
    ranks_b: list[int] = []
    for i, item in enumerate(ids_a):
        if item in pos_b:
            ranks_a.append(i + 1)
            ranks_b.append(pos_b[item])
    if len(ranks_a) < 2:
        raise RankingError(
            f"rank comparison needs at least 2 common items, found {len(ranks_a)}"
        )
    return ranks_a, ranks_b


def kendall_tau_rankings(a: Ranking, b: Ranking) -> float:
    """Kendall tau-b between two rankings over their common items.

    1.0 means identical order, -1.0 fully reversed.
    """
    return kendall_tau_ids(a.item_ids(), b.item_ids())


def kendall_tau_ids(ids_a, ids_b) -> float:
    """:func:`kendall_tau_rankings` over plain item-id sequences.

    The id-sequence form is what the Monte-Carlo trial payloads carry
    across process boundaries — a baseline's ids pickle in bytes where
    its full :class:`Ranking` would re-ship the whole table.
    """
    ranks_a, ranks_b = _common_ranks_from_ids(ids_a, ids_b)
    return kendall_tau(ranks_a, ranks_b)


def kendall_distance(a: Ranking, b: Ranking, normalized: bool = True) -> float:
    """Number of discordant pairs between the two rankings.

    With ``normalized=True`` the count is divided by the number of item
    pairs, giving a value in [0, 1] (0 = identical order).
    """
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    n = len(ranks_a)
    discordant = 0
    for i in range(n - 1):
        for j in range(i + 1, n):
            if (ranks_a[i] - ranks_a[j]) * (ranks_b[i] - ranks_b[j]) < 0:
                discordant += 1
    if not normalized:
        return float(discordant)
    pairs = n * (n - 1) // 2
    return discordant / pairs


def spearman_footrule(a: Ranking, b: Ranking, normalized: bool = True) -> float:
    """Total absolute rank displacement of common items.

    Normalization divides by the maximum possible footrule distance for
    ``n`` items (``n^2/2`` for even n, ``(n^2-1)/2`` for odd), mapping
    into [0, 1].
    """
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    total = float(sum(abs(x - y) for x, y in zip(ranks_a, ranks_b)))
    if not normalized:
        return total
    n = len(ranks_a)
    max_footrule = (n * n) / 2.0 if n % 2 == 0 else (n * n - 1) / 2.0
    return total / max_footrule


def rank_displacement(a: Ranking, b: Ranking) -> int:
    """The largest rank change of any common item (0 = no item moved)."""
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    return int(max(abs(x - y) for x, y in zip(ranks_a, ranks_b)))


def top_k_overlap(a: Ranking, b: Ranking, k: int) -> float:
    """Fraction of ``a``'s top-k that also appears in ``b``'s top-k."""
    return top_k_overlap_ids(a.item_ids(), b.item_ids(), k)


def top_k_overlap_ids(ids_a, ids_b, k: int) -> float:
    """:func:`top_k_overlap` over plain item-id sequences."""
    if k <= 0:
        raise RankingError(f"top_k_overlap needs k >= 1, got {k}")
    top_a = set(ids_a[:k])
    top_b = set(ids_b[:k])
    if not top_a:
        return 0.0
    return len(top_a & top_b) / len(top_a)


def rank_biased_overlap(a: Ranking, b: Ranking, p: float = 0.9) -> float:
    """Rank-biased overlap (RBO) of two rankings, in [0, 1].

    Webber et al.'s top-weighted agreement measure: the expected overlap
    of the two prefixes at a geometrically distributed depth.  ``p``
    controls top-weightedness (0.9 puts ~86% of the weight on the first
    10 ranks).  This is the extrapolated ("RBO_ext") point estimate over
    the evaluated depths, which equals the exact RBO when both rankings
    contain the same items.

    Unlike the Kendall metrics, RBO is defined for rankings over
    different item sets, which is what the perturbation-stability view
    needs when comparing top fragments.
    """
    if not 0.0 < p < 1.0:
        raise RankingError(f"RBO persistence p must be inside (0, 1), got {p}")
    ids_a = a.item_ids()
    ids_b = b.item_ids()
    if len(set(ids_a)) != len(ids_a) or len(set(ids_b)) != len(ids_b):
        raise RankingError("rank comparison requires unique item ids")
    depth = min(len(ids_a), len(ids_b))
    if depth == 0:
        raise RankingError("RBO needs non-empty rankings")
    seen_a: set = set()
    seen_b: set = set()
    overlap = 0
    weighted_sum = 0.0
    for d in range(1, depth + 1):
        item_a, item_b = ids_a[d - 1], ids_b[d - 1]
        if item_a == item_b:
            overlap += 1
        else:
            if item_a in seen_b:
                overlap += 1
            if item_b in seen_a:
                overlap += 1
        seen_a.add(item_a)
        seen_b.add(item_b)
        weighted_sum += (overlap / d) * p ** (d - 1)
    agreement_at_depth = overlap / depth
    # extrapolate the tail assuming agreement stays at the final level
    return float(
        (1 - p) * weighted_sum + agreement_at_depth * p**depth
    )


def top_k_jaccard(a: Ranking, b: Ranking, k: int) -> float:
    """Jaccard similarity of the two top-k sets."""
    if k <= 0:
        raise RankingError(f"top_k_jaccard needs k >= 1, got {k}")
    top_a = set(a.item_ids()[:k])
    top_b = set(b.item_ids()[:k])
    union = top_a | top_b
    if not union:
        return 0.0
    return len(top_a & top_b) / len(union)
