"""Distances and agreement measures between two rankings.

The perturbation-based stability estimators (paper §2.2's "alternatively,
stability can be computed ...") quantify how far a ranking moves when
weights or data are jittered.  These functions are the movement metrics:
Kendall tau / Kendall distance over the common items, Spearman footrule,
maximum rank displacement, and set overlap of the top-k.

Three tiers of the same metrics coexist, ordered by how much structure
the caller already has in hand:

- **Ranking-based** (:func:`kendall_tau_rankings`, ...) — the friendly
  API over :class:`~repro.ranking.ranker.Ranking` objects;
- **id-based** (:func:`kendall_tau_ids`, :func:`top_k_overlap_ids`) —
  over plain item-id sequences, which is what the Monte-Carlo trial
  payloads ship across process boundaries;
- **index-based** (:func:`kendall_tau_positions`,
  :func:`top_k_overlap_positions`, :func:`count_inversions`,
  :func:`count_inversions_batch`) — over integer permutation arrays,
  the form the vectorized trial kernels
  (:mod:`repro.stability.kernels`) work in: no id lists, no dict
  lookups, inversions counted by array-level merge sorting.  For
  tie-free rankings the three tiers return byte-identical floats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RankingError
from repro.ranking.ranker import Ranking
from repro.stats.correlation import kendall_tau

__all__ = [
    "kendall_tau_rankings",
    "kendall_tau_ids",
    "kendall_tau_positions",
    "kendall_tau_from_discordant",
    "count_inversions",
    "count_inversions_batch",
    "kendall_distance",
    "spearman_footrule",
    "rank_displacement",
    "top_k_overlap",
    "top_k_overlap_ids",
    "top_k_overlap_positions",
    "top_k_jaccard",
    "rank_biased_overlap",
]


def _common_rank_vectors(a: Ranking, b: Ranking) -> tuple[list[int], list[int]]:
    """Ranks in ``a`` and ``b`` of the items present in both (by item id)."""
    return _common_ranks_from_ids(a.item_ids(), b.item_ids())


def _common_ranks_from_ids(ids_a, ids_b) -> tuple[list[int], list[int]]:
    """Rank vectors over the common items of two id sequences."""
    if len(set(ids_a)) != len(ids_a) or len(set(ids_b)) != len(ids_b):
        raise RankingError("rank comparison requires unique item ids")
    pos_b = {item: i + 1 for i, item in enumerate(ids_b)}
    ranks_a: list[int] = []
    ranks_b: list[int] = []
    for i, item in enumerate(ids_a):
        if item in pos_b:
            ranks_a.append(i + 1)
            ranks_b.append(pos_b[item])
    if len(ranks_a) < 2:
        raise RankingError(
            f"rank comparison needs at least 2 common items, found {len(ranks_a)}"
        )
    return ranks_a, ranks_b


def kendall_tau_rankings(a: Ranking, b: Ranking) -> float:
    """Kendall tau-b between two rankings over their common items.

    1.0 means identical order, -1.0 fully reversed.
    """
    return kendall_tau_ids(a.item_ids(), b.item_ids())


def kendall_tau_ids(ids_a, ids_b) -> float:
    """:func:`kendall_tau_rankings` over plain item-id sequences.

    The id-sequence form is what the Monte-Carlo trial payloads carry
    across process boundaries — a baseline's ids pickle in bytes where
    its full :class:`Ranking` would re-ship the whole table.
    """
    ranks_a, ranks_b = _common_ranks_from_ids(ids_a, ids_b)
    return kendall_tau(ranks_a, ranks_b)


def kendall_distance(a: Ranking, b: Ranking, normalized: bool = True) -> float:
    """Number of discordant pairs between the two rankings.

    With ``normalized=True`` the count is divided by the number of item
    pairs, giving a value in [0, 1] (0 = identical order).
    """
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    n = len(ranks_a)
    discordant = 0
    for i in range(n - 1):
        for j in range(i + 1, n):
            if (ranks_a[i] - ranks_a[j]) * (ranks_b[i] - ranks_b[j]) < 0:
                discordant += 1
    if not normalized:
        return float(discordant)
    pairs = n * (n - 1) // 2
    return discordant / pairs


def spearman_footrule(a: Ranking, b: Ranking, normalized: bool = True) -> float:
    """Total absolute rank displacement of common items.

    Normalization divides by the maximum possible footrule distance for
    ``n`` items (``n^2/2`` for even n, ``(n^2-1)/2`` for odd), mapping
    into [0, 1].
    """
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    total = float(sum(abs(x - y) for x, y in zip(ranks_a, ranks_b)))
    if not normalized:
        return total
    n = len(ranks_a)
    max_footrule = (n * n) / 2.0 if n % 2 == 0 else (n * n - 1) / 2.0
    return total / max_footrule


def rank_displacement(a: Ranking, b: Ranking) -> int:
    """The largest rank change of any common item (0 = no item moved)."""
    ranks_a, ranks_b = _common_rank_vectors(a, b)
    return int(max(abs(x - y) for x, y in zip(ranks_a, ranks_b)))


def top_k_overlap(a: Ranking, b: Ranking, k: int) -> float:
    """Fraction of ``a``'s top-k that also appears in ``b``'s top-k."""
    return top_k_overlap_ids(a.item_ids(), b.item_ids(), k)


def top_k_overlap_ids(ids_a, ids_b, k: int) -> float:
    """:func:`top_k_overlap` over plain item-id sequences."""
    if k <= 0:
        raise RankingError(f"top_k_overlap needs k >= 1, got {k}")
    top_a = set(ids_a[:k])
    top_b = set(ids_b[:k])
    if not top_a:
        return 0.0
    return len(top_a & top_b) / len(top_a)


def count_inversions_batch(sequences: np.ndarray) -> np.ndarray:
    """Inversions of each row of a ``(trials, n)`` integer array.

    An inversion is a pair ``i < j`` with ``row[i] > row[j]`` (ties are
    not inversions).  For a permutation row holding, per baseline
    position, the item's position in a re-ranking, the inversion count
    is exactly the discordant-pair count between the two rankings —
    which is why this is the workhorse of the vectorized stability
    kernels.

    The count is a bottom-up merge sort over *all rows at once*: each
    level sorts within blocks via one offset-keyed stable argsort and
    reads the cross-block inversions off the merged positions, so the
    total work is ``O(trials * n log^2 n)`` array operations with no
    per-element Python.
    """
    arr = np.asarray(sequences)
    if arr.ndim != 2:
        raise RankingError(
            f"count_inversions_batch expects a (trials, n) array, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise RankingError(
            f"count_inversions_batch expects integer sequences, got dtype {arr.dtype}"
        )
    trials, n = arr.shape
    if n < 2:
        return np.zeros(trials, dtype=np.int64)
    # the offset keys and padding below only need values in [0, n) —
    # true already for the kernels' permutation rows; anything else is
    # rank-transformed per row (ties keep equal codes)
    if arr.size and int(arr.min()) >= 0 and int(arr.max()) < n:
        codes = arr.astype(np.int64, copy=False)
    else:
        codes = np.empty((trials, n), dtype=np.int64)
        for row in range(trials):
            _, codes[row] = np.unique(arr[row], return_inverse=True)
    # pad to a power of two with a value above every code; pads form a
    # suffix and stay one after sorting, so they never add inversions
    size = 1 << (n - 1).bit_length()
    if size > n:
        working = np.concatenate(
            [codes, np.full((trials, size - n), n, dtype=np.int64)], axis=1
        )
    else:
        working = codes
    inversions = np.zeros(trials, dtype=np.int64)
    positions = np.arange(size)
    stride = n + 1  # exceeds every code, keeping block key ranges disjoint
    width = 1
    while width < size:
        span = 2 * width
        block = positions // span
        order = np.argsort(working + (block * stride)[None, :], axis=1, kind="stable")
        merged = np.empty_like(order)
        np.put_along_axis(
            merged, order, np.broadcast_to(positions[None, :], (trials, size)), axis=1
        )
        # for the element at right-half position p (index i within its
        # half), merged[p] - block_start - i counts the left-half values
        # <= it; the remainder of the left half is inverted with it
        right = (positions % span) >= width
        index_in_right = (positions % span)[right] - width
        below = merged[:, right] - (block * span)[right][None, :] - index_in_right[None, :]
        inversions += (width - below).sum(axis=1)
        working = np.take_along_axis(working, order, axis=1)
        width = span
    return inversions


def count_inversions(sequence) -> int:
    """Number of out-of-order pairs in one integer sequence."""
    arr = np.asarray(sequence)
    if arr.ndim != 1:
        raise RankingError(
            f"count_inversions expects a 1-d sequence, got shape {arr.shape}"
        )
    if arr.size < 2:
        return 0
    return int(count_inversions_batch(arr[None, :])[0])


def kendall_tau_from_discordant(discordant: int, n: int) -> float:
    """Kendall tau of two tie-free rankings from their discordant-pair count.

    Byte-identical to :func:`~repro.stats.correlation.kendall_tau` on
    the corresponding rank vectors: the same integer counts feed the
    same float expressions, so the vectorized stability kernels can
    replace the pairwise enumeration without changing a single bit of
    the label.
    """
    if n < 2:
        raise RankingError(
            f"rank comparison needs at least 2 common items, found {n}"
        )
    pairs = n * (n - 1) // 2
    if not 0 <= discordant <= pairs:
        raise RankingError(
            f"discordant count {discordant} outside [0, {pairs}] for n={n}"
        )
    concordant = pairs - discordant
    denom = float(np.sqrt((concordant + discordant) * (concordant + discordant)))
    if denom == 0.0:
        return 0.0
    tau = (concordant - discordant) / denom
    return max(-1.0, min(1.0, tau))


def kendall_tau_positions(positions) -> float:
    """:func:`kendall_tau_ids` when the re-ranked positions are in hand.

    ``positions[i]`` is the position (0- or 1-based — inversions do not
    care) that the baseline's rank-``i`` item took in the re-ranking.
    This is the index-based form the vectorized kernels produce straight
    from argsorted score matrices, skipping id lists and dict lookups.
    """
    arr = np.asarray(positions)
    if arr.ndim != 1:
        raise RankingError(
            f"kendall_tau_positions expects a 1-d sequence, got shape {arr.shape}"
        )
    if np.unique(arr).size != arr.size:
        raise RankingError("rank comparison requires distinct positions")
    return kendall_tau_from_discordant(count_inversions(arr), int(arr.size))


def top_k_overlap_positions(positions, k: int) -> float:
    """:func:`top_k_overlap_ids` over a 0-based position vector.

    ``positions[i]`` is the 0-based re-ranked position of the baseline's
    ``i``-th item; an item stayed in the top-k exactly when its position
    is below ``k``.
    """
    if k <= 0:
        raise RankingError(f"top_k_overlap needs k >= 1, got {k}")
    arr = np.asarray(positions)
    kept = min(k, arr.size)
    if kept == 0:
        return 0.0
    return int((arr[:kept] < k).sum()) / kept


def rank_biased_overlap(a: Ranking, b: Ranking, p: float = 0.9) -> float:
    """Rank-biased overlap (RBO) of two rankings, in [0, 1].

    Webber et al.'s top-weighted agreement measure: the expected overlap
    of the two prefixes at a geometrically distributed depth.  ``p``
    controls top-weightedness (0.9 puts ~86% of the weight on the first
    10 ranks).  This is the extrapolated ("RBO_ext") point estimate over
    the evaluated depths, which equals the exact RBO when both rankings
    contain the same items.

    Unlike the Kendall metrics, RBO is defined for rankings over
    different item sets, which is what the perturbation-stability view
    needs when comparing top fragments.
    """
    if not 0.0 < p < 1.0:
        raise RankingError(f"RBO persistence p must be inside (0, 1), got {p}")
    ids_a = a.item_ids()
    ids_b = b.item_ids()
    if len(set(ids_a)) != len(ids_a) or len(set(ids_b)) != len(ids_b):
        raise RankingError("rank comparison requires unique item ids")
    depth = min(len(ids_a), len(ids_b))
    if depth == 0:
        raise RankingError("RBO needs non-empty rankings")
    seen_a: set = set()
    seen_b: set = set()
    overlap = 0
    weighted_sum = 0.0
    for d in range(1, depth + 1):
        item_a, item_b = ids_a[d - 1], ids_b[d - 1]
        if item_a == item_b:
            overlap += 1
        else:
            if item_a in seen_b:
                overlap += 1
            if item_b in seen_a:
                overlap += 1
        seen_a.add(item_a)
        seen_b.add(item_b)
        weighted_sum += (overlap / d) * p ** (d - 1)
    agreement_at_depth = overlap / depth
    # extrapolate the tail assuming agreement stays at the final level
    return float(
        (1 - p) * weighted_sum + agreement_at_depth * p**depth
    )


def top_k_jaccard(a: Ranking, b: Ranking, k: int) -> float:
    """Jaccard similarity of the two top-k sets."""
    if k <= 0:
        raise RankingError(f"top_k_jaccard needs k >= 1, got {k}")
    top_a = set(a.item_ids()[:k])
    top_b = set(b.item_ids()[:k])
    union = top_a | top_b
    if not union:
        return 0.0
    return len(top_a & top_b) / len(union)
