"""Scoring functions: how a row becomes a score.

The demo's scoring design view (paper Figure 3) has the user pick
numeric attributes and assign each a weight; the score of an item is
the weighted sum of its (optionally normalized) attribute values.
:class:`LinearScoringFunction` is that object.  The abstract
:class:`ScoringFunction` base leaves room for non-linear rankers — the
label machinery only ever calls :meth:`score_table`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

import numpy as np

from repro.errors import ScoringError, WeightError
from repro.tabular.column import NumericColumn
from repro.tabular.table import Table

__all__ = ["ScoringFunction", "LinearScoringFunction"]


class ScoringFunction:
    """Abstract scorer: maps a table to one float score per row."""

    #: name shown in the Recipe widget
    name: str = "scoring function"

    def score_table(self, table: Table) -> np.ndarray:
        """Return a float64 score array aligned with the table's rows."""
        raise NotImplementedError

    def attributes(self) -> tuple[str, ...]:
        """The attribute names this scorer reads (for the Recipe widget)."""
        raise NotImplementedError

    def describe(self) -> dict[str, object]:
        """Machine-readable description for label serialization."""
        return {"name": self.name, "attributes": list(self.attributes())}


class LinearScoringFunction(ScoringFunction):
    """A weighted sum of numeric attributes.

    Parameters
    ----------
    weights:
        ``{attribute: weight}``.  Weights must be finite and not all
        zero; negative weights are allowed (an attribute can count
        against an item, e.g. a risk score in a desirability ranking).
    missing_policy:
        How to score rows with a missing attribute value:
        ``"zero"`` treats missing as 0 (the demo tool's behaviour),
        ``"propagate"`` scores the row NaN so it sorts to the bottom.

    Example
    -------
    >>> from repro.tabular import Table
    >>> f = LinearScoringFunction({"a": 2.0, "b": 1.0})
    >>> f.score_table(Table.from_dict({"a": [1.0], "b": [3.0]})).tolist()
    [5.0]
    """

    name = "linear scoring function"
    _POLICIES = ("zero", "propagate")

    def __init__(self, weights: Mapping[str, float], missing_policy: str = "zero"):
        if not weights:
            raise WeightError("a linear scoring function needs at least one attribute")
        clean: dict[str, float] = {}
        for attr, weight in weights.items():
            if not isinstance(attr, str) or not attr:
                raise WeightError(f"attribute name must be a non-empty string, got {attr!r}")
            w = float(weight)
            if not math.isfinite(w):
                raise WeightError(f"weight for {attr!r} must be finite, got {w!r}")
            clean[attr] = w
        if all(w == 0.0 for w in clean.values()):
            raise WeightError("all weights are zero; the ranking would be arbitrary")
        if missing_policy not in self._POLICIES:
            raise ScoringError(
                f"missing_policy must be one of {self._POLICIES}, got {missing_policy!r}"
            )
        self._weights = clean
        self._missing_policy = missing_policy

    # -- introspection ---------------------------------------------------------

    @property
    def weights(self) -> dict[str, float]:
        """A copy of the weight mapping."""
        return dict(self._weights)

    @property
    def missing_policy(self) -> str:
        """The configured missing-value policy."""
        return self._missing_policy

    def attributes(self) -> tuple[str, ...]:
        return tuple(self._weights)

    def normalized_weights(self) -> dict[str, float]:
        """Weights rescaled so absolute values sum to 1 (Recipe display)."""
        total = sum(abs(w) for w in self._weights.values())
        return {a: w / total for a, w in self._weights.items()}

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "attributes": list(self._weights),
            "weights": dict(self._weights),
            "normalized_weights": self.normalized_weights(),
            "missing_policy": self._missing_policy,
        }

    # -- scoring ------------------------------------------------------------------

    def score_table(self, table: Table) -> np.ndarray:
        """Weighted sum per row; see ``missing_policy`` for NaN handling."""
        table.require_rows(1)
        total = np.zeros(table.num_rows, dtype=np.float64)
        any_missing = np.zeros(table.num_rows, dtype=bool)
        for attr, weight in self._weights.items():
            column: NumericColumn = table.numeric_column(attr)
            values = column.values.copy()
            missing = np.isnan(values)
            any_missing |= missing
            values[missing] = 0.0
            total += weight * values
        if self._missing_policy == "propagate":
            total[any_missing] = np.nan
        return total

    # -- derivation -----------------------------------------------------------------

    def with_weights(self, weights: Mapping[str, float]) -> "LinearScoringFunction":
        """A new scorer with different weights, same policy."""
        return LinearScoringFunction(weights, missing_policy=self._missing_policy)

    def perturbed(self, deltas: Mapping[str, float]) -> "LinearScoringFunction":
        """A new scorer with ``deltas`` added to the matching weights.

        Unknown attributes in ``deltas`` raise — perturbation code must
        not silently invent new scoring attributes.
        """
        unknown = set(deltas) - set(self._weights)
        if unknown:
            raise WeightError(
                f"perturbed() got unknown attribute(s): {', '.join(sorted(unknown))}"
            )
        new = {a: w + float(deltas.get(a, 0.0)) for a, w in self._weights.items()}
        return LinearScoringFunction(new, missing_policy=self._missing_policy)

    def __repr__(self) -> str:
        terms = " + ".join(f"{w:g}*{a}" for a, w in self._weights.items())
        return f"LinearScoringFunction({terms})"
