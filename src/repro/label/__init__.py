"""Nutritional-label assembly and rendering (the paper's contribution).

"Ranking Facts is made up of a collection of visual widgets.  Each
widget addresses an essential aspect of transparency and
interpretability" (paper §1).  Here:

- :mod:`repro.label.widgets` — the six widget payloads (Recipe,
  Ingredients, Stability, Fairness, Diversity) plus the
  :class:`NutritionalLabel` that binds them;
- :mod:`repro.label.builder` — :class:`RankingFactsBuilder`: configure
  dataset, scoring function, sensitive and diversity attributes, then
  ``build()`` the label in one call;
- :mod:`repro.label.render_text` / ``render_html`` / ``render_json`` —
  the three output formats (terminal, browser, machine).
"""

from repro.label.builder import RankingFacts, RankingFactsBuilder
from repro.label.compare import LabelDiff, VerdictChange, diff_labels
from repro.label.render_html import render_html
from repro.label.render_json import label_from_json, render_json
from repro.label.render_markdown import render_markdown
from repro.label.render_text import render_text
from repro.label.widgets import (
    DiversityWidget,
    FairnessWidget,
    IngredientsWidget,
    NutritionalLabel,
    RecipeWidget,
    StabilityWidget,
    WidgetStatistics,
)

__all__ = [
    "RecipeWidget",
    "IngredientsWidget",
    "StabilityWidget",
    "FairnessWidget",
    "DiversityWidget",
    "WidgetStatistics",
    "NutritionalLabel",
    "RankingFactsBuilder",
    "RankingFacts",
    "render_text",
    "render_html",
    "render_json",
    "render_markdown",
    "label_from_json",
    "diff_labels",
    "LabelDiff",
    "VerdictChange",
]
