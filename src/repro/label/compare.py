"""Comparing two nutritional labels: what did a recipe change *do*?

The demo's loop is iterative — the user "will then either refine it, or
go on to generate Ranking Facts" (paper §3) — and the mitigation module
exists to propose refinements.  A label diff is the missing feedback
artifact: given the labels before and after a change, it reports every
verdict flip, the stability movement, and the per-category diversity
shifts, so the effect of a refinement is itself transparent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LabelError
from repro.label.widgets import NutritionalLabel

__all__ = ["VerdictChange", "LabelDiff", "diff_labels"]


@dataclass(frozen=True)
class VerdictChange:
    """One fairness verdict that differs between the two labels."""

    group: str
    measure: str
    before: str
    after: str

    @property
    def improved(self) -> bool:
        """True when the change is unfair -> fair."""
        return self.before == "unfair" and self.after == "fair"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "group": self.group,
            "measure": self.measure,
            "before": self.before,
            "after": self.after,
            "improved": self.improved,
        }


@dataclass(frozen=True)
class LabelDiff:
    """Structured difference between two labels of the same dataset.

    Attributes
    ----------
    weight_changes:
        ``{attribute: (before, after)}`` for every attribute whose
        weight differs (attributes present in only one recipe appear
        with ``None`` on the missing side).
    verdict_changes:
        Fairness verdicts that flipped.
    stability_before / stability_after:
        The two overview stability scores.
    diversity_shifts:
        ``{attribute: {category: delta}}`` — change in top-k share per
        category, for attributes present in both labels.
    """

    weight_changes: dict[str, tuple[float | None, float | None]]
    verdict_changes: tuple[VerdictChange, ...]
    stability_before: float
    stability_after: float
    stability_verdict_before: str
    stability_verdict_after: str
    diversity_shifts: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def fairness_improved(self) -> bool:
        """True when at least one verdict flipped to fair and none regressed."""
        if not self.verdict_changes:
            return False
        return all(change.improved for change in self.verdict_changes)

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-change summary."""
        lines: list[str] = []
        for attribute, (before, after) in self.weight_changes.items():
            lines.append(
                f"weight {attribute}: "
                f"{'-' if before is None else f'{before:g}'} -> "
                f"{'-' if after is None else f'{after:g}'}"
            )
        for change in self.verdict_changes:
            lines.append(
                f"fairness {change.measure} on {change.group}: "
                f"{change.before} -> {change.after}"
            )
        if self.stability_verdict_before != self.stability_verdict_after:
            lines.append(
                f"stability: {self.stability_verdict_before} -> "
                f"{self.stability_verdict_after}"
            )
        for attribute, shifts in self.diversity_shifts.items():
            for category, delta in shifts.items():
                if abs(delta) >= 0.005:
                    lines.append(
                        f"diversity {attribute}={category}: top-k share "
                        f"{'+' if delta >= 0 else ''}{delta:.1%}"
                    )
        return lines

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "weight_changes": {
                a: list(pair) for a, pair in self.weight_changes.items()
            },
            "verdict_changes": [c.as_dict() for c in self.verdict_changes],
            "stability_before": self.stability_before,
            "stability_after": self.stability_after,
            "stability_verdict_before": self.stability_verdict_before,
            "stability_verdict_after": self.stability_verdict_after,
            "diversity_shifts": {
                a: dict(shifts) for a, shifts in self.diversity_shifts.items()
            },
        }


def diff_labels(before: NutritionalLabel, after: NutritionalLabel) -> LabelDiff:
    """Structured diff of two labels over the same dataset.

    Raises
    ------
    LabelError
        When the labels describe different datasets or different k —
        those diffs would compare incomparable widgets.
    """
    if before.dataset_name != after.dataset_name:
        raise LabelError(
            f"cannot diff labels of different datasets "
            f"({before.dataset_name!r} vs {after.dataset_name!r})"
        )
    if before.k != after.k:
        raise LabelError(
            f"cannot diff labels with different k ({before.k} vs {after.k})"
        )

    weight_changes: dict[str, tuple[float | None, float | None]] = {}
    for attribute in {**before.recipe.weights, **after.recipe.weights}:
        b = before.recipe.weights.get(attribute)
        a = after.recipe.weights.get(attribute)
        if b != a:
            weight_changes[attribute] = (b, a)

    before_grid = before.fairness.verdict_grid()
    after_grid = after.fairness.verdict_grid()
    verdict_changes = []
    for group in sorted(set(before_grid) & set(after_grid)):
        for measure in before_grid[group]:
            if measure not in after_grid[group]:
                continue
            old = before_grid[group][measure]
            new = after_grid[group][measure]
            if old != new:
                verdict_changes.append(
                    VerdictChange(
                        group=group, measure=measure, before=old, after=new
                    )
                )

    before_diversity = {r.attribute: r for r in before.diversity.reports}
    after_diversity = {r.attribute: r for r in after.diversity.reports}
    diversity_shifts: dict[str, dict[str, float]] = {}
    for attribute in set(before_diversity) & set(after_diversity):
        old = before_diversity[attribute].top_k.proportions
        new = after_diversity[attribute].top_k.proportions
        shifts = {
            category: new.get(category, 0.0) - share
            for category, share in old.items()
        }
        if any(abs(v) > 1e-12 for v in shifts.values()):
            diversity_shifts[attribute] = shifts

    return LabelDiff(
        weight_changes=weight_changes,
        verdict_changes=tuple(verdict_changes),
        stability_before=before.stability.stability_score,
        stability_after=after.stability.stability_score,
        stability_verdict_before=before.stability.verdict,
        stability_verdict_after=after.stability.verdict,
        diversity_shifts=diversity_shifts,
    )
