"""HTML rendering: the label as a self-contained web page.

Dependency-free string templating (inline CSS, no JavaScript needed for
the static view).  The demo web server serves this for ``/label.html``;
the layout follows Figure 1: a grid of colored widget cards, each with
its overview on top and its detail table below.
"""

from __future__ import annotations

import html

from repro.label.widgets import NutritionalLabel, WidgetStatistics

__all__ = ["render_html"]

_PAGE_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; background: #f5f5f2;
       margin: 2em; color: #222; }
h1 { text-align: center; letter-spacing: 0.08em; }
.meta { text-align: center; color: #555; margin-bottom: 1.5em; }
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(330px, 1fr));
        gap: 1em; max-width: 1100px; margin: 0 auto; }
.widget { border-radius: 8px; padding: 1em; background: #fff;
          box-shadow: 0 1px 3px rgba(0,0,0,0.15); border-top: 6px solid #888; }
.widget.recipe { border-top-color: #d4a017; }
.widget.ingredients { border-top-color: #2e8b57; }
.widget.stability { border-top-color: #8860d0; }
.widget.fairness { border-top-color: #4682b4; }
.widget.diversity { border-top-color: #cd5c5c; }
.widget h2 { margin-top: 0; font-size: 1.1em; text-transform: uppercase;
             letter-spacing: 0.05em; }
table { border-collapse: collapse; width: 100%; font-size: 0.85em; }
th, td { padding: 0.25em 0.5em; text-align: right; border-bottom: 1px solid #eee; }
th:first-child, td:first-child { text-align: left; }
.fair { color: #2e8b57; font-weight: bold; }
.unfair { color: #c0392b; font-weight: bold; }
.stable { color: #2e8b57; font-weight: bold; }
.unstable { color: #c0392b; font-weight: bold; }
.bar { background: #e8e8e8; height: 10px; border-radius: 5px; overflow: hidden; }
.bar > span { display: block; height: 100%; background: #4682b4; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:
        return "n/a"
    return f"{value:.{digits}g}"


def _stats_table(stats: tuple[WidgetStatistics, ...]) -> str:
    rows = ["<table><tr><th>attribute</th><th>slice</th><th>min</th>"
            "<th>median</th><th>max</th></tr>"]
    for stat in stats:
        rows.append(
            f"<tr><td>{_esc(stat.attribute)}</td><td>top-k</td>"
            f"<td>{_fmt(stat.top_k.minimum)}</td><td>{_fmt(stat.top_k.median)}</td>"
            f"<td>{_fmt(stat.top_k.maximum)}</td></tr>"
        )
        rows.append(
            f"<tr><td></td><td>overall</td>"
            f"<td>{_fmt(stat.overall.minimum)}</td><td>{_fmt(stat.overall.median)}</td>"
            f"<td>{_fmt(stat.overall.maximum)}</td></tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _recipe_card(label: NutritionalLabel) -> str:
    parts = ['<div class="widget recipe"><h2>Recipe</h2><table>',
             "<tr><th>attribute</th><th>weight</th><th>share</th><th>scaling</th></tr>"]
    for attribute, weight in label.recipe.weights.items():
        share = label.recipe.normalized_weights[attribute]
        scheme = label.recipe.normalization.get(attribute, "identity")
        parts.append(
            f"<tr><td>{_esc(attribute)}</td><td>{weight:g}</td>"
            f"<td>{share:.1%}</td><td>{_esc(scheme)}</td></tr>"
        )
    parts.append("</table>")
    parts.append(_stats_table(label.recipe.statistics))
    parts.append("</div>")
    return "".join(parts)


def _ingredients_card(label: NutritionalLabel) -> str:
    parts = ['<div class="widget ingredients"><h2>Ingredients</h2><table>',
             "<tr><th>attribute</th><th>importance</th><th></th></tr>"]
    for item in label.ingredients.analysis.importances:
        width = int(round(100 * min(1.0, item.importance)))
        parts.append(
            f"<tr><td>{_esc(item.attribute)}</td><td>{item.importance:.3f}</td>"
            f'<td><div class="bar"><span style="width:{width}%"></span></div></td></tr>'
        )
    parts.append("</table>")
    parts.append(_stats_table(label.ingredients.statistics))
    parts.append("</div>")
    return "".join(parts)


def _stability_card(label: NutritionalLabel) -> str:
    report = label.stability.slope_report
    verdict_class = "stable" if report.stable else "unstable"
    parts = [
        '<div class="widget stability"><h2>Stability</h2>',
        f'<p>score {_fmt(label.stability.stability_score)} — '
        f'<span class="{verdict_class}">{report.verdict.upper()}</span></p>',
        "<table><tr><th>segment</th><th>slope</th><th>R&sup2;</th><th>verdict</th></tr>",
        f"<tr><td>top-{report.k}</td><td>{_fmt(report.slope_top_k)}</td>"
        f"<td>{report.fit_top_k.r_squared:.3f}</td>"
        f"<td>{'stable' if report.stable_top_k else 'unstable'}</td></tr>",
        f"<tr><td>overall</td><td>{_fmt(report.slope_overall)}</td>"
        f"<td>{report.fit_overall.r_squared:.3f}</td>"
        f"<td>{'stable' if report.stable_overall else 'unstable'}</td></tr>",
        "</table>",
        f"<p>instability threshold: {report.threshold:g}</p>",
    ]
    if label.stability.gaps:
        parts.append("<table><tr><th>segment</th><th>min gap</th>"
                     "<th>median gap</th><th>swap margin</th></tr>")
        for segment, gap in label.stability.gaps.items():
            parts.append(
                f"<tr><td>{_esc(segment)}</td><td>{_fmt(gap.min_gap)}</td>"
                f"<td>{_fmt(gap.median_gap)}</td>"
                f"<td>{_fmt(gap.swap_margin)}</td></tr>"
            )
        parts.append("</table>")
    for name, outcomes in (
        ("weight perturbation", label.stability.perturbation),
        ("data uncertainty", label.stability.uncertainty),
    ):
        if outcomes:
            parts.append(f"<table><tr><th>{_esc(name)} &epsilon;</th>"
                         "<th>P[top-k changes]</th><th>mean &tau;</th></tr>")
            for outcome in outcomes:
                parts.append(
                    f"<tr><td>{outcome.epsilon:g}</td>"
                    f"<td>{outcome.change_probability:.2f}</td>"
                    f"<td>{outcome.mean_kendall_tau:.3f}</td></tr>"
                )
            parts.append("</table>")
    if label.stability.per_attribute:
        parts.append("<table><tr><th>attribute</th><th>weight</th>"
                     "<th>critical change</th></tr>")
        for result in label.stability.per_attribute:
            parts.append(
                f"<tr><td>{_esc(result.attribute)}</td><td>{result.weight:g}</td>"
                f"<td>{result.critical_epsilon:.0%}</td></tr>"
            )
        parts.append("</table>")
    parts.append("</div>")
    return "".join(parts)


def _fairness_card(label: NutritionalLabel) -> str:
    grid = label.fairness.verdict_grid()
    measures: list[str] = []
    for verdicts in grid.values():
        for measure in verdicts:
            if measure not in measures:
                measures.append(measure)
    parts = ['<div class="widget fairness"><h2>Fairness</h2><table><tr><th>group</th>']
    parts += [f"<th>{_esc(m)}</th>" for m in measures]
    parts.append("</tr>")
    for group, verdicts in grid.items():
        parts.append(f"<tr><td>{_esc(group)}</td>")
        for measure in measures:
            verdict = verdicts.get(measure, "-")
            parts.append(f'<td class="{verdict}">{_esc(verdict)}</td>')
        parts.append("</tr>")
    parts.append("</table><table><tr><th>measure</th><th>group</th><th>p-value</th>"
                 "<th>&alpha;</th></tr>")
    for result in label.fairness.results:
        parts.append(
            f"<tr><td>{_esc(result.measure)}</td><td>{_esc(result.group_label)}</td>"
            f"<td>{_fmt(result.p_value, 4)}</td><td>{_fmt(result.alpha, 4)}</td></tr>"
        )
    parts.append("</table></div>")
    return "".join(parts)


def _diversity_card(label: NutritionalLabel) -> str:
    parts = ['<div class="widget diversity"><h2>Diversity</h2>']
    for report in label.diversity.reports:
        parts.append(f"<h3>{_esc(report.attribute)}</h3>")
        parts.append(f"<table><tr><th>category</th><th>top-{label.k}</th>"
                     "<th>overall</th></tr>")
        for category, share in report.overall.proportions.items():
            top_share = report.top_k.proportions.get(category, 0.0)
            parts.append(
                f"<tr><td>{_esc(category)}</td><td>{top_share:.1%}</td>"
                f"<td>{share:.1%}</td></tr>"
            )
        parts.append("</table>")
        missing = report.missing_categories()
        if missing:
            parts.append(
                f"<p>missing from top-{label.k}: {_esc(', '.join(missing))}</p>"
            )
    parts.append("</div>")
    return "".join(parts)


def render_html(label: NutritionalLabel) -> str:
    """Render the label as a complete standalone HTML page."""
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>Ranking Facts — {_esc(label.dataset_name)}</title>"
        f"<style>{_PAGE_STYLE}</style></head><body>"
        "<h1>Ranking Facts</h1>"
        f'<p class="meta">{_esc(label.dataset_name)} &middot; '
        f"{label.num_items} items &middot; top-{label.k} &middot; "
        f"{_esc(label.generator)}</p>"
        '<div class="grid">'
        + _recipe_card(label)
        + _ingredients_card(label)
        + _stability_card(label)
        + _fairness_card(label)
        + _diversity_card(label)
        + "</div></body></html>"
    )
