"""Widget payloads: the structured content behind each label section.

Each widget mirrors the paper's overview/detail split: the overview
fields are what Figure 1 shows collapsed; ``detail`` carries what the
expanded view adds (attribute statistics at top-10 and over-all for
Recipe/Ingredients, per-prefix audit trails for Fairness, fitted lines
for Stability).  Widgets are plain frozen dataclasses with
``as_dict()`` so every renderer works from the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diversity.measures import DiversityReport
from repro.fairness.base import FairnessResult
from repro.ingredients.importance import IngredientsAnalysis
from repro.stability.gaps import GapReport
from repro.stability.per_attribute import AttributeStability
from repro.stability.perturbation import PerturbationOutcome
from repro.stability.slope import SlopeStabilityReport
from repro.tabular.summary import ColumnSummary

__all__ = [
    "WidgetStatistics",
    "RecipeWidget",
    "IngredientsWidget",
    "StabilityWidget",
    "FairnessWidget",
    "DiversityWidget",
    "NutritionalLabel",
]


@dataclass(frozen=True)
class WidgetStatistics:
    """One attribute's min/max/median "at the top-10 and over-all".

    The shared detail block of the Recipe and Ingredients widgets
    (paper §2.1).
    """

    attribute: str
    top_k: ColumnSummary
    overall: ColumnSummary

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "top_k": self.top_k.as_dict(),
            "overall": self.overall.as_dict(),
        }


@dataclass(frozen=True)
class RecipeWidget:
    """The ranking methodology as designed: attributes and their weights.

    ``weights`` are the designer's raw weights; ``normalized_weights``
    rescale them to sum (in absolute value) to 1 for display.
    ``normalization`` records how each attribute was preprocessed —
    part of the disclosed recipe.
    """

    scorer_name: str
    weights: dict[str, float]
    normalized_weights: dict[str, float]
    normalization: dict[str, str]
    statistics: tuple[WidgetStatistics, ...]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "scorer": self.scorer_name,
            "weights": dict(self.weights),
            "normalized_weights": dict(self.normalized_weights),
            "normalization": dict(self.normalization),
            "statistics": [s.as_dict() for s in self.statistics],
        }


@dataclass(frozen=True)
class IngredientsWidget:
    """Attributes most material to the outcome, in importance order."""

    analysis: IngredientsAnalysis
    top_n: int
    statistics: tuple[WidgetStatistics, ...]

    def top_attributes(self) -> tuple[str, ...]:
        """The overview list: names of the strongest ingredients."""
        return tuple(item.attribute for item in self.analysis.top(self.top_n))

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "top_n": self.top_n,
            "analysis": self.analysis.as_dict(),
            "statistics": [s.as_dict() for s in self.statistics],
        }


@dataclass(frozen=True)
class StabilityWidget:
    """Stability score plus the Figure-2 detail (and optional Monte-Carlo).

    ``gaps`` carries the adjacent-score-gap analysis (always computed —
    it is the paper's "scores of items in adjacent ranks are close to
    each other" criterion made explicit); ``per_attribute`` the
    single-weight sensitivity results when Monte-Carlo stability is on.
    """

    slope_report: SlopeStabilityReport
    perturbation: tuple[PerturbationOutcome, ...] = ()
    uncertainty: tuple[PerturbationOutcome, ...] = ()
    gaps: dict[str, GapReport] = field(default_factory=dict)
    per_attribute: tuple[AttributeStability, ...] = ()

    @property
    def stability_score(self) -> float:
        """The overview's single number (see the slope report)."""
        return self.slope_report.stability_score

    @property
    def verdict(self) -> str:
        """``"stable"`` or ``"unstable"``."""
        return self.slope_report.verdict

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "stability_score": self.stability_score,
            "verdict": self.verdict,
            "slope": self.slope_report.as_dict(),
            "weight_perturbation": [o.as_dict() for o in self.perturbation],
            "data_uncertainty": [o.as_dict() for o in self.uncertainty],
            "gaps": {name: report.as_dict() for name, report in self.gaps.items()},
            "per_attribute": [a.as_dict() for a in self.per_attribute],
        }


@dataclass(frozen=True)
class FairnessWidget:
    """Fair/unfair verdicts per protected feature per measure."""

    results: tuple[FairnessResult, ...]
    k: int
    alpha: float

    def verdict_grid(self) -> dict[str, dict[str, str]]:
        """``{group: {measure: verdict}}`` — the overview's table."""
        grid: dict[str, dict[str, str]] = {}
        for result in self.results:
            grid.setdefault(result.group_label, {})[result.measure] = result.verdict
        return grid

    def any_unfair(self) -> bool:
        """True when at least one (group, measure) pair flags unfair."""
        return any(not result.fair for result in self.results)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "k": self.k,
            "alpha": self.alpha,
            "results": [r.as_dict() for r in self.results],
            "verdicts": self.verdict_grid(),
        }


@dataclass(frozen=True)
class DiversityWidget:
    """Category proportions, top-k vs over-all, per chosen attribute."""

    reports: tuple[DiversityReport, ...]
    k: int

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "k": self.k,
            "reports": [r.as_dict() for r in self.reports],
        }


@dataclass(frozen=True)
class NutritionalLabel:
    """The complete nutritional label for one ranking.

    This is the object Figure 1 visualizes; the three renderers in this
    subpackage consume it unchanged.
    """

    dataset_name: str
    num_items: int
    k: int
    recipe: RecipeWidget
    ingredients: IngredientsWidget
    stability: StabilityWidget
    fairness: FairnessWidget
    diversity: DiversityWidget
    generator: str = "repro (Ranking Facts reproduction)"
    metadata: dict[str, object] = field(default_factory=dict)

    def widget_names(self) -> tuple[str, ...]:
        """The label's sections, in display order."""
        return ("recipe", "ingredients", "stability", "fairness", "diversity")

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "dataset": self.dataset_name,
            "num_items": self.num_items,
            "k": self.k,
            "generator": self.generator,
            "metadata": dict(self.metadata),
            "recipe": self.recipe.as_dict(),
            "ingredients": self.ingredients.as_dict(),
            "stability": self.stability.as_dict(),
            "fairness": self.fairness.as_dict(),
            "diversity": self.diversity.as_dict(),
        }
