"""The label factory: from table + scoring design to a nutritional label.

:class:`RankingFactsBuilder` is the programmatic equivalent of the
paper's Figure-3 design view: the caller supplies the dataset, the
scoring function, the sensitive attribute(s) and the diversity
attributes, then ``build()`` executes the whole pipeline —
preprocessing, ranking, and all five widget computations — and returns
a :class:`RankingFacts` bundle holding the ranking and its
:class:`~repro.label.widgets.NutritionalLabel`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import LabelError
from repro.diversity.measures import diversity_report
from repro.fairness.base import evaluate_fairness
from repro.ingredients.importance import ingredients as ingredients_analysis
from repro.label.widgets import (
    DiversityWidget,
    FairnessWidget,
    IngredientsWidget,
    NutritionalLabel,
    RecipeWidget,
    StabilityWidget,
    WidgetStatistics,
)
from repro.preprocess.pipeline import NormalizationPlan, TablePreprocessor
from repro.ranking.ranker import Ranking, rank_table
from repro.ranking.scoring import LinearScoringFunction
from repro.stability.gaps import score_gap_analysis
from repro.stability.per_attribute import per_attribute_stability
from repro.stability.perturbation import WeightPerturbationStability
from repro.stability.slope import SlopeStability
from repro.stability.uncertainty import DataUncertaintyStability
from repro.tabular.summary import describe
from repro.tabular.table import Table

if TYPE_CHECKING:
    from repro.engine.backends import TrialBackend

__all__ = ["RankingFactsBuilder", "RankingFacts", "WidgetProgress"]

#: per-widget build callback: ``(widget_name, widget, seconds)``
WidgetProgress = Callable[[str, object, float], None]


@dataclass(frozen=True)
class RankingFacts:
    """The build output: the ranking, the label, and the scored table."""

    ranking: Ranking
    label: NutritionalLabel
    scored_table: Table


class RankingFactsBuilder:
    """Fluent configuration for one nutritional label.

    Example
    -------
    >>> from repro.datasets import cs_departments
    >>> from repro.ranking import LinearScoringFunction
    >>> facts = (
    ...     RankingFactsBuilder(cs_departments(), dataset_name="CS departments")
    ...     .with_id_column("DeptName")
    ...     .with_scoring(LinearScoringFunction(
    ...         {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}))
    ...     .with_normalization(NormalizationPlan.minmax_all(
    ...         ["PubCount", "Faculty", "GRE"]))
    ...     .with_sensitive_attribute("DeptSizeBin")
    ...     .with_diversity_attributes(["DeptSizeBin", "Region"])
    ...     .build()
    ... )
    >>> facts.label.fairness.any_unfair()
    True
    """

    def __init__(self, table: Table, dataset_name: str = "unnamed dataset"):
        table.require_rows(2)
        self._table = table
        self._dataset_name = dataset_name
        self._id_column: str | None = None
        self._scorer: LinearScoringFunction | None = None
        self._plan: NormalizationPlan | None = None
        self._sensitive: list[tuple[str, tuple[str, ...] | None]] = []
        self._diversity_attributes: list[str] = []
        self._k = 10
        self._alpha = 0.05
        self._ingredients_method = "spearman"
        self._slope_threshold = 0.25
        self._monte_carlo_trials = 0  # 0 disables the optional MC stability
        self._monte_carlo_epsilons = (0.05, 0.1, 0.2)
        self._seed = 20180610
        self._backend: "TrialBackend | None" = None

    # -- configuration ---------------------------------------------------------

    def with_id_column(self, name: str) -> "RankingFactsBuilder":
        """Declare which column identifies items."""
        if name not in self._table:
            raise LabelError(f"id column {name!r} not in table")
        self._id_column = name
        return self

    def with_scoring(self, scorer: LinearScoringFunction) -> "RankingFactsBuilder":
        """Set the scoring function (the Recipe)."""
        self._scorer = scorer
        return self

    def with_normalization(self, plan: NormalizationPlan) -> "RankingFactsBuilder":
        """Set the preprocessing plan (Figure 3's checkbox).

        When omitted, scoring attributes are min-max normalized — the
        demo tool's default.  Pass ``NormalizationPlan.raw()`` to rank
        on raw values.
        """
        self._plan = plan
        return self

    def with_sensitive_attribute(
        self, attribute: str, categories: Sequence[str] | None = None
    ) -> "RankingFactsBuilder":
        """Add a sensitive attribute for the Fairness widget.

        Ranking Facts evaluates "fairness with respect to every value in
        the domain of this attribute" (paper §3); restrict with explicit
        ``categories`` if needed.  May be called multiple times.
        """
        self._table.categorical_column(attribute)  # raise early
        self._sensitive.append(
            (attribute, tuple(categories) if categories is not None else None)
        )
        return self

    def with_diversity_attributes(
        self, attributes: Sequence[str]
    ) -> "RankingFactsBuilder":
        """Choose the categorical attributes the Diversity widget shows."""
        for attribute in attributes:
            self._table.categorical_column(attribute)  # raise early
        self._diversity_attributes = list(attributes)
        return self

    def with_top_k(self, k: int) -> "RankingFactsBuilder":
        """Headline prefix size for every widget (default 10)."""
        if k < 2:
            raise LabelError(f"top-k must be >= 2, got {k}")
        self._k = k
        return self

    def with_alpha(self, alpha: float) -> "RankingFactsBuilder":
        """Significance level for the fairness verdicts (default 0.05)."""
        if not 0.0 < alpha < 1.0:
            raise LabelError(f"alpha must be in (0, 1), got {alpha}")
        self._alpha = alpha
        return self

    def with_ingredients_method(self, method: str) -> "RankingFactsBuilder":
        """``"spearman"`` (default) or ``"linear-model"`` importance."""
        if method not in ("spearman", "linear-model"):
            raise LabelError(
                f"ingredients method must be 'spearman' or 'linear-model', got {method!r}"
            )
        self._ingredients_method = method
        return self

    def with_slope_threshold(self, threshold: float) -> "RankingFactsBuilder":
        """Instability threshold for the slope fit (default 0.25)."""
        if threshold <= 0.0:
            raise LabelError(f"slope threshold must be positive, got {threshold}")
        self._slope_threshold = threshold
        return self

    def with_monte_carlo_stability(
        self, trials: int = 30, epsilons: Sequence[float] = (0.05, 0.1, 0.2)
    ) -> "RankingFactsBuilder":
        """Enable the optional perturbation/uncertainty stability detail.

        Off by default: the Monte-Carlo loop re-ranks ``trials`` times
        per epsilon, which is the one expensive part of a label.
        """
        if trials < 1:
            raise LabelError(f"trials must be >= 1, got {trials}")
        if not epsilons:
            raise LabelError("need at least one epsilon")
        self._monte_carlo_trials = trials
        self._monte_carlo_epsilons = tuple(float(e) for e in epsilons)
        return self

    def with_seed(self, seed: int) -> "RankingFactsBuilder":
        """Seed for the Monte-Carlo stability estimators."""
        self._seed = seed
        return self

    def with_executor(self, executor: Executor | None) -> "RankingFactsBuilder":
        """Fan the Monte-Carlo stability trials out over ``executor``.

        The estimators use one RNG stream per trial, so the parallel
        label is bit-identical to the serial one for equal seeds.
        ``None`` (the default) keeps the trials on the calling thread.
        Prefer :meth:`with_trial_backend`, which can also cross process
        boundaries; this wrapper remains for caller-owned thread pools.
        """
        if executor is None:
            self._backend = None
            return self
        from repro.engine.backends import ExecutorTrialBackend

        self._backend = ExecutorTrialBackend(executor)
        return self

    def with_trial_backend(
        self, backend: "TrialBackend | None"
    ) -> "RankingFactsBuilder":
        """Run the Monte-Carlo stability trials on ``backend``.

        Serial, thread, and process backends all produce byte-identical
        labels for equal seeds (per-trial RNG streams + ordered
        reassembly).  ``None`` keeps the trials on the calling thread.
        """
        self._backend = backend
        return self

    # -- build ------------------------------------------------------------------

    def _require_configured(self) -> LinearScoringFunction:
        if self._scorer is None:
            raise LabelError("no scoring function configured; call with_scoring()")
        if not self._sensitive:
            raise LabelError(
                "at least one sensitive attribute must be chosen "
                "(paper §3); call with_sensitive_attribute()"
            )
        return self._scorer

    def _statistics_for(
        self, ranking: Ranking, attributes: Sequence[str]
    ) -> tuple[WidgetStatistics, ...]:
        top = ranking.top_k(min(self._k, ranking.size))
        stats = []
        for name in attributes:
            stats.append(
                WidgetStatistics(
                    attribute=name,
                    top_k=describe(top.table.column(name)),
                    overall=describe(ranking.table.column(name)),
                )
            )
        return tuple(stats)

    def build(self, progress: "WidgetProgress | None" = None) -> RankingFacts:
        """Run the full pipeline and assemble the label.

        ``progress``, when given, is called once per widget — **as the
        widget finishes** — with ``(name, widget, seconds)``.  Widgets
        are computed cheapest-first (recipe, ingredients, fairness,
        diversity, then the optionally Monte-Carlo-heavy stability), so
        a streaming consumer sees most of the label while the trial
        loop is still running.  Computation order does not affect the
        label: every widget reads only the shared ranking, and the
        assembled :class:`NutritionalLabel` is identical — same bytes,
        same fingerprint — with or without a callback.  The callback
        runs on the build thread and must not raise (wrap it if the
        consumer is fallible).
        """
        scorer = self._require_configured()

        plan = self._plan
        if plan is None:
            plan = NormalizationPlan.minmax_all(scorer.attributes())
        preprocessor = TablePreprocessor(plan)
        prepared = preprocessor.fit_transform(self._table)

        ranking = rank_table(prepared, scorer, self._id_column)

        def emit(name: str, widget, started: float) -> None:
            if progress is not None:
                progress(name, widget, time.perf_counter() - started)

        started = time.perf_counter()
        recipe = RecipeWidget(
            scorer_name=scorer.name,
            weights=scorer.weights,
            normalized_weights=scorer.normalized_weights(),
            normalization={
                attr: plan.scheme_for(attr) for attr in scorer.attributes()
            },
            statistics=self._statistics_for(ranking, scorer.attributes()),
        )
        emit("recipe", recipe, started)

        started = time.perf_counter()
        analysis = ingredients_analysis(ranking, method=self._ingredients_method)
        top_names = [item.attribute for item in analysis.top(3)]
        ingredients_widget = IngredientsWidget(
            analysis=analysis,
            top_n=3,
            statistics=self._statistics_for(ranking, top_names),
        )
        emit("ingredients", ingredients_widget, started)

        started = time.perf_counter()
        fairness_results = []
        for attribute, categories in self._sensitive:
            fairness_results.extend(
                evaluate_fairness(
                    ranking, attribute, categories=categories,
                    k=self._k, alpha=self._alpha,
                )
            )
        fairness_widget = FairnessWidget(
            results=tuple(fairness_results), k=self._k, alpha=self._alpha
        )
        emit("fairness", fairness_widget, started)

        started = time.perf_counter()
        diversity_attrs = self._diversity_attributes or [
            attr for attr, _ in self._sensitive
        ]
        diversity_widget = DiversityWidget(
            reports=tuple(diversity_report(ranking, diversity_attrs, k=self._k)),
            k=self._k,
        )
        emit("diversity", diversity_widget, started)

        started = time.perf_counter()
        slope_report = SlopeStability(
            k=self._k, threshold=self._slope_threshold
        ).assess(ranking)
        gap_reports = score_gap_analysis(ranking, k=self._k)
        perturbation_outcomes = ()
        uncertainty_outcomes = ()
        attribute_results = ()
        if self._monte_carlo_trials > 0 and self._id_column is not None:
            wps = WeightPerturbationStability(
                prepared, scorer, self._id_column,
                k=self._k, trials=self._monte_carlo_trials, seed=self._seed,
                backend=self._backend,
            )
            perturbation_outcomes = tuple(
                wps.assess_at(eps) for eps in self._monte_carlo_epsilons
            )
            dus = DataUncertaintyStability(
                prepared, scorer, self._id_column,
                k=self._k, trials=self._monte_carlo_trials, seed=self._seed,
                backend=self._backend,
            )
            uncertainty_outcomes = tuple(
                dus.assess_at(eps) for eps in self._monte_carlo_epsilons
            )
            attribute_results = tuple(
                per_attribute_stability(
                    prepared, scorer, self._id_column,
                    k=self._k, trials=self._monte_carlo_trials, seed=self._seed,
                    backend=self._backend,
                )
            )
        stability_widget = StabilityWidget(
            slope_report=slope_report,
            perturbation=perturbation_outcomes,
            uncertainty=uncertainty_outcomes,
            gaps=gap_reports,
            per_attribute=attribute_results,
        )
        emit("stability", stability_widget, started)

        label = NutritionalLabel(
            dataset_name=self._dataset_name,
            num_items=ranking.size,
            k=self._k,
            recipe=recipe,
            ingredients=ingredients_widget,
            stability=stability_widget,
            fairness=fairness_widget,
            diversity=diversity_widget,
            metadata={
                "id_column": self._id_column,
                "alpha": self._alpha,
                "ingredients_method": self._ingredients_method,
                "normalization_params": preprocessor.fitted_params(),
            },
        )
        return RankingFacts(ranking=ranking, label=label, scored_table=prepared)
