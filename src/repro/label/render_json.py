"""JSON rendering of nutritional labels.

The machine-readable output format: everything a widget shows, exactly
as structured by ``as_dict()``.  The web server and the CLI's
``--format json`` both emit this.
"""

from __future__ import annotations

import json
import math

from repro.errors import LabelError
from repro.label.widgets import NutritionalLabel

__all__ = ["render_json", "label_from_json", "json_safe"]

_REQUIRED_KEYS = (
    "dataset",
    "num_items",
    "k",
    "recipe",
    "ingredients",
    "stability",
    "fairness",
    "diversity",
)


def _sanitize(value):
    """Replace non-finite floats: JSON has no NaN/Infinity literal."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def json_safe(value):
    """A strictly-JSON copy of ``value`` (non-finite floats → ``null``).

    The same sanitation :func:`render_json` applies to whole labels,
    exposed for callers serializing label *fragments* — the streaming
    protocol's per-widget event payloads.
    """
    return _sanitize(value)


def render_json(label: NutritionalLabel, indent: int | None = 2) -> str:
    """Serialize a label to a JSON string.

    Non-finite floats (possible in summaries of empty slices) become
    ``null`` so the output is strict JSON.
    """
    return json.dumps(_sanitize(label.as_dict()), indent=indent, sort_keys=False)


def label_from_json(payload: str) -> dict[str, object]:
    """Parse and validate a label JSON document.

    Returns the dict form (the same shape ``NutritionalLabel.as_dict``
    produces).  Raises :class:`~repro.errors.LabelError` when required
    sections are missing — the integrity check consumers should run on
    labels they did not generate themselves.
    """
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise LabelError(f"invalid label JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise LabelError("label JSON must be an object at the top level")
    missing = [key for key in _REQUIRED_KEYS if key not in data]
    if missing:
        raise LabelError(
            f"label JSON is missing section(s): {', '.join(missing)}"
        )
    return data
