"""Markdown rendering: the label as a report section.

For embedding a nutritional label in documentation, model cards, or
pull-request descriptions — anywhere GitHub-flavoured markdown renders.
Same structure as the text renderer, but with real tables.
"""

from __future__ import annotations

from repro.label.widgets import NutritionalLabel, WidgetStatistics

__all__ = ["render_markdown"]


def _fmt(value: float, digits: int = 3) -> str:
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}g}"


def _stats_table(stats: tuple[WidgetStatistics, ...]) -> list[str]:
    lines = [
        "| attribute | slice | min | median | max |",
        "|---|---|---|---|---|",
    ]
    for stat in stats:
        lines.append(
            f"| {stat.attribute} | top-k | {_fmt(stat.top_k.minimum)} | "
            f"{_fmt(stat.top_k.median)} | {_fmt(stat.top_k.maximum)} |"
        )
        lines.append(
            f"| | overall | {_fmt(stat.overall.minimum)} | "
            f"{_fmt(stat.overall.median)} | {_fmt(stat.overall.maximum)} |"
        )
    return lines


def render_markdown(label: NutritionalLabel, detailed: bool = False) -> str:
    """Render the label as a GitHub-flavoured markdown document."""
    lines: list[str] = [
        "# Ranking Facts",
        "",
        f"**{label.dataset_name}** — {label.num_items} items, top-{label.k} "
        f"({label.generator})",
    ]

    # Recipe
    lines += ["", "## Recipe", "", "| attribute | weight | share | scaling |",
              "|---|---|---|---|"]
    for attribute, weight in label.recipe.weights.items():
        share = label.recipe.normalized_weights[attribute]
        scheme = label.recipe.normalization.get(attribute, "identity")
        lines.append(f"| {attribute} | {weight:g} | {share:.1%} | {scheme} |")
    if detailed:
        lines += ["", *_stats_table(label.recipe.statistics)]

    # Ingredients
    lines += ["", "## Ingredients", "", "| attribute | importance | direction |",
              "|---|---|---|"]
    shown = (
        label.ingredients.analysis.importances
        if detailed
        else label.ingredients.analysis.top(label.ingredients.top_n)
    )
    for item in shown:
        arrow = "+" if item.direction >= 0 else "-"
        lines.append(f"| {item.attribute} | {item.importance:.3f} | {arrow} |")
    if detailed:
        lines += ["", *_stats_table(label.ingredients.statistics)]

    # Stability
    slope = label.stability.slope_report
    lines += [
        "",
        "## Stability",
        "",
        f"**{slope.verdict.upper()}** — score {_fmt(label.stability.stability_score)} "
        f"(threshold {slope.threshold:g})",
        "",
        "| segment | slope | R² | verdict |",
        "|---|---|---|---|",
        f"| top-{slope.k} | {_fmt(slope.slope_top_k)} | "
        f"{slope.fit_top_k.r_squared:.3f} | "
        f"{'stable' if slope.stable_top_k else 'unstable'} |",
        f"| overall | {_fmt(slope.slope_overall)} | "
        f"{slope.fit_overall.r_squared:.3f} | "
        f"{'stable' if slope.stable_overall else 'unstable'} |",
    ]
    if detailed:
        if label.stability.gaps:
            lines += ["", "| segment | min gap | median gap | swap margin |",
                      "|---|---|---|---|"]
            for segment, gap in label.stability.gaps.items():
                lines.append(
                    f"| {segment} | {_fmt(gap.min_gap)} | {_fmt(gap.median_gap)} "
                    f"| {_fmt(gap.swap_margin)} |"
                )
        for name, outcomes in (
            ("weight perturbation", label.stability.perturbation),
            ("data uncertainty", label.stability.uncertainty),
        ):
            if outcomes:
                lines += ["", f"| {name} ε | P[top-k changes] | mean τ |",
                          "|---|---|---|"]
                for outcome in outcomes:
                    lines.append(
                        f"| {outcome.epsilon:g} | {outcome.change_probability:.2f} "
                        f"| {outcome.mean_kendall_tau:.3f} |"
                    )
        if label.stability.per_attribute:
            lines += ["", "| attribute | weight | critical change |",
                      "|---|---|---|"]
            for result in label.stability.per_attribute:
                lines.append(
                    f"| {result.attribute} | {result.weight:g} "
                    f"| {result.critical_epsilon:.0%} |"
                )

    # Fairness
    grid = label.fairness.verdict_grid()
    measures: list[str] = []
    for verdicts in grid.values():
        for measure in verdicts:
            if measure not in measures:
                measures.append(measure)
    lines += ["", "## Fairness", "",
              "| group | " + " | ".join(measures) + " |",
              "|---|" + "---|" * len(measures)]
    for group, verdicts in grid.items():
        cells = " | ".join(
            f"**{verdicts.get(m, '-')}**" if verdicts.get(m) == "unfair"
            else verdicts.get(m, "-")
            for m in measures
        )
        lines.append(f"| {group} | {cells} |")
    if detailed:
        lines += ["", "| measure | group | p-value | α |", "|---|---|---|---|"]
        for result in label.fairness.results:
            lines.append(
                f"| {result.measure} | {result.group_label} | "
                f"{_fmt(result.p_value, 4)} | {_fmt(result.alpha, 4)} |"
            )

    # Diversity
    lines += ["", "## Diversity"]
    for report in label.diversity.reports:
        lines += ["", f"### {report.attribute}", "",
                  f"| category | top-{label.k} | overall |", "|---|---|---|"]
        for category, share in report.overall.proportions.items():
            top_share = report.top_k.proportions.get(category, 0.0)
            lines.append(f"| {category} | {top_share:.1%} | {share:.1%} |")
        missing = report.missing_categories()
        if missing:
            lines.append("")
            lines.append(f"Missing from top-{label.k}: **{', '.join(missing)}**")

    lines.append("")
    return "\n".join(lines)
