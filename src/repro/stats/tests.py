"""Hypothesis tests used by the Fairness widget.

"All these measures are statistical tests, and whether a result is fair
is determined by the computed p-value" (paper §2.3).  Three tests cover
the widget's needs:

- :func:`binomial_test` — exact test of a count against Binomial(n, p);
  the FA*IR prefix test and the pairwise measure both reduce to it.
- :func:`one_proportion_ztest` — normal-approximation test of a sample
  proportion against a population proportion; the "proportion" measure
  adapted from Zliobaite's review [15].
- :func:`two_proportion_ztest` — pooled z-test comparing the protected
  proportion inside the top-k against the rest of the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.stats.distributions import binom_cdf, binom_sf, norm_cdf, norm_sf


def _full_binom_logpmf(trials: int, p: float) -> np.ndarray:
    """log PMF of Binomial(trials, p) over 0..trials, via the ratio recurrence.

    ``logpmf[k+1] - logpmf[k] = log((n-k)/(k+1)) + log(p/(1-p))``, which a
    cumulative sum vectorizes; exact to float precision and O(n) even for
    the millions-of-pairs counts the naive pairwise measure produces.
    """
    k = np.arange(trials, dtype=np.float64)
    steps = np.log(trials - k) - np.log(k + 1.0) + math.log(p) - math.log1p(-p)
    logpmf = np.empty(trials + 1, dtype=np.float64)
    logpmf[0] = trials * math.log1p(-p)
    logpmf[1:] = logpmf[0] + np.cumsum(steps)
    return logpmf


def _two_sided_binomial_pvalue(successes: int, trials: int, p: float) -> float:
    """Exact minlike two-sided p-value.

    Sums the probabilities of every outcome whose likelihood does not
    exceed the observed one (the convention of ``scipy.stats.binomtest``).
    """
    if trials == 0:
        return 1.0
    if p == 0.0:
        return 1.0 if successes == 0 else 0.0
    if p == 1.0:
        return 1.0 if successes == trials else 0.0
    pmf = np.exp(_full_binom_logpmf(trials, p))
    threshold = pmf[successes] * (1.0 + 1e-12)  # tolerate float round-off
    return float(min(1.0, pmf[pmf <= threshold].sum()))

__all__ = [
    "TestResult",
    "binomial_test",
    "one_proportion_ztest",
    "two_proportion_ztest",
]

_ALTERNATIVES = ("two-sided", "less", "greater")


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test.

    Attributes
    ----------
    statistic:
        The test statistic (z value, or the observed count for exact
        tests).
    p_value:
        Probability, under the null, of a result at least as extreme.
    alternative:
        Which tail(s) were tested.
    name:
        Human-readable test name, shown in the detailed Fairness widget.
    """

    statistic: float
    p_value: float
    alternative: str
    name: str

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "name": self.name,
            "statistic": self.statistic,
            "p_value": self.p_value,
            "alternative": self.alternative,
        }


def _check_alternative(alternative: str) -> None:
    if alternative not in _ALTERNATIVES:
        raise ValueError(
            f"alternative must be one of {_ALTERNATIVES}, got {alternative!r}"
        )


def binomial_test(
    successes: int, trials: int, p: float, alternative: str = "two-sided"
) -> TestResult:
    """Exact binomial test of ``successes`` out of ``trials`` against ``p``.

    The two-sided p-value follows the minlike convention (sum of all
    outcome probabilities no larger than the observed one), matching
    ``scipy.stats.binomtest``.
    """
    _check_alternative(alternative)
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"null proportion must be in [0, 1], got {p}")

    if alternative == "less":
        p_value = binom_cdf(successes, trials, p)
    elif alternative == "greater":
        p_value = binom_sf(successes - 1, trials, p)
    else:
        p_value = _two_sided_binomial_pvalue(successes, trials, p)
    return TestResult(
        statistic=float(successes),
        p_value=float(p_value),
        alternative=alternative,
        name="exact binomial test",
    )


def one_proportion_ztest(
    successes: int, trials: int, p: float, alternative: str = "two-sided"
) -> TestResult:
    """Normal-approximation test of a sample proportion against ``p``.

    This is the classical statistical-parity check: is the share of the
    protected group in the selected set consistent with its share ``p``
    of the population?

    Raises
    ------
    ValueError
        When the null variance is zero (``p`` of 0 or 1) or ``trials``
        is zero — the z statistic is undefined there.
    """
    _check_alternative(alternative)
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < p < 1.0:
        raise ValueError(
            f"null proportion must be strictly inside (0, 1), got {p}"
        )
    observed = successes / trials
    se = (p * (1.0 - p) / trials) ** 0.5
    z = (observed - p) / se
    if alternative == "less":
        p_value = norm_cdf(z)
    elif alternative == "greater":
        p_value = norm_sf(z)
    else:
        p_value = 2.0 * norm_sf(abs(z))
    return TestResult(
        statistic=float(z),
        p_value=float(min(1.0, p_value)),
        alternative=alternative,
        name="one-proportion z-test",
    )


def two_proportion_ztest(
    successes_a: int,
    trials_a: int,
    successes_b: int,
    trials_b: int,
    alternative: str = "two-sided",
) -> TestResult:
    """Pooled two-sample z-test for a difference in proportions.

    Group *a* is conventionally the top-k slice and group *b* the
    remainder of the ranking; ``alternative="less"`` then asks whether
    the protected share in the top-k is significantly lower.

    Raises
    ------
    ValueError
        When either sample is empty, or the pooled proportion is 0 or 1
        (no variance: the test cannot distinguish the groups).
    """
    _check_alternative(alternative)
    for label, successes, trials in (
        ("a", successes_a, trials_a),
        ("b", successes_b, trials_b),
    ):
        if trials <= 0:
            raise ValueError(f"group {label}: trials must be positive, got {trials}")
        if not 0 <= successes <= trials:
            raise ValueError(
                f"group {label}: successes must be in [0, {trials}], got {successes}"
            )
    pooled = (successes_a + successes_b) / (trials_a + trials_b)
    if pooled in (0.0, 1.0):
        raise ValueError(
            "two_proportion_ztest: pooled proportion is degenerate "
            f"({pooled:g}); both groups are homogeneous"
        )
    se = (pooled * (1.0 - pooled) * (1.0 / trials_a + 1.0 / trials_b)) ** 0.5
    z = (successes_a / trials_a - successes_b / trials_b) / se
    if alternative == "less":
        p_value = norm_cdf(z)
    elif alternative == "greater":
        p_value = norm_sf(z)
    else:
        p_value = 2.0 * norm_sf(abs(z))
    return TestResult(
        statistic=float(z),
        p_value=float(min(1.0, p_value)),
        alternative=alternative,
        name="two-proportion z-test",
    )
