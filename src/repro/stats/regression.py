"""Ordinary least squares line fitting.

The detailed Stability widget (paper §2.2, Figure 2) quantifies
stability "as the slope of the line that is fit to the score
distribution, at the top-10 and over-all".  :func:`fit_line` is that
fit: x = rank position (1-based), y = score at that rank.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "fit_line", "fit_line_xy"]


@dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y ≈ slope * x + intercept``.

    ``r_squared`` is the coefficient of determination; it is defined as
    1.0 for a perfect fit on degenerate (zero-variance) targets.
    """

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.slope * x + self.intercept

    def residuals(
        self, xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """``y - fitted(x)`` for paired observations."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        return ys - (self.slope * xs + self.intercept)

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict form for serialization."""
        return {
            "slope": self.slope,
            "intercept": self.intercept,
            "r_squared": self.r_squared,
            "n": self.n,
        }


def fit_line_xy(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> LinearFit:
    """Least-squares fit of ``ys`` against ``xs``.

    Raises
    ------
    ValueError
        On length mismatch, fewer than two points, NaNs, or zero
        variance in ``xs`` (a vertical line has no finite slope).
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(
            f"fit_line_xy needs equal-length 1-d sequences, got {x.shape} and {y.shape}"
        )
    if x.size < 2:
        raise ValueError(f"fit_line_xy needs at least 2 points, got {x.size}")
    if np.isnan(x).any() or np.isnan(y).any():
        raise ValueError("fit_line_xy received NaN values; clean the data first")

    x_mean = x.mean()
    y_mean = y.mean()
    sxx = float(((x - x_mean) ** 2).sum())
    if sxx == 0.0:
        raise ValueError("fit_line_xy: x values are constant, slope undefined")
    sxy = float(((x - x_mean) * (y - y_mean)).sum())
    slope = sxy / sxx
    intercept = float(y_mean - slope * x_mean)

    ss_tot = float(((y - y_mean) ** 2).sum())
    if ss_tot == 0.0:
        r_squared = 1.0  # constant target, perfectly reproduced by slope 0
    else:
        fitted = slope * x + intercept
        ss_res = float(((y - fitted) ** 2).sum())
        r_squared = 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=intercept, r_squared=r_squared, n=int(x.size))


def fit_line(scores: Sequence[float] | np.ndarray) -> LinearFit:
    """Fit a line to a score distribution indexed by rank position.

    ``scores`` must already be in rank order (best first); the x-axis is
    the 1-based rank.  For a descending score sequence the slope is
    negative; the Stability widget reports its magnitude.
    """
    y = np.asarray(scores, dtype=np.float64)
    x = np.arange(1, y.size + 1, dtype=np.float64)
    return fit_line_xy(x, y)
