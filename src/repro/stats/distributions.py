"""Normal and binomial distribution primitives.

Implemented from first principles (log-space binomial PMF, ``erfc``-based
normal CDF, bisection/Newton inverses) so that every p-value the fairness
widget reports can be traced to elementary operations.  The unit tests
cross-check all of these against scipy.
"""

from __future__ import annotations

import math

__all__ = [
    "norm_pdf",
    "norm_cdf",
    "norm_sf",
    "norm_ppf",
    "binom_pmf",
    "binom_logpmf",
    "binom_cdf",
    "binom_sf",
    "binom_ppf",
]

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


# ---------------------------------------------------------------------------
# Normal distribution
# ---------------------------------------------------------------------------


def norm_pdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Density of the normal distribution at ``x``."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    z = (x - mean) / std
    return math.exp(-0.5 * z * z) / (std * _SQRT2PI)


def norm_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """P(X <= x) for X ~ Normal(mean, std).

    Uses ``erfc`` for full double-precision accuracy in both tails.
    """
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    z = (x - mean) / std
    return 0.5 * math.erfc(-z / _SQRT2)


def norm_sf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """P(X > x): the survival function, accurate in the upper tail."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    z = (x - mean) / std
    return 0.5 * math.erfc(z / _SQRT2)


def norm_ppf(q: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Inverse CDF (quantile function) of the normal distribution.

    Acklam's rational approximation refined with one Halley step, giving
    ~1e-15 relative accuracy — indistinguishable from scipy in tests.
    """
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    if not 0.0 < q < 1.0:
        if q == 0.0:
            return float("-inf")
        if q == 1.0:
            return float("inf")
        raise ValueError(f"quantile must be in [0, 1], got {q}")

    # Acklam's coefficients
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)

    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        z = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    elif q <= 1.0 - p_low:
        u = q - 0.5
        t = u * u
        z = (((((a[0] * t + a[1]) * t + a[2]) * t + a[3]) * t + a[4]) * t + a[5]) * u / (
            ((((b[0] * t + b[1]) * t + b[2]) * t + b[3]) * t + b[4]) * t + 1.0
        )
    else:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        z = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )

    # one Halley refinement step
    err = norm_cdf(z) - q
    density = norm_pdf(z)
    if density > 0.0:
        step = err / density
        z -= step / (1.0 + z * step / 2.0)
    return mean + std * z


# ---------------------------------------------------------------------------
# Binomial distribution
# ---------------------------------------------------------------------------


def _validate_binom(k: int, n: int, p: float) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if not isinstance(k, int):
        raise TypeError(f"k must be an int, got {type(k).__name__}")


def binom_logpmf(k: int, n: int, p: float) -> float:
    """log P(X = k) for X ~ Binomial(n, p); ``-inf`` outside support."""
    _validate_binom(k, n, p)
    if k < 0 or k > n:
        return float("-inf")
    if p == 0.0:
        return 0.0 if k == 0 else float("-inf")
    if p == 1.0:
        return 0.0 if k == n else float("-inf")
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log1p(-p)
    )


def binom_pmf(k: int, n: int, p: float) -> float:
    """P(X = k) for X ~ Binomial(n, p)."""
    logpmf = binom_logpmf(k, n, p)
    return 0.0 if logpmf == float("-inf") else math.exp(logpmf)


def binom_cdf(k: int, n: int, p: float) -> float:
    """P(X <= k) for X ~ Binomial(n, p).

    Direct summation of the PMF from the smaller tail; exact for the
    prefix sizes the FA*IR test uses (k up to a few thousand).
    """
    _validate_binom(k, n, p)
    if k < 0:
        return 0.0
    if k >= n:
        return 1.0
    # Sum the smaller tail for accuracy, then complement if needed.
    if k <= n * p:
        total = 0.0
        for i in range(0, k + 1):
            total += binom_pmf(i, n, p)
        return min(total, 1.0)
    total = 0.0
    for i in range(k + 1, n + 1):
        total += binom_pmf(i, n, p)
    return max(0.0, 1.0 - total)


def binom_sf(k: int, n: int, p: float) -> float:
    """P(X > k): the binomial survival function."""
    _validate_binom(k, n, p)
    if k < 0:
        return 1.0
    if k >= n:
        return 0.0
    if k <= n * p:
        total = 0.0
        for i in range(0, k + 1):
            total += binom_pmf(i, n, p)
        return max(0.0, 1.0 - total)
    total = 0.0
    for i in range(k + 1, n + 1):
        total += binom_pmf(i, n, p)
    return min(total, 1.0)


def binom_ppf(q: float, n: int, p: float) -> int:
    """Smallest ``k`` with ``binom_cdf(k, n, p) >= q``.

    This is exactly scipy's convention, and the quantity FA*IR's mtable
    construction needs: the minimum number of protected candidates whose
    shortfall probability stays below significance.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    _validate_binom(0, n, p)
    if q == 0.0:
        # scipy returns -1 for q=0 when p>0; we clamp to the support
        return 0
    cumulative = 0.0
    for k in range(0, n + 1):
        cumulative += binom_pmf(k, n, p)
        if cumulative >= q - 1e-15:
            return k
    return n
