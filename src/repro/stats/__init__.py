"""Self-contained statistics substrate.

Every fair/unfair verdict on the label "is determined by the computed
p-value" (paper §2.3), and the Stability widget fits a regression line
to the score distribution (paper §2.2, Figure 2).  This subpackage
implements those primitives directly — normal and binomial distributions,
ordinary least squares, binomial and proportion tests, and rank
correlations — so the numbers on the label are auditable end to end.
scipy is used only in the test suite, as an independent cross-check.
"""

from repro.stats.descriptive import (
    five_number_summary,
    mean,
    median,
    quantile,
    stddev,
    trimmed_mean,
)
from repro.stats.distributions import (
    binom_cdf,
    binom_logpmf,
    binom_pmf,
    binom_ppf,
    binom_sf,
    norm_cdf,
    norm_pdf,
    norm_ppf,
    norm_sf,
)
from repro.stats.regression import LinearFit, fit_line, fit_line_xy
from repro.stats.tests import (
    TestResult,
    binomial_test,
    one_proportion_ztest,
    two_proportion_ztest,
)
from repro.stats.correlation import kendall_tau, pearson_r, spearman_rho

__all__ = [
    "mean",
    "median",
    "stddev",
    "quantile",
    "trimmed_mean",
    "five_number_summary",
    "norm_pdf",
    "norm_cdf",
    "norm_sf",
    "norm_ppf",
    "binom_pmf",
    "binom_logpmf",
    "binom_cdf",
    "binom_sf",
    "binom_ppf",
    "LinearFit",
    "fit_line",
    "fit_line_xy",
    "TestResult",
    "binomial_test",
    "one_proportion_ztest",
    "two_proportion_ztest",
    "pearson_r",
    "spearman_rho",
    "kendall_tau",
]
