"""Descriptive statistics on raw float sequences.

These helpers operate on plain sequences/arrays (not columns) so the
stability and fairness code can use them on derived quantities such as
score vectors and rank gaps.  NaNs are rejected, not silently dropped:
by the time data reaches these functions it has passed through the
tabular layer, which owns missing-value policy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "mean",
    "median",
    "stddev",
    "quantile",
    "trimmed_mean",
    "five_number_summary",
]


def _as_clean_array(values: Sequence[float] | np.ndarray, what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{what} expects a 1-d sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{what} of an empty sequence is undefined")
    if np.isnan(arr).any():
        raise ValueError(f"{what} received NaN values; clean the data first")
    return arr


def mean(values: Sequence[float] | np.ndarray) -> float:
    """Arithmetic mean."""
    return float(_as_clean_array(values, "mean").mean())


def median(values: Sequence[float] | np.ndarray) -> float:
    """Median (average of the middle two for even lengths)."""
    return float(np.median(_as_clean_array(values, "median")))


def stddev(values: Sequence[float] | np.ndarray, ddof: int = 0) -> float:
    """Standard deviation; population (ddof=0) by default."""
    arr = _as_clean_array(values, "stddev")
    if arr.size <= ddof:
        raise ValueError(
            f"stddev with ddof={ddof} needs more than {ddof} values, got {arr.size}"
        )
    return float(arr.std(ddof=ddof))


def quantile(values: Sequence[float] | np.ndarray, q: float) -> float:
    """Linear-interpolation quantile, ``q`` in [0, 1]."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must be in [0, 1], got {q}")
    return float(np.quantile(_as_clean_array(values, "quantile"), q))


def trimmed_mean(values: Sequence[float] | np.ndarray, proportion: float = 0.1) -> float:
    """Mean after removing ``proportion`` of mass from each tail.

    Used by the uncertainty-based stability estimator to make its
    summary robust to a few extreme perturbation draws.
    """
    if not 0.0 <= proportion < 0.5:
        raise ValueError(
            f"trim proportion must be in [0, 0.5), got {proportion}"
        )
    arr = np.sort(_as_clean_array(values, "trimmed_mean"))
    cut = int(arr.size * proportion)
    trimmed = arr[cut: arr.size - cut]
    if trimmed.size == 0:
        trimmed = arr
    return float(trimmed.mean())


def five_number_summary(
    values: Sequence[float] | np.ndarray,
) -> dict[str, float]:
    """Min, first quartile, median, third quartile, max as a dict."""
    arr = _as_clean_array(values, "five_number_summary")
    return {
        "min": float(arr.min()),
        "q1": float(np.quantile(arr, 0.25)),
        "median": float(np.median(arr)),
        "q3": float(np.quantile(arr, 0.75)),
        "max": float(arr.max()),
    }
