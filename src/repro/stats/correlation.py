"""Correlation coefficients: Pearson, Spearman, Kendall.

The Ingredients widget ranks attributes by how strongly they associate
with the ranked outcome (paper §2.1); rank correlations are its default
importance estimator.  Kendall's tau-b is also the workhorse of the
rank-comparison utilities in :mod:`repro.ranking.compare`, which the
perturbation-based stability estimators build on.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["pearson_r", "spearman_rho", "kendall_tau", "rankdata_average"]


def _paired_arrays(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray, what: str
) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.ndim != 1 or x.shape != y.shape:
        raise ValueError(
            f"{what} needs equal-length 1-d sequences, got {x.shape} and {y.shape}"
        )
    if x.size < 2:
        raise ValueError(f"{what} needs at least 2 observations, got {x.size}")
    if np.isnan(x).any() or np.isnan(y).any():
        raise ValueError(f"{what} received NaN values; clean the data first")
    return x, y


def pearson_r(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> float:
    """Pearson product-moment correlation in [-1, 1].

    Returns 0.0 when either variable is constant (no linear association
    can be measured), rather than raising — constant attribute columns
    are common in small top-k slices.
    """
    x, y = _paired_arrays(xs, ys, "pearson_r")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = float(np.sqrt((xc**2).sum() * (yc**2).sum()))
    if denom == 0.0:
        return 0.0
    r = float((xc * yc).sum() / denom)
    return max(-1.0, min(1.0, r))


def rankdata_average(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """1-based ranks with ties broken by averaging (scipy's 'average')."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"rankdata expects a 1-d sequence, got shape {arr.shape}")
    order = np.argsort(arr, kind="stable")
    ranks = np.empty(arr.size, dtype=np.float64)
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        avg_rank = (i + j) / 2.0 + 1.0
        ranks[order[i: j + 1]] = avg_rank
        i = j + 1
    return ranks


def spearman_rho(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> float:
    """Spearman rank correlation: Pearson correlation of average ranks."""
    x, y = _paired_arrays(xs, ys, "spearman_rho")
    return pearson_r(rankdata_average(x), rankdata_average(y))


def kendall_tau(
    xs: Sequence[float] | np.ndarray, ys: Sequence[float] | np.ndarray
) -> float:
    """Kendall's tau-b, with the standard tie correction.

    O(n^2) pair enumeration — exact and fast enough for the attribute
    counts and top-k sizes labels deal with.  Returns 0.0 when either
    variable is fully tied.
    """
    x, y = _paired_arrays(xs, ys, "kendall_tau")
    n = x.size
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n - 1):
        dx = x[i + 1:] - x[i]
        dy = y[i + 1:] - y[i]
        sign = np.sign(dx) * np.sign(dy)
        concordant += int((sign > 0).sum())
        discordant += int((sign < 0).sum())
        ties_x += int(((dx == 0) & (dy != 0)).sum())
        ties_y += int(((dy == 0) & (dx != 0)).sum())
    denom = float(
        np.sqrt(
            (concordant + discordant + ties_x) * (concordant + discordant + ties_y)
        )
    )
    if denom == 0.0:
        return 0.0
    tau = (concordant - discordant) / denom
    return max(-1.0, min(1.0, tau))
