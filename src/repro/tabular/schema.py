"""Schema declaration and validation for tables.

Dataset generators and the demo-session workflow both promise a shape
("CS departments has numeric PubCount/Faculty/GRE and categorical
Region/DeptSizeBin").  A :class:`Schema` makes that promise explicit and
checkable, so integration points fail fast with a precise message rather
than deep inside a widget computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.tabular.table import Table

__all__ = ["ColumnSpec", "Schema"]

_VALID_KINDS = ("numeric", "categorical")


@dataclass(frozen=True)
class ColumnSpec:
    """Declares one column: its name, its kind, and optional constraints.

    Parameters
    ----------
    name:
        Column name.
    kind:
        ``"numeric"`` or ``"categorical"``.
    required:
        When false, the column may be absent from a conforming table.
    allowed_categories:
        For categorical columns, the closed set of legal category values
        (missing/empty cells are always allowed).  ``None`` means open.
    minimum, maximum:
        For numeric columns, inclusive bounds on non-missing values.
    """

    name: str
    kind: str
    required: bool = True
    allowed_categories: tuple[str, ...] | None = None
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self):
        if self.kind not in _VALID_KINDS:
            raise SchemaError(
                f"column {self.name!r}: kind must be one of {_VALID_KINDS}, got {self.kind!r}"
            )
        if self.kind == "numeric" and self.allowed_categories is not None:
            raise SchemaError(
                f"column {self.name!r}: allowed_categories only applies to categorical columns"
            )
        if self.kind == "categorical" and (
            self.minimum is not None or self.maximum is not None
        ):
            raise SchemaError(
                f"column {self.name!r}: numeric bounds only apply to numeric columns"
            )

    def validate(self, table: Table) -> list[str]:
        """Return a list of violation messages for this spec on ``table``."""
        problems: list[str] = []
        if self.name not in table:
            if self.required:
                problems.append(f"missing required column {self.name!r}")
            return problems
        col = table.column(self.name)
        if col.kind != self.kind:
            problems.append(
                f"column {self.name!r} is {col.kind}, schema requires {self.kind}"
            )
            return problems
        if self.kind == "categorical" and self.allowed_categories is not None:
            allowed = set(self.allowed_categories)
            extra = [c for c in col.as_categorical().categories() if c not in allowed]
            if extra:
                problems.append(
                    f"column {self.name!r} has unexpected categories: {', '.join(extra)}"
                )
        if self.kind == "numeric":
            values = col.as_numeric().dropna_values()
            if values.size:
                if self.minimum is not None and float(values.min()) < self.minimum:
                    problems.append(
                        f"column {self.name!r} has value {values.min():g} below minimum {self.minimum:g}"
                    )
                if self.maximum is not None and float(values.max()) > self.maximum:
                    problems.append(
                        f"column {self.name!r} has value {values.max():g} above maximum {self.maximum:g}"
                    )
        return problems


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`ColumnSpec` with validation helpers."""

    specs: tuple[ColumnSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"schema declares duplicate columns: {', '.join(dupes)}")

    @classmethod
    def of(cls, *specs: ColumnSpec) -> "Schema":
        """Convenience constructor: ``Schema.of(spec1, spec2, ...)``."""
        return cls(tuple(specs))

    def spec(self, name: str) -> ColumnSpec:
        """The spec for ``name`` (raises :class:`SchemaError` if absent)."""
        for s in self.specs:
            if s.name == name:
                return s
        raise SchemaError(f"schema has no column {name!r}")

    def column_names(self) -> tuple[str, ...]:
        """Declared column names, in order."""
        return tuple(s.name for s in self.specs)

    def problems(self, table: Table) -> list[str]:
        """All violation messages for ``table`` against this schema."""
        out: list[str] = []
        for s in self.specs:
            out.extend(s.validate(table))
        return out

    def validate(self, table: Table) -> Table:
        """Return ``table`` if it conforms, else raise :class:`SchemaError`."""
        problems = self.problems(table)
        if problems:
            raise SchemaError("; ".join(problems))
        return table

    def conforms(self, table: Table) -> bool:
        """True when ``table`` satisfies every spec."""
        return not self.problems(table)
