"""Minimal columnar table substrate (the library's pandas replacement).

The original Ranking Facts tool was built on pandas.  pandas is not a
dependency here; this subpackage provides the small slice of dataframe
functionality that nutritional labels actually need:

- typed columns (:class:`NumericColumn`, :class:`CategoricalColumn`),
- an immutable :class:`Table` with selection, filtering, sorting and
  row slicing,
- CSV reading with type inference and CSV writing (:mod:`repro.tabular.csvio`),
- schema declaration and validation (:mod:`repro.tabular.schema`),
- descriptive summaries and histograms (:mod:`repro.tabular.summary`).

Example
-------
>>> from repro.tabular import Table
>>> t = Table.from_dict({"name": ["a", "b"], "score": [1.0, 2.0]})
>>> t.num_rows
2
>>> t.column("score").values.tolist()
[1.0, 2.0]
"""

from repro.tabular.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    infer_column,
)
from repro.tabular.csvio import read_csv, read_csv_text, write_csv
from repro.tabular.schema import ColumnSpec, Schema
from repro.tabular.summary import ColumnSummary, Histogram, describe, histogram
from repro.tabular.table import Table

__all__ = [
    "Column",
    "NumericColumn",
    "CategoricalColumn",
    "infer_column",
    "Table",
    "Schema",
    "ColumnSpec",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "describe",
    "histogram",
    "ColumnSummary",
    "Histogram",
]
