"""Typed columns: the unit of storage for :class:`repro.tabular.table.Table`.

Two concrete column types cover everything the label needs:

- :class:`NumericColumn` wraps a float64 numpy array (scores, weights,
  GRE averages, publication counts...).  NaN marks missing values.
- :class:`CategoricalColumn` wraps a numpy object array of strings
  (regions, race, gender, size bins...).  The empty string marks missing
  values.

Columns are immutable: every transformation returns a new column.  That
keeps tables safe to share between widgets without defensive copies.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Union

import numpy as np

from repro.errors import ColumnTypeError, SchemaError

__all__ = ["Column", "NumericColumn", "CategoricalColumn", "infer_column"]

#: Values treated as missing when parsing raw cells.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "?"})


def _is_missing_token(cell: str) -> bool:
    return cell.strip().lower() in MISSING_TOKENS


class Column:
    """Abstract base for typed, immutable, named columns.

    Parameters
    ----------
    name:
        Column name; must be a non-empty string.
    values:
        Backing numpy array.  Subclasses coerce and validate it.
    """

    #: short machine-readable type tag ("numeric" or "categorical")
    kind: str = "abstract"

    def __init__(self, name: str, values: np.ndarray):
        if not isinstance(name, str) or not name:
            raise SchemaError(f"column name must be a non-empty string, got {name!r}")
        self._name = name
        self._values = values
        self._values.setflags(write=False)

    # -- basic protocol ---------------------------------------------------

    @property
    def name(self) -> str:
        """The column's name."""
        return self._name

    @property
    def values(self) -> np.ndarray:
        """The read-only backing array."""
        return self._values

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            return self._values[int(index)]
        return self._with_values(np.asarray(self._values[index]))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.kind != other.kind or self.name != other.name:
            return False
        if len(self) != len(other):
            return False
        if self.kind == "numeric":
            a, b = self.values, other.values
            both_nan = np.isnan(a) & np.isnan(b)
            return bool(np.all(both_nan | (a == b)))
        return bool(np.all(self.values == other.values))

    def __hash__(self):  # immutable in spirit, but arrays are unhashable
        return hash((self.kind, self.name, len(self)))

    def __repr__(self) -> str:
        preview = ", ".join(str(v) for v in self._values[:4])
        if len(self) > 4:
            preview += ", ..."
        return f"{type(self).__name__}({self._name!r}, [{preview}], n={len(self)})"

    # -- transformations ---------------------------------------------------

    def _with_values(self, values: np.ndarray) -> "Column":
        """Return a copy of this column with a new backing array."""
        return type(self)(self._name, values)

    def rename(self, name: str) -> "Column":
        """Return this column under a new name."""
        return type(self)(name, self._values.copy())

    def take(self, indices: Sequence[int] | np.ndarray) -> "Column":
        """Return a new column with rows gathered at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return self._with_values(self._values[idx])

    def head(self, k: int) -> "Column":
        """Return the first ``k`` values as a new column."""
        if k < 0:
            raise ValueError(f"head() needs k >= 0, got {k}")
        return self._with_values(self._values[:k].copy())

    # -- missing-value handling ---------------------------------------------

    def missing_mask(self) -> np.ndarray:
        """Boolean mask marking missing entries."""
        raise NotImplementedError

    def num_missing(self) -> int:
        """Number of missing entries."""
        return int(self.missing_mask().sum())

    # -- narrowing helpers ---------------------------------------------------

    def as_numeric(self) -> "NumericColumn":
        """Return self if numeric, else raise :class:`ColumnTypeError`."""
        raise ColumnTypeError(
            f"column {self._name!r} is {self.kind}, expected numeric"
        )

    def as_categorical(self) -> "CategoricalColumn":
        """Return self if categorical, else raise :class:`ColumnTypeError`."""
        raise ColumnTypeError(
            f"column {self._name!r} is {self.kind}, expected categorical"
        )


class NumericColumn(Column):
    """A named, immutable float64 column.  NaN encodes a missing value."""

    kind = "numeric"

    def __init__(self, name: str, values: Iterable[float] | np.ndarray):
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if arr.ndim != 1:
            raise SchemaError(
                f"column {name!r}: expected a 1-d array, got shape {arr.shape}"
            )
        try:
            arr = arr.astype(np.float64)
        except (TypeError, ValueError) as exc:
            raise ColumnTypeError(
                f"column {name!r}: values are not numeric ({exc})"
            ) from exc
        super().__init__(name, arr)

    def as_numeric(self) -> "NumericColumn":
        return self

    def missing_mask(self) -> np.ndarray:
        return np.isnan(self._values)

    def dropna_values(self) -> np.ndarray:
        """The non-missing values, in original order."""
        return self._values[~np.isnan(self._values)]

    def is_constant(self) -> bool:
        """True when all non-missing values are equal (or none exist)."""
        vals = self.dropna_values()
        return vals.size == 0 or bool(np.all(vals == vals[0]))

    def fill_missing(self, value: float) -> "NumericColumn":
        """Return a copy with NaNs replaced by ``value``."""
        out = self._values.copy()
        out[np.isnan(out)] = float(value)
        return NumericColumn(self._name, out)

    def map(self, func) -> "NumericColumn":
        """Apply ``func`` elementwise (vectorized over the backing array)."""
        return NumericColumn(self._name, func(self._values.copy()))


class CategoricalColumn(Column):
    """A named, immutable column of string categories.

    The empty string encodes a missing value.  Category order in
    :meth:`categories` is first-appearance order, which keeps pie-chart
    slices stable across views of the same table.
    """

    kind = "categorical"

    def __init__(self, name: str, values: Iterable[object] | np.ndarray):
        raw = list(values) if not isinstance(values, np.ndarray) else values.tolist()
        cleaned = []
        for v in raw:
            if v is None:
                cleaned.append("")
            elif isinstance(v, float) and np.isnan(v):
                cleaned.append("")
            else:
                cleaned.append(str(v))
        arr = np.asarray(cleaned, dtype=object)
        if arr.ndim != 1:
            raise SchemaError(
                f"column {name!r}: expected a 1-d array, got shape {arr.shape}"
            )
        super().__init__(name, arr)

    def as_categorical(self) -> "CategoricalColumn":
        return self

    def missing_mask(self) -> np.ndarray:
        return np.asarray([v == "" for v in self._values], dtype=bool)

    def categories(self) -> tuple[str, ...]:
        """Distinct non-missing categories in first-appearance order."""
        seen: dict[str, None] = {}
        for v in self._values:
            if v != "" and v not in seen:
                seen[v] = None
        return tuple(seen)

    def counts(self) -> dict[str, int]:
        """Category -> frequency, in first-appearance order (missing excluded)."""
        counter = Counter(v for v in self._values if v != "")
        return {cat: counter[cat] for cat in self.categories()}

    def proportions(self) -> dict[str, float]:
        """Category -> fraction of non-missing rows, first-appearance order."""
        counts = self.counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {cat: cnt / total for cat, cnt in counts.items()}

    def is_binary(self) -> bool:
        """True when there are exactly two distinct non-missing categories."""
        return len(self.categories()) == 2

    def indicator(self, category: str) -> np.ndarray:
        """Boolean mask of rows equal to ``category``."""
        return np.asarray([v == category for v in self._values], dtype=bool)

    def map_categories(self, mapping: dict[str, str]) -> "CategoricalColumn":
        """Return a copy with categories renamed through ``mapping``.

        Categories absent from ``mapping`` are kept unchanged.
        """
        out = [mapping.get(v, v) for v in self._values]
        return CategoricalColumn(self._name, out)


AnyColumn = Union[NumericColumn, CategoricalColumn]


def infer_column(name: str, raw_values: Sequence[object]) -> AnyColumn:
    """Build the most specific column type for a sequence of raw cells.

    Strings that all parse as floats (missing tokens aside) produce a
    :class:`NumericColumn`; anything else produces a
    :class:`CategoricalColumn`.  Numeric python objects (int/float/bool)
    are accepted directly.

    >>> infer_column("x", ["1", "2.5", "NA"]).kind
    'numeric'
    >>> infer_column("r", ["NE", "W"]).kind
    'categorical'
    """
    parsed: list[float] = []
    numeric = True
    for cell in raw_values:
        if cell is None:
            parsed.append(np.nan)
            continue
        if isinstance(cell, (int, float, np.integer, np.floating)) and not isinstance(
            cell, bool
        ):
            parsed.append(float(cell))
            continue
        text = str(cell)
        if _is_missing_token(text):
            parsed.append(np.nan)
            continue
        try:
            parsed.append(float(text))
        except ValueError:
            numeric = False
            break
    if numeric:
        return NumericColumn(name, np.asarray(parsed, dtype=np.float64))
    cleaned = ["" if (c is None or _is_missing_token(str(c))) else str(c) for c in raw_values]
    return CategoricalColumn(name, cleaned)
