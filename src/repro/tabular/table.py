"""The :class:`Table`: an immutable, ordered collection of typed columns.

Rows are implicit: every column has the same length and row ``i`` is the
tuple of the columns' ``i``-th values.  All mutating-style operations
(``select``, ``filter``, ``sort_by`` ...) return new tables; widget code
can therefore hold references to views of the same data without copies
drifting out of sync.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import EmptyTableError, MissingColumnError, SchemaError
from repro.tabular.column import (
    CategoricalColumn,
    Column,
    NumericColumn,
    infer_column,
)

__all__ = ["Table"]


class Table:
    """An immutable columnar table.

    Parameters
    ----------
    columns:
        Columns in display order.  Names must be unique; lengths equal.

    Example
    -------
    >>> t = Table.from_dict({"dept": ["a", "b"], "score": [3.0, 1.0]})
    >>> t.sort_by("score", ascending=False).column("dept").values.tolist()
    ['a', 'b']
    """

    def __init__(self, columns: Sequence[Column]):
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {', '.join(dupes)}")
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            detail = ", ".join(f"{c.name}={len(c)}" for c in cols)
            raise SchemaError(f"columns have unequal lengths: {detail}")
        self._columns: dict[str, Column] = {c.name: c for c in cols}
        self._order: tuple[str, ...] = tuple(names)
        self._num_rows = lengths.pop() if lengths else 0
        self._content_digest: str | None = None  # memo, filled lazily
        self._content_hash: int | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[object]]) -> "Table":
        """Build a table from ``{name: values}``, inferring column types.

        Values that are already :class:`Column` instances are used as-is
        (renamed to their key if needed).
        """
        cols: list[Column] = []
        for name, values in data.items():
            if isinstance(values, Column):
                cols.append(values if values.name == name else values.rename(name))
            else:
                cols.append(infer_column(name, list(values)))
        return cls(cols)

    @classmethod
    def from_rows(
        cls, header: Sequence[str], rows: Iterable[Sequence[object]]
    ) -> "Table":
        """Build a table from a header and row tuples, inferring types."""
        header = list(header)
        materialized = [list(r) for r in rows]
        for i, row in enumerate(materialized):
            if len(row) != len(header):
                raise SchemaError(
                    f"row {i} has {len(row)} cells, expected {len(header)}"
                )
        columns = {
            name: [row[j] for row in materialized] for j, name in enumerate(header)
        }
        return cls.from_dict(columns)

    @classmethod
    def empty(cls) -> "Table":
        """A table with no columns and no rows."""
        return cls([])

    # -- basic protocol --------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._order)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in display order."""
        return self._order

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __eq__(self, other) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self._order != other._order:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._order)

    def __hash__(self) -> int:
        """Content hash, memoized — the table is immutable.

        Paired with ``__eq__``: column equality treats ``-0.0 == 0.0``
        and any-NaN == any-NaN, so the hash is computed over the
        *normalized* value bytes (signed zeros and NaN payloads
        collapsed) and equal tables always hash equal.  The raw-bytes
        digest the engine caches on lives in :meth:`content_digest`.
        """
        if self._content_hash is None:
            self._content_hash = hash(self._compute_digest(normalize=True))
        return self._content_hash

    def content_digest(self) -> str:
        """Deterministic SHA-256 over names, kinds, and raw values.

        Computed once and memoized: the engine fingerprints every label
        request with this digest, and before the memo each request —
        including cache hits — re-hashed the full table.  Raw float64
        bytes are hashed, so ``-0.0`` vs ``0.0`` or NaN payload
        differences matter exactly as much as they do to the ranking
        code (NaN == NaN at the byte level here, and scoring treats
        both as missing).
        """
        if self._content_digest is None:
            self._content_digest = self._compute_digest(normalize=False)
        return self._content_digest

    def _compute_digest(self, normalize: bool) -> str:
        digest = hashlib.sha256()

        def update_str(text: str) -> None:
            data = text.encode("utf-8")
            digest.update(len(data).to_bytes(8, "little"))
            digest.update(data)

        separator = b"\x1f"  # unit separator: unambiguous field delimiter
        digest.update(self._num_rows.to_bytes(8, "little"))
        for name in self._order:
            column = self._columns[name]
            update_str(name)
            update_str(column.kind)
            digest.update(separator)
            if column.kind == "numeric":
                values = column.values
                if normalize:
                    values = values + 0.0  # -0.0 -> 0.0
                    values[np.isnan(values)] = np.nan  # one canonical NaN
                digest.update(values.tobytes())
            else:
                for value in column.values:
                    update_str(str(value))
            digest.update(separator)
        return digest.hexdigest()

    def __repr__(self) -> str:
        return f"Table({self.num_rows} rows x {self.num_columns} columns: {', '.join(self._order)})"

    # -- access ------------------------------------------------------------------

    def column(self, name: str) -> Column:
        """The column called ``name`` (raises :class:`MissingColumnError`)."""
        try:
            return self._columns[name]
        except KeyError:
            raise MissingColumnError(name, self._order) from None

    def numeric_column(self, name: str) -> NumericColumn:
        """The column called ``name``, required to be numeric."""
        return self.column(name).as_numeric()

    def categorical_column(self, name: str) -> CategoricalColumn:
        """The column called ``name``, required to be categorical."""
        return self.column(name).as_categorical()

    def numeric_column_names(self) -> tuple[str, ...]:
        """Names of all numeric columns, in display order."""
        return tuple(n for n in self._order if self._columns[n].kind == "numeric")

    def categorical_column_names(self) -> tuple[str, ...]:
        """Names of all categorical columns, in display order."""
        return tuple(n for n in self._order if self._columns[n].kind == "categorical")

    def row(self, index: int) -> dict[str, object]:
        """Row ``index`` as an ordered ``{column: value}`` dict."""
        if not -self._num_rows <= index < self._num_rows:
            raise IndexError(
                f"row index {index} out of range for table with {self._num_rows} rows"
            )
        return {name: self._columns[name][index] for name in self._order}

    def iter_rows(self) -> Iterable[dict[str, object]]:
        """Iterate over rows as dicts (ordered by display order)."""
        for i in range(self._num_rows):
            yield self.row(i)

    def to_dict(self) -> dict[str, list[object]]:
        """Materialize as ``{name: list-of-values}`` in display order."""
        return {name: list(self._columns[name].values) for name in self._order}

    # -- transformations -----------------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto ``names``, in the given order."""
        return Table([self.column(n) for n in names])

    def drop(self, names: Sequence[str]) -> "Table":
        """Remove the given columns (each must exist)."""
        for n in names:
            self.column(n)  # raise early with a helpful message
        doomed = set(names)
        return Table([self._columns[n] for n in self._order if n not in doomed])

    def with_column(self, column: Column) -> "Table":
        """Add or replace a column, preserving display order for replacements."""
        if column.name in self._columns:
            return Table(
                [
                    column if n == column.name else self._columns[n]
                    for n in self._order
                ]
            )
        if self._order and len(column) != self._num_rows:
            raise SchemaError(
                f"column {column.name!r} has {len(column)} rows, table has {self._num_rows}"
            )
        return Table([self._columns[n] for n in self._order] + [column])

    def rename_column(self, old: str, new: str) -> "Table":
        """Rename column ``old`` to ``new``."""
        col = self.column(old)
        if new in self._columns and new != old:
            raise SchemaError(f"cannot rename {old!r}: column {new!r} already exists")
        return Table(
            [
                col.rename(new) if n == old else self._columns[n]
                for n in self._order
            ]
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Gather rows at ``indices`` (in order, duplicates allowed)."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size and (idx.min() < -self._num_rows or idx.max() >= self._num_rows):
            raise IndexError("take() index out of range")
        return Table([self._columns[n].take(idx) for n in self._order])

    def head(self, k: int) -> "Table":
        """First ``k`` rows (``k`` may exceed the table size)."""
        k = min(max(k, 0), self._num_rows)
        return self.take(np.arange(k))

    def filter(self, mask: Sequence[bool] | np.ndarray) -> "Table":
        """Keep rows where ``mask`` is true."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._num_rows,):
            raise SchemaError(
                f"filter mask has shape {m.shape}, expected ({self._num_rows},)"
            )
        return self.take(np.flatnonzero(m))

    def filter_rows(self, predicate: Callable[[dict[str, object]], bool]) -> "Table":
        """Keep rows for which ``predicate(row_dict)`` is true."""
        mask = np.asarray([predicate(r) for r in self.iter_rows()], dtype=bool)
        return self.filter(mask)

    def sort_by(self, name: str, ascending: bool = True) -> "Table":
        """Stable sort by one column.

        Numeric NaNs and categorical missings sort last regardless of
        direction, so missing data never floats into a top-k view.
        """
        col = self.column(name)
        if col.kind == "numeric":
            values = col.values.astype(np.float64)
            missing = np.isnan(values)
            keys = values.copy()
        else:
            raw = [str(v) for v in col.values]
            missing = np.asarray([v == "" for v in raw], dtype=bool)
            # rank categories lexicographically for a deterministic order
            order = {v: i for i, v in enumerate(sorted(set(raw)))}
            keys = np.asarray([order[v] for v in raw], dtype=np.float64)
        if not ascending:
            keys = -keys
        keys[missing] = np.inf  # missing sorts last either way
        idx = np.argsort(keys, kind="stable")
        return self.take(idx)

    def concat_rows(self, other: "Table") -> "Table":
        """Stack ``other`` below this table (schemas must match exactly)."""
        if self._order != other._order:
            raise SchemaError(
                "cannot concat: column order differs "
                f"({self._order} vs {other._order})"
            )
        cols: list[Column] = []
        for name in self._order:
            a, b = self._columns[name], other._columns[name]
            if a.kind != b.kind:
                raise SchemaError(
                    f"cannot concat column {name!r}: {a.kind} vs {b.kind}"
                )
            merged = np.concatenate([a.values, b.values])
            cols.append(type(a)(name, merged))
        return Table(cols)

    def join(
        self,
        other: "Table",
        on: str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Table":
        """Join ``other`` onto this table by equality on column ``on``.

        This is how the paper's demo dataset is assembled: CSRankings
        rows augmented with NRC attributes, matched on the department.

        Parameters
        ----------
        other:
            Right-hand table; its ``on`` values must be unique (the
            join is 1:1 or many:1 onto it).
        on:
            Join key, present in both tables with the same kind.
        how:
            ``"inner"`` keeps matched rows only; ``"left"`` keeps every
            left row, filling unmatched right columns with missing
            values.
        suffix:
            Appended to right-hand column names that collide with
            left-hand ones (the key column is never duplicated).

        Raises
        ------
        SchemaError
            On a missing/mismatched key column, duplicate right keys,
            or an unknown ``how``.
        """
        if how not in ("inner", "left"):
            raise SchemaError(f"join how must be 'inner' or 'left', got {how!r}")
        left_key = self.column(on)
        right_key = other.column(on)
        if left_key.kind != right_key.kind:
            raise SchemaError(
                f"join key {on!r} is {left_key.kind} on the left but "
                f"{right_key.kind} on the right"
            )
        right_values = list(right_key.values)
        if len(set(right_values)) != len(right_values):
            raise SchemaError(
                f"join key {on!r} has duplicate values in the right table"
            )
        right_index = {value: i for i, value in enumerate(right_values)}

        left_rows: list[int] = []
        right_rows: list[int | None] = []
        for i, value in enumerate(left_key.values):
            match = right_index.get(value)
            if match is None and how == "inner":
                continue
            left_rows.append(i)
            right_rows.append(match)

        result = self.take(np.asarray(left_rows, dtype=np.intp))
        for name in other.column_names:
            if name == on:
                continue
            column = other.column(name)
            out_name = name if name not in self._columns else name + suffix
            if column.kind == "numeric":
                values = np.asarray(
                    [
                        np.nan if j is None else float(column.values[j])
                        for j in right_rows
                    ],
                    dtype=np.float64,
                )
                result = result.with_column(NumericColumn(out_name, values))
            else:
                values = [
                    "" if j is None else str(column.values[j]) for j in right_rows
                ]
                result = result.with_column(CategoricalColumn(out_name, values))
        return result

    # -- guards ---------------------------------------------------------------------

    def require_rows(self, minimum: int = 1) -> "Table":
        """Return self, or raise :class:`EmptyTableError` if too small."""
        if self._num_rows < minimum:
            raise EmptyTableError(
                f"operation requires at least {minimum} row(s), table has {self._num_rows}"
            )
        return self
