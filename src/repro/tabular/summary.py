"""Descriptive summaries and histograms of table columns.

These feed two parts of the label pipeline:

- the detailed **Recipe** and **Ingredients** widgets report min / max /
  median of each attribute "at the top-10 and over-all" (paper §2.1) —
  :func:`describe` computes those statistics for one column;
- the scoring-function **design view** (Figure 3) previews the data and
  "allows the user to plot the distribution of values of each attribute
  as a histogram" — :func:`histogram` computes the bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ColumnTypeError, EmptyTableError
from repro.tabular.column import Column, NumericColumn
from repro.tabular.table import Table

__all__ = ["ColumnSummary", "Histogram", "describe", "describe_table", "histogram"]


@dataclass(frozen=True)
class ColumnSummary:
    """Descriptive statistics of one numeric column.

    ``count`` is the number of non-missing values; the remaining fields
    are ``nan`` when ``count`` is zero.
    """

    name: str
    count: int
    minimum: float
    maximum: float
    median: float
    mean: float
    std: float

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict form, used by the JSON renderer."""
        return {
            "name": self.name,
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "mean": self.mean,
            "std": self.std,
        }


@dataclass(frozen=True)
class Histogram:
    """A fixed-width histogram of a numeric column.

    ``edges`` has ``len(counts) + 1`` entries; bin ``i`` covers
    ``[edges[i], edges[i+1])`` with the final bin closed on the right.
    """

    name: str
    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def num_bins(self) -> int:
        """Number of histogram bins."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total observations across all bins."""
        return int(sum(self.counts))

    def densities(self) -> tuple[float, ...]:
        """Counts normalized to fractions of the total (0 when empty)."""
        total = self.total
        if total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / total for c in self.counts)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {"name": self.name, "edges": list(self.edges), "counts": list(self.counts)}


def describe(column: Column) -> ColumnSummary:
    """Summary statistics (count/min/max/median/mean/std) of a numeric column.

    Missing values are excluded.  ``std`` is the population standard
    deviation (ddof=0), matching what the stability widget uses on score
    distributions.
    """
    numeric = column.as_numeric()
    values = numeric.dropna_values()
    if values.size == 0:
        nan = float("nan")
        return ColumnSummary(numeric.name, 0, nan, nan, nan, nan, nan)
    return ColumnSummary(
        name=numeric.name,
        count=int(values.size),
        minimum=float(values.min()),
        maximum=float(values.max()),
        median=float(np.median(values)),
        mean=float(values.mean()),
        std=float(values.std(ddof=0)),
    )


def describe_table(table: Table) -> list[ColumnSummary]:
    """Summaries of every numeric column, in display order."""
    return [describe(table.column(name)) for name in table.numeric_column_names()]


def histogram(column: Column, bins: int = 10) -> Histogram:
    """Fixed-width histogram of a numeric column (missing values dropped).

    Raises
    ------
    ColumnTypeError
        If the column is categorical (use
        :meth:`~repro.tabular.column.CategoricalColumn.counts` instead).
    EmptyTableError
        If no non-missing values exist.
    ValueError
        If ``bins`` is not positive.
    """
    if bins <= 0:
        raise ValueError(f"histogram needs bins >= 1, got {bins}")
    numeric: NumericColumn = column.as_numeric()
    values = numeric.dropna_values()
    if values.size == 0:
        raise EmptyTableError(
            f"cannot build a histogram of {column.name!r}: no non-missing values"
        )
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        # one degenerate bin covering the single value
        return Histogram(numeric.name, (lo, hi), (int(values.size),))
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    return Histogram(
        numeric.name,
        tuple(float(e) for e in edges),
        tuple(int(c) for c in counts),
    )
