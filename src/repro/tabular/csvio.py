"""CSV input/output for :class:`repro.tabular.table.Table`.

The demo paper's workflow starts from "a fully populated table in CSV
format" uploaded by the user (paper §3).  This module is the
corresponding ingestion path: it parses CSV with the stdlib ``csv``
module, validates rectangularity, and infers per-column types
(:func:`repro.tabular.column.infer_column`).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping

from repro.errors import CSVFormatError
from repro.tabular.column import CategoricalColumn, infer_column
from repro.tabular.table import Table

__all__ = ["read_csv", "read_csv_text", "write_csv", "write_csv_text"]


def read_csv_text(
    text: str,
    delimiter: str = ",",
    type_overrides: Mapping[str, str] | None = None,
) -> Table:
    """Parse CSV content from a string into a :class:`Table`.

    Parameters
    ----------
    text:
        The CSV payload, header row first.
    delimiter:
        Field separator (defaults to comma).
    type_overrides:
        Optional ``{column: "numeric"|"categorical"}`` forcing a column's
        type instead of inferring it.  Forcing ``numeric`` on a column
        with non-numeric cells raises :class:`~repro.errors.CSVFormatError`.

    Raises
    ------
    CSVFormatError
        On an empty payload, a duplicate/blank header, or ragged rows.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise CSVFormatError("empty CSV: no header row") from None
    header = [h.strip() for h in header]
    if any(not h for h in header):
        raise CSVFormatError("header contains a blank column name", line_number=1)
    if len(set(header)) != len(header):
        dupes = sorted({h for h in header if header.count(h) > 1})
        raise CSVFormatError(
            f"duplicate header names: {', '.join(dupes)}", line_number=1
        )

    rows: list[list[str]] = []
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue  # genuinely blank line (csv yields an empty list)
        if len(row) != len(header) and all(cell.strip() == "" for cell in row):
            continue  # whitespace-only line that isn't a data row
        if len(row) != len(header):
            raise CSVFormatError(
                f"expected {len(header)} cells, found {len(row)}",
                line_number=line_number,
            )
        rows.append([cell.strip() for cell in row])

    overrides = dict(type_overrides or {})
    unknown = set(overrides) - set(header)
    if unknown:
        raise CSVFormatError(
            f"type override for unknown column(s): {', '.join(sorted(unknown))}"
        )

    columns = []
    for j, name in enumerate(header):
        raw = [row[j] for row in rows]
        forced = overrides.get(name)
        if forced is None:
            columns.append(infer_column(name, raw))
        elif forced == "categorical":
            columns.append(CategoricalColumn(name, raw))
        elif forced == "numeric":
            inferred = infer_column(name, raw)
            if inferred.kind != "numeric":
                bad = next(
                    cell for cell in raw if cell and infer_column("_", [cell]).kind != "numeric"
                )
                raise CSVFormatError(
                    f"column {name!r} forced numeric but contains {bad!r}"
                )
            columns.append(inferred)
        else:
            raise CSVFormatError(
                f"unknown type override {forced!r} for column {name!r} "
                "(use 'numeric' or 'categorical')"
            )
    return Table(columns)


def read_csv(
    path: str | Path,
    delimiter: str = ",",
    type_overrides: Mapping[str, str] | None = None,
) -> Table:
    """Read a CSV file from disk into a :class:`Table`.

    See :func:`read_csv_text` for parsing semantics.
    """
    payload = Path(path).read_text(encoding="utf-8")
    return read_csv_text(payload, delimiter=delimiter, type_overrides=type_overrides)


def _format_cell(value: object) -> str:
    if isinstance(value, float):  # includes numpy float64
        value = float(value)
        if value != value:  # NaN
            return ""
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)  # shortest round-tripping decimal form
    return str(value)


def write_csv_text(table: Table, delimiter: str = ",") -> str:
    """Serialize a table to CSV text (header first, missing cells blank)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.column_names)
    for row in table.iter_rows():
        writer.writerow([_format_cell(row[name]) for name in table.column_names])
    return buffer.getvalue()


def write_csv(table: Table, path: str | Path, delimiter: str = ",") -> None:
    """Write a table to a CSV file on disk."""
    Path(path).write_text(write_csv_text(table, delimiter=delimiter), encoding="utf-8")
