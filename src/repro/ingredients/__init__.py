"""Attribute importance (the Ingredients widget's engine).

"The Ingredients widget lists attributes most material to the ranked
outcome, in order of importance ... Such associations can be derived
with linear models or with other methods" (paper §2.1).
"""

from repro.ingredients.importance import (
    AttributeImportance,
    IngredientsAnalysis,
    correlation_importance,
    ingredients,
    linear_model_importance,
)

__all__ = [
    "AttributeImportance",
    "IngredientsAnalysis",
    "correlation_importance",
    "linear_model_importance",
    "ingredients",
]
