"""Estimating which attributes drive a ranked outcome.

Two estimators, matching the paper's two suggestions:

- :func:`correlation_importance` — rank correlation (Spearman's rho)
  between each attribute and the ranking's scores; model-free, the
  widget default.  This is what exposes Figure 1's finding that "GRE
  is one of the scoring attributes, but it does not correlate with the
  ranked outcome".
- :func:`linear_model_importance` — "for a linear model, this list
  could present the attributes with the highest learned weights": an
  OLS fit of the score on standardized attributes; the absolute
  standardized coefficients are the importances.

Both return importances in [0, 1]-comparable magnitudes with a signed
``direction`` so the detailed widget can say *how* an attribute is
associated (more faculty -> higher rank vs. lower).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import RankingFactsError
from repro.ranking.ranker import Ranking
from repro.stats.correlation import spearman_rho

__all__ = [
    "AttributeImportance",
    "IngredientsAnalysis",
    "correlation_importance",
    "linear_model_importance",
    "ingredients",
]


@dataclass(frozen=True)
class AttributeImportance:
    """One attribute's influence on the outcome.

    ``importance`` is a non-negative magnitude (larger = more material
    to the outcome); ``direction`` is the signed underlying statistic
    (correlation or standardized coefficient).
    """

    attribute: str
    importance: float
    direction: float
    method: str

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "importance": self.importance,
            "direction": self.direction,
            "method": self.method,
        }


@dataclass(frozen=True)
class IngredientsAnalysis:
    """All attribute importances, sorted most-material first."""

    method: str
    importances: tuple[AttributeImportance, ...]

    def top(self, n: int = 3) -> tuple[AttributeImportance, ...]:
        """The ``n`` most important attributes (the overview widget)."""
        if n < 1:
            raise ValueError(f"top() needs n >= 1, got {n}")
        return self.importances[:n]

    def importance_of(self, attribute: str) -> AttributeImportance:
        """Lookup by name (raises when the attribute was not analyzed)."""
        for item in self.importances:
            if item.attribute == attribute:
                return item
        raise RankingFactsError(
            f"attribute {attribute!r} was not part of this analysis"
        )

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "method": self.method,
            "importances": [imp.as_dict() for imp in self.importances],
        }


def _candidate_attributes(
    ranking: Ranking, attributes: Sequence[str] | None
) -> tuple[str, ...]:
    if attributes is not None:
        chosen = tuple(attributes)
        for name in chosen:
            ranking.table.numeric_column(name)  # raise early on bad names
        if not chosen:
            raise RankingFactsError("ingredients need at least one attribute")
        return chosen
    names = ranking.table.numeric_column_names()
    if not names:
        raise RankingFactsError("the ranked table has no numeric attributes")
    return names


def _paired_without_missing(
    values: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    keep = ~(np.isnan(values) | np.isnan(scores))
    return values[keep], scores[keep]


def correlation_importance(
    ranking: Ranking, attributes: Sequence[str] | None = None
) -> IngredientsAnalysis:
    """Spearman correlation of each attribute with the ranking's scores.

    Missing attribute values are dropped pairwise; an attribute that is
    constant (or has fewer than two observed values) gets importance 0.
    Sorting is by importance descending, ties broken by attribute name
    for determinism.
    """
    chosen = _candidate_attributes(ranking, attributes)
    scores = ranking.scores
    results: list[AttributeImportance] = []
    for name in chosen:
        values, paired_scores = _paired_without_missing(
            ranking.table.numeric_column(name).values, scores
        )
        if values.size < 2 or np.all(values == values[0]):
            rho = 0.0
        else:
            rho = spearman_rho(values, paired_scores)
        results.append(
            AttributeImportance(
                attribute=name,
                importance=abs(rho),
                direction=rho,
                method="spearman",
            )
        )
    results.sort(key=lambda item: (-item.importance, item.attribute))
    return IngredientsAnalysis(method="spearman", importances=tuple(results))


def linear_model_importance(
    ranking: Ranking, attributes: Sequence[str] | None = None
) -> IngredientsAnalysis:
    """OLS of the score on standardized attributes; |coefficient| ranks.

    Rows with any missing chosen attribute are dropped (listwise).
    Standardizing the design matrix makes coefficients comparable
    across attribute scales; constant attributes get coefficient 0.
    """
    chosen = _candidate_attributes(ranking, attributes)
    scores = ranking.scores
    matrix = np.column_stack(
        [ranking.table.numeric_column(name).values for name in chosen]
    )
    keep = ~(np.isnan(matrix).any(axis=1) | np.isnan(scores))
    matrix = matrix[keep]
    y = scores[keep]
    if matrix.shape[0] < len(chosen) + 1:
        raise RankingFactsError(
            f"linear importance needs more complete rows ({matrix.shape[0]}) "
            f"than attributes ({len(chosen)})"
        )
    stds = matrix.std(axis=0, ddof=0)
    means = matrix.mean(axis=0)
    usable = stds > 0.0
    standardized = np.zeros_like(matrix)
    standardized[:, usable] = (matrix[:, usable] - means[usable]) / stds[usable]
    design = np.column_stack([standardized, np.ones(matrix.shape[0])])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    results = []
    for j, name in enumerate(chosen):
        coef = float(coefficients[j]) if usable[j] else 0.0
        results.append(
            AttributeImportance(
                attribute=name,
                importance=abs(coef),
                direction=coef,
                method="linear-model",
            )
        )
    results.sort(key=lambda item: (-item.importance, item.attribute))
    return IngredientsAnalysis(method="linear-model", importances=tuple(results))


def ingredients(
    ranking: Ranking,
    attributes: Sequence[str] | None = None,
    method: str = "spearman",
) -> IngredientsAnalysis:
    """The widget's entry point: importance analysis by method name.

    ``method`` is ``"spearman"`` (default) or ``"linear-model"``.
    """
    if method == "spearman":
        return correlation_importance(ranking, attributes)
    if method == "linear-model":
        return linear_model_importance(ranking, attributes)
    raise RankingFactsError(
        f"unknown ingredients method {method!r}; use 'spearman' or 'linear-model'"
    )
