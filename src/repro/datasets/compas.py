"""A COMPAS-like criminal-risk dataset (ProPublica schema, synthesized).

The paper's second demo scenario: "a dataset collected and published by
ProPublica as part of their investigation into racial bias in criminal
risk assessment software called COMPAS ... demographics, recidivism
scores produced by COMPAS, and criminal offense information for 6,889
individuals" (§3).

The generator reproduces the fields a Ranking-Facts audit touches and
the statistical regularities ProPublica documented:

- ``decile_score`` (1..10): the COMPAS risk decile.  Group means differ
  by race — African-American defendants skew higher — which is the bias
  signal the audit should surface when ranking by risk.
- ``priors_count``: correlated with the decile score (the legitimate
  signal component).
- ``age``: younger defendants receive higher scores.
- ``race`` with ProPublica's category mix, ``sex`` ~81% male,
  ``two_year_recid`` drawn with probability increasing in the decile.

Absolute distributions are synthetic; what the benchmarks rely on is
the *direction and rough magnitude* of the group skew (ProPublica
reported African-American defendants' mean decile ≈ 5.4 vs Caucasian
≈ 3.7; the generator targets that gap).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DEFAULT_SEED
from repro.errors import DatasetError
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.schema import ColumnSpec, Schema
from repro.tabular.table import Table

__all__ = ["compas", "COMPAS_SCHEMA"]

#: Row count of ProPublica's two-year-recidivism cohort as cited by the paper.
NUM_DEFENDANTS = 6889

_RACES = (
    "African-American",
    "Caucasian",
    "Hispanic",
    "Other",
    "Asian",
    "Native American",
)
#: Category mix of the ProPublica cohort (approximate published shares).
_RACE_WEIGHTS = (0.514, 0.340, 0.088, 0.045, 0.005, 0.008)

#: Mean decile shift per race relative to the Caucasian baseline.
_RACE_SCORE_SHIFT = {
    "African-American": 1.7,
    "Caucasian": 0.0,
    "Hispanic": 0.1,
    "Other": -0.2,
    "Asian": -0.4,
    "Native American": 0.9,
}

COMPAS_SCHEMA = Schema.of(
    ColumnSpec("defendant_id", "categorical"),
    ColumnSpec("sex", "categorical", allowed_categories=("Male", "Female")),
    ColumnSpec("race", "categorical", allowed_categories=_RACES),
    ColumnSpec("age", "numeric", minimum=18.0, maximum=96.0),
    ColumnSpec("priors_count", "numeric", minimum=0.0),
    ColumnSpec("decile_score", "numeric", minimum=1.0, maximum=10.0),
    ColumnSpec("two_year_recid", "categorical", allowed_categories=("yes", "no")),
)


def compas(n: int = NUM_DEFENDANTS, seed: int = DEFAULT_SEED) -> Table:
    """Generate the COMPAS-like table (see the module docstring).

    Parameters
    ----------
    n:
        Number of defendants (default 6,889, the cohort size the paper
        cites).
    seed:
        RNG seed for determinism.
    """
    if n < 10:
        raise DatasetError(f"compas needs n >= 10, got {n}")
    rng = np.random.default_rng(seed)

    race = rng.choice(_RACES, size=n, p=_RACE_WEIGHTS)
    sex = rng.choice(["Male", "Female"], size=n, p=[0.81, 0.19])
    age = np.clip(np.round(rng.gamma(shape=4.0, scale=8.5, size=n) + 18), 18, 96)
    priors = np.clip(np.round(rng.gamma(shape=0.9, scale=3.6, size=n)), 0, 38)

    shift = np.asarray([_RACE_SCORE_SHIFT[r] for r in race])
    # latent risk: priors raise it, age lowers it, race shifts it (the bias)
    latent = (
        3.7
        + shift
        + 0.28 * priors
        - 0.045 * (age - 35)
        + rng.normal(0.0, 1.9, size=n)
    )
    decile = np.clip(np.round(latent), 1, 10)

    recid_probability = np.clip(0.08 + 0.052 * decile, 0.0, 0.95)
    recid = rng.random(n) < recid_probability

    table = Table(
        [
            CategoricalColumn("defendant_id", [f"D{i + 1:05d}" for i in range(n)]),
            CategoricalColumn("sex", sex),
            CategoricalColumn("race", race),
            NumericColumn("age", age.astype(np.float64)),
            NumericColumn("priors_count", priors.astype(np.float64)),
            NumericColumn("decile_score", decile.astype(np.float64)),
            CategoricalColumn("two_year_recid", ["yes" if r else "no" for r in recid]),
        ]
    )
    return COMPAS_SCHEMA.validate(table)
