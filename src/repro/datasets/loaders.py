"""Dataset registry and CSV loading.

The demo's opening choice — "choose one of these datasets, or ... upload
one of their own (as a fully populated table in CSV format)" (paper §3)
— maps to :func:`dataset_by_name` for the built-ins and
:func:`load_csv_dataset` for user files.
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.compas import COMPAS_SCHEMA, compas
from repro.datasets.csdepts import CS_DEPARTMENTS_SCHEMA, cs_departments
from repro.datasets.german_credit import GERMAN_CREDIT_SCHEMA, german_credit
from repro.errors import DatasetError
from repro.tabular.csvio import read_csv
from repro.tabular.schema import Schema
from repro.tabular.table import Table

__all__ = ["list_datasets", "dataset_by_name", "load_csv_dataset", "schema_by_name"]

_BUILTINS = {
    "cs-departments": (cs_departments, CS_DEPARTMENTS_SCHEMA),
    "compas": (compas, COMPAS_SCHEMA),
    "german-credit": (german_credit, GERMAN_CREDIT_SCHEMA),
}


def list_datasets() -> tuple[str, ...]:
    """Names of the built-in demo datasets."""
    return tuple(_BUILTINS)


def dataset_by_name(name: str, **kwargs) -> Table:
    """Instantiate a built-in dataset by its registry name.

    ``kwargs`` forward to the generator (``n``, ``seed``).

    >>> dataset_by_name("cs-departments").num_rows
    51
    """
    try:
        generator, _ = _BUILTINS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(_BUILTINS)}"
        ) from None
    return generator(**kwargs)


def schema_by_name(name: str) -> Schema:
    """The schema a built-in dataset conforms to."""
    try:
        _, schema = _BUILTINS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(_BUILTINS)}"
        ) from None
    return schema


def load_csv_dataset(
    path: str | Path,
    schema: Schema | None = None,
    min_rows: int = 2,
) -> Table:
    """Load a user-supplied CSV as a dataset, with basic fitness checks.

    Parameters
    ----------
    path:
        CSV file (header row first).
    schema:
        Optional schema to validate against (e.g.
        ``schema_by_name("compas")`` when loading the real ProPublica
        export).
    min_rows:
        Smallest usable dataset (rankings of fewer rows are rejected).

    Raises
    ------
    DatasetError
        On unusable files; the underlying parse/validation error is
        chained for detail.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DatasetError(f"dataset file not found: {file_path}")
    table = read_csv(file_path)
    if table.num_rows < min_rows:
        raise DatasetError(
            f"dataset {file_path.name} has {table.num_rows} row(s); "
            f"need at least {min_rows}"
        )
    if not table.numeric_column_names():
        raise DatasetError(
            f"dataset {file_path.name} has no numeric columns; "
            "nothing can be scored"
        )
    if schema is not None:
        schema.validate(table)
    return table
