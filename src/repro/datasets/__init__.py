"""Built-in datasets: the paper's three demo scenarios (§3), synthesized.

The originals are network resources (CSRankings+NRC, ProPublica's
COMPAS export, the UCI German Credit file).  In this offline
reproduction each is replaced by a generator that reproduces the
published schema, size, and — critically — the correlation structure
the paper's narrative depends on (see each module's docstring and
DESIGN.md §4 for the substitution argument).  Real files, if you have
them, load through :func:`load_csv_dataset` unchanged.

- :func:`cs_departments` — 51 CS departments: PubCount, Faculty, GRE,
  Region, DeptSizeBin (paper's running example);
- :func:`compas` — 6,889 criminal-risk rows in ProPublica's schema;
- :func:`german_credit` — 1,000 credit applicants in the UCI schema.
"""

from repro.datasets.compas import compas, COMPAS_SCHEMA
from repro.datasets.csdepts import cs_departments, CS_DEPARTMENTS_SCHEMA
from repro.datasets.german_credit import german_credit, GERMAN_CREDIT_SCHEMA
from repro.datasets.loaders import dataset_by_name, list_datasets, load_csv_dataset
from repro.datasets.synthetic import ranked_labels_table, synthetic_scores_table

__all__ = [
    "cs_departments",
    "CS_DEPARTMENTS_SCHEMA",
    "compas",
    "COMPAS_SCHEMA",
    "german_credit",
    "GERMAN_CREDIT_SCHEMA",
    "load_csv_dataset",
    "dataset_by_name",
    "list_datasets",
    "synthetic_scores_table",
    "ranked_labels_table",
]
