"""The CS-departments dataset (the paper's running example).

The original combines CS Rankings with NRC assessment attributes
(paper §3): *PubCount* — "the geometric mean of the adjusted number of
publications in each area by institution"; *Faculty* — department
faculty count; *GRE* — average GRE scores (2004–2006); *Region* — one
of NE, MW, SA, SC, W.  The walkthrough also uses *DeptSizeBin*, the
binary large/small split of department size that serves as the
sensitive attribute in Figure 1.

This generator reproduces the structure the paper's findings rest on:

1. **PubCount and Faculty are strongly positively correlated** (bigger
   departments publish more) — so size dominates any quality ranking
   and the top-10 is all-large ("only large departments are present in
   the top-10", §2.4), making `DeptSizeBin=small` unfair under the
   widget's measures.
2. **GRE is essentially independent of both** — admissions test
   averages vary little across strong departments, reproducing §3's
   finding that "GRE is one of the scoring attributes, but it does not
   correlate with the ranked outcome" and that its "range ... and the
   median ... are very similar in the top-10 and overall".
3. **Region is uninformative about quality** but unevenly distributed,
   mirroring US geography (NE-heavy), so the Diversity widget has a
   non-trivial regional pie.

Magnitudes follow the public data: PubCount is a geometric-mean index
in roughly [1, 30]; Faculty between ~15 and ~90; GRE quantitative
averages in the high 150s-160s.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DEFAULT_SEED
from repro.errors import DatasetError
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.schema import ColumnSpec, Schema
from repro.tabular.table import Table

__all__ = ["cs_departments", "CS_DEPARTMENTS_SCHEMA"]

#: The number of departments in the paper's demo table.
NUM_DEPARTMENTS = 51

_REGIONS = ("NE", "MW", "SA", "SC", "W")
#: Regional mix loosely following the distribution of US CS departments.
_REGION_WEIGHTS = (0.32, 0.22, 0.16, 0.10, 0.20)

CS_DEPARTMENTS_SCHEMA = Schema.of(
    ColumnSpec("DeptName", "categorical"),
    ColumnSpec("PubCount", "numeric", minimum=0.0),
    ColumnSpec("Faculty", "numeric", minimum=1.0),
    ColumnSpec("GRE", "numeric", minimum=130.0, maximum=170.0),
    ColumnSpec("Region", "categorical", allowed_categories=_REGIONS),
    ColumnSpec("DeptSizeBin", "categorical", allowed_categories=("large", "small")),
)


def cs_departments(n: int = NUM_DEPARTMENTS, seed: int = DEFAULT_SEED) -> Table:
    """Generate the CS-departments table.

    Parameters
    ----------
    n:
        Number of departments (default 51, the demo's size).
    seed:
        RNG seed; the default makes Figure-1 reproduction deterministic.

    Returns
    -------
    A table conforming to :data:`CS_DEPARTMENTS_SCHEMA`.
    """
    if n < 4:
        raise DatasetError(f"cs_departments needs n >= 4, got {n}")
    rng = np.random.default_rng(seed)

    # latent department size drives Faculty and PubCount jointly
    latent_size = rng.lognormal(mean=3.6, sigma=0.45, size=n)  # ~ faculty scale
    faculty = np.clip(np.round(latent_size), 12, 120)
    # publications grow with faculty, with productivity noise
    productivity = rng.lognormal(mean=-1.35, sigma=0.35, size=n)
    pub_count = np.round(faculty * productivity, 1)
    pub_count = np.clip(pub_count, 0.5, None)
    # GRE: tight distribution, independent of size
    gre = np.round(rng.normal(loc=161.0, scale=2.2, size=n), 1)
    gre = np.clip(gre, 150.0, 170.0)
    region = rng.choice(_REGIONS, size=n, p=_REGION_WEIGHTS)
    median_faculty = float(np.median(faculty))
    size_bin = ["large" if f >= median_faculty else "small" for f in faculty]

    names = [f"Dept{i + 1:02d}" for i in range(n)]
    # assembled the way the paper describes: the CSRankings part is
    # "augmented with attributes from the NRC dataset" — a join on the
    # department identifier
    csrankings = Table(
        [
            CategoricalColumn("DeptName", names),
            NumericColumn("PubCount", pub_count),
            NumericColumn("Faculty", faculty.astype(np.float64)),
        ]
    )
    nrc = Table(
        [
            CategoricalColumn("DeptName", names),
            NumericColumn("GRE", gre),
            CategoricalColumn("Region", region),
        ]
    )
    table = csrankings.join(nrc, on="DeptName").with_column(
        CategoricalColumn("DeptSizeBin", size_bin)
    )
    return CS_DEPARTMENTS_SCHEMA.validate(table)
