"""Generic synthetic tables for tests and benchmarks.

Two building blocks used across the harness:

- :func:`synthetic_scores_table` — n items with a configurable number
  of correlated numeric attributes and one binary group whose score
  advantage is a parameter (the knob the fairness benchmarks sweep);
- :func:`ranked_labels_table` — wrap a protected-label vector from the
  generative model into a ranked table, so label-level code can audit
  rankings of known, controlled unfairness.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.table import Table

__all__ = ["synthetic_scores_table", "ranked_labels_table", "DEFAULT_SEED"]

#: The fixed seed every built-in dataset uses (the paper's SIGMOD date).
DEFAULT_SEED = 20180610


def synthetic_scores_table(
    n: int,
    num_attributes: int = 3,
    group_proportion: float = 0.5,
    group_advantage: float = 0.0,
    noise: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> Table:
    """A table of n items with numeric attributes and a binary group.

    Attributes are standard normal plus ``group_advantage`` for members
    of group "a" (so positive advantage pushes group "a" up any
    monotone ranking), with attribute-specific noise scaled by
    ``noise``.  Columns: ``item`` (id), ``group`` ("a"/"b"),
    ``attr_1..attr_m``.

    Raises
    ------
    DatasetError
        On a non-positive size, empty group, or bad parameters.
    """
    if n < 2:
        raise DatasetError(f"need at least 2 items, got {n}")
    if num_attributes < 1:
        raise DatasetError(f"need at least 1 attribute, got {num_attributes}")
    if not 0.0 < group_proportion < 1.0:
        raise DatasetError(
            f"group proportion must be inside (0, 1), got {group_proportion}"
        )
    if noise < 0.0:
        raise DatasetError(f"noise must be non-negative, got {noise}")
    rng = np.random.default_rng(seed)
    n_a = int(round(n * group_proportion))
    if n_a == 0 or n_a == n:
        raise DatasetError(
            f"group proportion {group_proportion} leaves a group empty at n={n}"
        )
    groups = np.asarray(["a"] * n_a + ["b"] * (n - n_a), dtype=object)
    rng.shuffle(groups)
    advantage = np.where(groups == "a", group_advantage, 0.0)
    base = rng.normal(0.0, 1.0, size=n)
    columns = [
        CategoricalColumn("item", [f"item-{i:05d}" for i in range(n)]),
        CategoricalColumn("group", groups),
    ]
    for j in range(num_attributes):
        values = base + advantage + rng.normal(0.0, noise, size=n)
        columns.append(NumericColumn(f"attr_{j + 1}", values))
    return Table(columns)


def ranked_labels_table(labels, scores=None) -> Table:
    """A ranked table from a protected-label vector (True = protected).

    ``scores`` default to a strictly decreasing sequence so the row
    order *is* the rank order.  Columns: ``item``, ``group``
    ("protected"/"other"), ``score``.
    """
    arr = np.asarray(labels, dtype=bool)
    if arr.ndim != 1 or arr.size == 0:
        raise DatasetError("labels must be a non-empty 1-d boolean vector")
    n = arr.size
    if scores is None:
        score_values = np.linspace(float(n), 1.0, n)
    else:
        score_values = np.asarray(scores, dtype=np.float64)
        if score_values.shape != (n,):
            raise DatasetError(
                f"scores have shape {score_values.shape}, labels have {arr.shape}"
            )
    return Table(
        [
            CategoricalColumn("item", [f"item-{i:05d}" for i in range(n)]),
            CategoricalColumn(
                "group", ["protected" if flag else "other" for flag in arr]
            ),
            NumericColumn("score", score_values),
        ]
    )
