"""A German-Credit-like dataset (UCI schema, synthesized).

The paper's third demo scenario: "the German Credit dataset from the
UCI Machine Learning Repository, with demographic and financial
information on 1000 individuals" (§3).

The generator reproduces the audit-relevant structure of the UCI file:

- 1,000 applicants; ``credit_risk`` good/bad at the original 70/30
  split;
- ``sex`` derived the way the fairness literature uses this dataset
  (personal-status field → male/female, ~69% male);
- ``age`` skewed young (median ~33); younger applicants are riskier —
  "age below 25" is the canonical protected feature for this data;
- ``credit_amount`` log-normal (median ~2,300 DM with a long tail),
  ``duration`` in months correlated with the amount;
- a ``credit_score`` in [0, 100] (higher = more creditworthy) so the
  dataset supports score-based ranking out of the box, decreasing with
  risk factors and slightly with the young-age/female effects the
  fairness benchmarks look for.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DEFAULT_SEED
from repro.errors import DatasetError
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.schema import ColumnSpec, Schema
from repro.tabular.table import Table

__all__ = ["german_credit", "GERMAN_CREDIT_SCHEMA"]

#: Row count of the UCI file.
NUM_APPLICANTS = 1000

GERMAN_CREDIT_SCHEMA = Schema.of(
    ColumnSpec("applicant_id", "categorical"),
    ColumnSpec("sex", "categorical", allowed_categories=("male", "female")),
    ColumnSpec("age", "numeric", minimum=18.0, maximum=80.0),
    ColumnSpec("AgeGroup", "categorical", allowed_categories=("young", "adult")),
    ColumnSpec("credit_amount", "numeric", minimum=100.0),
    ColumnSpec("duration_months", "numeric", minimum=4.0, maximum=72.0),
    ColumnSpec("credit_score", "numeric", minimum=0.0, maximum=100.0),
    ColumnSpec("credit_risk", "categorical", allowed_categories=("good", "bad")),
)


def german_credit(n: int = NUM_APPLICANTS, seed: int = DEFAULT_SEED) -> Table:
    """Generate the German-Credit-like table (see the module docstring).

    Parameters
    ----------
    n:
        Number of applicants (default 1,000, the UCI file's size).
    seed:
        RNG seed for determinism.
    """
    if n < 10:
        raise DatasetError(f"german_credit needs n >= 10, got {n}")
    rng = np.random.default_rng(seed)

    sex = rng.choice(["male", "female"], size=n, p=[0.69, 0.31])
    age = np.clip(np.round(rng.lognormal(mean=3.52, sigma=0.28, size=n)), 18, 80)
    age_group = ["young" if a < 25 else "adult" for a in age]
    credit_amount = np.round(rng.lognormal(mean=7.75, sigma=0.85, size=n), 0)
    credit_amount = np.clip(credit_amount, 100, None)
    duration = np.clip(
        np.round(4 + credit_amount / 400.0 + rng.normal(0, 6, size=n)), 4, 72
    )

    # latent creditworthiness: age helps (to a point), big/long loans hurt,
    # with mild sex and youth penalties (the biases audits look for)
    young = np.asarray([1.0 if g == "young" else 0.0 for g in age_group])
    female = np.asarray([1.0 if s == "female" else 0.0 for s in sex])
    latent = (
        55.0
        + 0.45 * np.minimum(age, 55)
        - 4.5 * np.log(credit_amount / 1000.0 + 1.0)
        - 0.22 * duration
        - 6.0 * young
        - 2.5 * female
        + rng.normal(0.0, 9.0, size=n)
    )
    credit_score = np.clip(np.round(latent, 1), 0.0, 100.0)

    # good/bad at the UCI 70/30 split, driven by the same latent score
    threshold = float(np.quantile(credit_score, 0.30))
    noise = rng.normal(0.0, 4.0, size=n)
    risk = ["good" if s + e > threshold else "bad" for s, e in zip(credit_score, noise)]

    table = Table(
        [
            CategoricalColumn("applicant_id", [f"A{i + 1:04d}" for i in range(n)]),
            CategoricalColumn("sex", sex),
            NumericColumn("age", age.astype(np.float64)),
            CategoricalColumn("AgeGroup", age_group),
            NumericColumn("credit_amount", credit_amount),
            NumericColumn("duration_months", duration.astype(np.float64)),
            NumericColumn("credit_score", credit_score),
            CategoricalColumn("credit_risk", risk),
        ]
    )
    return GERMAN_CREDIT_SCHEMA.validate(table)
