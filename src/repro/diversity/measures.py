"""Category proportions and diversity aggregates over rankings.

The widget's core artifact is the pair of pie charts — category
proportions in the top-10 versus the whole ranking
(:func:`top_k_vs_overall`).  On top of the proportions we expose the
standard diversity aggregates (Shannon entropy, richness) so the
benchmark harness can summarize a breakdown in one number, and a
``missing_categories`` view that names what the top-k lost — the
paper's walkthrough observation that "only large departments are
present in the top-10" is precisely this set being non-empty.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import FairnessConfigError
from repro.ranking.ranker import Ranking

__all__ = [
    "CategoryBreakdown",
    "DiversityReport",
    "category_breakdown",
    "top_k_vs_overall",
    "diversity_report",
    "entropy",
    "normalized_entropy",
    "richness",
]


def entropy(proportions: Sequence[float]) -> float:
    """Shannon entropy (bits) of a category distribution.

    Zero-probability categories contribute nothing; proportions must be
    non-negative and sum to ~1.
    """
    props = list(proportions)
    if not props:
        return 0.0
    if any(p < 0 for p in props):
        raise ValueError("proportions must be non-negative")
    total = sum(props)
    if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
        raise ValueError(f"proportions must sum to 1, got {total:g}")
    return -sum(p * math.log2(p) for p in props if p > 0.0)


def normalized_entropy(proportions: Sequence[float]) -> float:
    """Entropy divided by its maximum ``log2(m)``; 1 = perfectly even.

    Defined as 1.0 for a single category (nothing can be uneven).
    """
    props = [p for p in proportions if p > 0.0]
    if len(props) <= 1:
        # validate even in the degenerate case
        entropy(list(proportions))
        return 1.0
    return entropy(list(proportions)) / math.log2(len(props))


def richness(proportions: Sequence[float]) -> int:
    """Number of categories actually present (proportion > 0)."""
    if any(p < 0 for p in proportions):
        raise ValueError("proportions must be non-negative")
    return sum(1 for p in proportions if p > 0.0)


@dataclass(frozen=True)
class CategoryBreakdown:
    """Proportions of each category within one slice of a ranking.

    ``proportions`` preserves the attribute's first-appearance category
    order from the *full* ranking, so top-k and overall breakdowns of
    the same attribute always have aligned keys (absent categories
    appear with proportion 0.0 — that alignment is what makes the two
    pie charts comparable).
    """

    attribute: str
    slice_name: str
    counts: dict[str, int]
    proportions: dict[str, float]

    @property
    def total(self) -> int:
        """Number of items in this slice (non-missing only)."""
        return sum(self.counts.values())

    def entropy(self) -> float:
        """Shannon entropy of this slice's distribution."""
        return entropy(list(self.proportions.values()))

    def normalized_entropy(self) -> float:
        """Evenness in [0, 1] relative to the categories present."""
        return normalized_entropy(list(self.proportions.values()))

    def richness(self) -> int:
        """Number of categories present in this slice."""
        return richness(list(self.proportions.values()))

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "slice": self.slice_name,
            "counts": dict(self.counts),
            "proportions": dict(self.proportions),
            "entropy": self.entropy(),
            "richness": self.richness(),
        }


def category_breakdown(
    ranking: Ranking,
    attribute: str,
    k: int | None = None,
    category_order: Sequence[str] | None = None,
) -> CategoryBreakdown:
    """Category counts and proportions in the top-k (or whole) ranking.

    Parameters
    ----------
    ranking:
        The ranking to slice.
    attribute:
        Categorical attribute to break down.
    k:
        Slice size; ``None`` means the whole ranking.
    category_order:
        Key order for the output dicts; defaults to the attribute's
        categories in the sliced view.  Categories listed here but
        absent from the slice appear with count 0.
    """
    view = ranking if k is None else ranking.top_k(k)
    column = view.table.categorical_column(attribute)
    counts = column.counts()
    if category_order is not None:
        counts = {cat: counts.get(cat, 0) for cat in category_order}
    total = sum(counts.values())
    if total == 0:
        raise FairnessConfigError(
            f"attribute {attribute!r} has no known categories in this slice"
        )
    proportions = {cat: cnt / total for cat, cnt in counts.items()}
    return CategoryBreakdown(
        attribute=attribute,
        slice_name="overall" if k is None else f"top-{view.size}",
        counts=counts,
        proportions=proportions,
    )


@dataclass(frozen=True)
class DiversityReport:
    """The Diversity widget's payload for one attribute: both pie charts."""

    attribute: str
    top_k: CategoryBreakdown
    overall: CategoryBreakdown

    def missing_categories(self) -> tuple[str, ...]:
        """Categories present overall but absent from the top-k.

        Figure 1's finding — "only large departments are present in the
        top-10" — surfaces here as ``("small",)``.
        """
        return tuple(
            cat
            for cat, proportion in self.overall.proportions.items()
            if proportion > 0.0 and self.top_k.proportions.get(cat, 0.0) == 0.0
        )

    def representation_gap(self) -> dict[str, float]:
        """Per-category ``top_k share - overall share`` (signed)."""
        return {
            cat: self.top_k.proportions.get(cat, 0.0) - share
            for cat, share in self.overall.proportions.items()
        }

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for serialization."""
        return {
            "attribute": self.attribute,
            "top_k": self.top_k.as_dict(),
            "overall": self.overall.as_dict(),
            "missing_categories": list(self.missing_categories()),
            "representation_gap": self.representation_gap(),
        }


def top_k_vs_overall(ranking: Ranking, attribute: str, k: int = 10) -> DiversityReport:
    """Build the widget's top-k vs overall contrast for one attribute."""
    if k < 1:
        raise FairnessConfigError(f"k must be >= 1, got {k}")
    overall = category_breakdown(ranking, attribute, k=None)
    order = tuple(overall.proportions)
    top = category_breakdown(ranking, attribute, k=k, category_order=order)
    return DiversityReport(attribute=attribute, top_k=top, overall=overall)


def diversity_report(
    ranking: Ranking, attributes: Sequence[str], k: int = 10
) -> list[DiversityReport]:
    """One :class:`DiversityReport` per attribute (the full widget)."""
    if not attributes:
        raise FairnessConfigError("diversity_report needs at least one attribute")
    return [top_k_vs_overall(ranking, attr, k=k) for attr in attributes]
