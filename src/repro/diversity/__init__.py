"""Diversity measures for ranked outputs (the Diversity widget's engine).

"The Diversity widget shows diversity with respect to a set of
demographic categories of individuals, or a set of categorical
attributes of other kinds of items.  The widget displays the proportion
of each category in the top-10 ranked list and over-all" (paper §2.4).
"""

from repro.diversity.measures import (
    CategoryBreakdown,
    DiversityReport,
    category_breakdown,
    diversity_report,
    entropy,
    normalized_entropy,
    richness,
    top_k_vs_overall,
)

__all__ = [
    "CategoryBreakdown",
    "DiversityReport",
    "category_breakdown",
    "top_k_vs_overall",
    "diversity_report",
    "entropy",
    "normalized_entropy",
    "richness",
]
