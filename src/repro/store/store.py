"""The durable label store: a content-addressed L2 cache on SQLite.

:class:`LabelStore` persists built labels keyed by the engine's content
fingerprint (:mod:`repro.engine.fingerprint`), so labels survive the
process: a restarted server warm-starts from disk, several server
processes on one host share one archive, and every label carries a
provenance record (:mod:`repro.store.provenance`) answering *how* it
was produced.

Design points:

- **Byte-exact payloads.**  A label is stored as its pickle bytes
  (``pickle.HIGHEST_PROTOCOL``) and served back from exactly those
  bytes — :meth:`get_bytes` exposes them so tests can assert the
  round trip is the identity.
- **WAL mode.**  The database runs in write-ahead-log mode, so
  concurrent readers never block the (serialized) writers — the mode
  that makes one store file safe to share between processes.  A busy
  timeout covers writer contention.
- **Garbage collection, not eviction-on-read.**  Durable storage is
  cheap, so bounds are applied by explicit or insert-time
  :meth:`gc`: TTL-expired labels first, then oldest-``last_access``
  labels until a ``max_bytes`` budget fits.  Reads bump
  ``last_access``/``hits``, so the GC victim order is true LRU.
- **Misses are ``None``.**  Only configuration and corruption raise
  (:class:`~repro.errors.StoreError`); a miss must stay cheap because
  the tiered cache (:mod:`repro.store.tiering`) falls through to a
  rebuild on every one.

Since schema v2 the same file doubles as the **durable trace archive**:
completed traces kept by the tail-based sampler
(:class:`repro.telemetry.collect.TraceCollector`) land in a ``traces``
table beside the labels as canonical-JSON span lists, so a trace
retrieved after a server restart is byte-identical to the one archived.
Traces share the labels' GC discipline — and the *one* ``max_bytes``
budget — with a fixed victim order: TTL-expired traces, then expired
labels, then least-recently-accessed traces, then LRU labels; traces
are always cheaper to lose than labels, and the newest label survives
any budget (the same guarantee the label-only GC made).

Since schema v3 the file also archives **CPU profiles**: collapsed-
stack captures from the sampling profiler
(:mod:`repro.telemetry.profiling`), stored as canonical JSON with an
optional ``trace_id`` linking a capture to the slow archived trace
that triggered it.  Profiles share the traces' TTL and sit at the
bottom of the GC victim order — diagnostics are always cheaper to
lose than the traces they annotate, let alone the labels.

One :class:`LabelStore` holds one connection guarded by a lock, which
is the stdlib-safe shape for ``ThreadingHTTPServer`` handlers; open
more instances (in the same or another process) for more concurrency.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import StoreError
from repro.store.provenance import LabelProvenance
from repro.store.schema import ensure_schema
from repro.telemetry import span

__all__ = ["StoredLabel", "StoredTrace", "StoredProfile", "LabelStore"]

#: pinned, not "whatever this interpreter defaults to": byte-exact
#: round trips across processes require one protocol everywhere
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass(frozen=True)
class StoredLabel:
    """One stored label's payload plus its accounting row."""

    fingerprint: str
    payload: bytes
    size_bytes: int
    created_at: float
    last_access: float
    hits: int

    @property
    def value(self) -> Any:
        """The label, unpickled from the stored bytes."""
        return pickle.loads(self.payload)

    def summary(self) -> dict[str, Any]:
        """JSON-safe row for listings (no payload)."""
        return {
            "fingerprint": self.fingerprint,
            "size_bytes": self.size_bytes,
            "created_at": self.created_at,
            "last_access": self.last_access,
            "hits": self.hits,
        }


@dataclass(frozen=True)
class StoredTrace:
    """One archived trace: its summary row plus the span payload."""

    trace_id: str
    root_name: str
    status: str
    started_at: float
    duration: float
    span_count: int
    payload: bytes
    size_bytes: int
    sampled: str
    created_at: float
    last_access: float

    @property
    def spans(self) -> list[dict[str, Any]]:
        """The span dicts, decoded from the canonical-JSON payload."""
        return json.loads(self.payload.decode("utf-8"))

    def summary(self) -> dict[str, Any]:
        """JSON-safe row for listings (no payload)."""
        return {
            "trace_id": self.trace_id,
            "root_name": self.root_name,
            "status": self.status,
            "started_at": self.started_at,
            "duration": self.duration,
            "span_count": self.span_count,
            "size_bytes": self.size_bytes,
            "sampled": self.sampled,
            "created_at": self.created_at,
        }


@dataclass(frozen=True)
class StoredProfile:
    """One archived profile capture: its summary row plus the payload."""

    profile_id: str
    trace_id: str | None
    source: str
    started_at: float
    duration: float
    hz: float
    sample_count: int
    payload: bytes
    size_bytes: int
    created_at: float
    last_access: float

    @property
    def report(self) -> dict[str, Any]:
        """The profiler's ``as_dict()`` shape, decoded from the payload."""
        return json.loads(self.payload.decode("utf-8"))

    def summary(self) -> dict[str, Any]:
        """JSON-safe row for listings (no payload)."""
        return {
            "profile_id": self.profile_id,
            "trace_id": self.trace_id,
            "source": self.source,
            "started_at": self.started_at,
            "duration": self.duration,
            "hz": self.hz,
            "sample_count": self.sample_count,
            "size_bytes": self.size_bytes,
            "created_at": self.created_at,
        }


def _encode_trace_payload(spans: list) -> bytes:
    """Canonical JSON — one encoding, so round trips are byte-exact."""
    return json.dumps(
        spans, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def _encode_profile_payload(report: dict) -> bytes:
    """Canonical JSON for profile reports (same discipline as traces)."""
    return json.dumps(
        report, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


class LabelStore:
    """Persistent fingerprint -> label mapping with provenance.

    Parameters
    ----------
    path:
        The SQLite file (created if missing, parent directory must
        exist).  ``":memory:"`` works for tests but defeats the point.
    max_bytes:
        Optional payload budget; when an insert pushes the total past
        it, :meth:`gc` trims expired then least-recently-accessed
        labels until it fits.
    ttl:
        Optional label age limit in seconds (against ``created_at``);
        an expired label reads as a miss and is dropped by the next GC.
    trace_ttl:
        Optional age limit for archived traces; defaults to ``ttl``
        (``None`` = traces live as long as labels do).  Traces age out
        independently of labels but share the ``max_bytes`` budget.
    timeout:
        SQLite busy timeout in seconds (cross-process writer
        contention).
    clock:
        Wall-clock source (``time.time``); injectable for tests.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int | None = None,
        ttl: float | None = None,
        trace_ttl: float | None = None,
        timeout: float = 30.0,
        clock: Callable[[], float] = time.time,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise StoreError(f"store max_bytes must be >= 1, got {max_bytes}")
        if ttl is not None and ttl <= 0:
            raise StoreError(f"store ttl must be > 0 seconds, got {ttl}")
        if trace_ttl is not None and trace_ttl <= 0:
            raise StoreError(
                f"store trace_ttl must be > 0 seconds, got {trace_ttl}"
            )
        self.path = os.fspath(path)
        self._max_bytes = max_bytes
        self._ttl = ttl
        self._trace_ttl = trace_ttl
        self._clock = clock
        self._lock = threading.RLock()
        self._puts = 0
        self._gets = 0
        self._hits = 0
        self._misses = 0
        self._expirations = 0
        self._evictions = 0
        self._decode_failures = 0
        self._trace_puts = 0
        self._trace_gets = 0
        self._trace_hits = 0
        self._trace_misses = 0
        self._trace_expirations = 0
        self._trace_evictions = 0
        self._profile_puts = 0
        self._profile_gets = 0
        self._profile_hits = 0
        self._profile_misses = 0
        self._profile_expirations = 0
        self._profile_evictions = 0
        try:
            self._connection = sqlite3.connect(
                self.path, timeout=timeout, check_same_thread=False
            )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open label store {self.path!r}: {exc}") from exc
        try:
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute("PRAGMA foreign_keys=ON")
            ensure_schema(self._connection, self.path)
        except sqlite3.Error as exc:
            self._connection.close()
            raise StoreError(
                f"{self.path!r} is not a usable label store: {exc}"
            ) from exc
        except StoreError:
            self._connection.close()
            raise

    # -- properties ------------------------------------------------------------

    @property
    def max_bytes(self) -> int | None:
        """The configured payload budget (``None`` = unbounded)."""
        return self._max_bytes

    @property
    def ttl(self) -> float | None:
        """The configured label age limit (``None`` = immortal)."""
        return self._ttl

    @property
    def trace_ttl(self) -> float | None:
        """The effective trace age limit (falls back to ``ttl``)."""
        return self._trace_ttl if self._trace_ttl is not None else self._ttl

    # -- internals -------------------------------------------------------------

    def _expired(self, created_at: float) -> bool:
        return self._ttl is not None and self._clock() - created_at > self._ttl

    def _trace_expired(self, created_at: float) -> bool:
        ttl = self.trace_ttl
        return ttl is not None and self._clock() - created_at > ttl

    def _gc_locked(
        self,
        max_bytes: int | None,
        ttl: float | None,
        trace_ttl: float | None,
    ) -> dict[str, int]:
        expired = evicted = trace_expired = trace_evicted = 0
        profile_expired = profile_evicted = 0
        with self._connection:
            # victim order: expired profiles, expired traces, expired
            # labels, LRU profiles, LRU traces, LRU labels — a profile
            # only annotates a trace, a trace only explains a label,
            # and a label costs a rebuild
            if trace_ttl is not None:
                cursor = self._connection.execute(
                    "DELETE FROM profiles WHERE created_at < ?",
                    (self._clock() - trace_ttl,),
                )
                profile_expired = cursor.rowcount
                cursor = self._connection.execute(
                    "DELETE FROM traces WHERE created_at < ?",
                    (self._clock() - trace_ttl,),
                )
                trace_expired = cursor.rowcount
            if ttl is not None:
                cursor = self._connection.execute(
                    "DELETE FROM labels WHERE created_at < ?",
                    (self._clock() - ttl,),
                )
                expired = cursor.rowcount
            if max_bytes is not None:
                # one budget over both tables; totals are aggregated
                # once and adjusted per victim, not re-scanned
                label_total, label_count = self._connection.execute(
                    "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM labels"
                ).fetchone()
                trace_total, trace_count = self._connection.execute(
                    "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM traces"
                ).fetchone()
                profile_total, profile_count = self._connection.execute(
                    "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM profiles"
                ).fetchone()
                total = label_total + trace_total + profile_total
                while total > max_bytes and profile_count > 0:
                    victim = self._connection.execute(
                        "SELECT profile_id, size_bytes FROM profiles "
                        "ORDER BY last_access ASC, profile_id ASC LIMIT 1"
                    ).fetchone()
                    self._connection.execute(
                        "DELETE FROM profiles WHERE profile_id = ?", (victim[0],)
                    )
                    total -= victim[1]
                    profile_count -= 1
                    profile_evicted += 1
                while total > max_bytes and trace_count > 0:
                    victim = self._connection.execute(
                        "SELECT trace_id, size_bytes FROM traces "
                        "ORDER BY last_access ASC, trace_id ASC LIMIT 1"
                    ).fetchone()
                    self._connection.execute(
                        "DELETE FROM traces WHERE trace_id = ?", (victim[0],)
                    )
                    total -= victim[1]
                    trace_count -= 1
                    trace_evicted += 1
                # oldest-accessed first, but never the newest label: an
                # oversized label still persists once (mirrors the L1
                # cache's same guarantee)
                while total > max_bytes and label_count > 1:
                    victim = self._connection.execute(
                        "SELECT fingerprint, size_bytes FROM labels "
                        "ORDER BY last_access ASC, fingerprint ASC LIMIT 1"
                    ).fetchone()
                    self._connection.execute(
                        "DELETE FROM labels WHERE fingerprint = ?", (victim[0],)
                    )
                    total -= victim[1]
                    label_count -= 1
                    evicted += 1
        self._expirations += expired
        self._evictions += evicted
        self._trace_expirations += trace_expired
        self._trace_evictions += trace_evicted
        self._profile_expirations += profile_expired
        self._profile_evictions += profile_evicted
        return {
            "expired": expired,
            "evicted": evicted,
            "trace_expired": trace_expired,
            "trace_evicted": trace_evicted,
            "profile_expired": profile_expired,
            "profile_evicted": profile_evicted,
        }

    # -- writes ----------------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        value: Any,
        provenance: LabelProvenance | None = None,
    ) -> int:
        """Persist one label (and its provenance); returns payload size.

        An existing fingerprint is overwritten — the key is a content
        hash, so the bytes can only be the same payload rebuilt.
        """
        try:
            payload = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        except Exception as exc:
            raise StoreError(
                f"label {fingerprint!r} is not picklable: {exc}"
            ) from exc
        now = self._clock()
        with span("store.put", fingerprint=fingerprint[:12]), self._lock:
            with self._connection:
                self._connection.execute(
                    "INSERT OR REPLACE INTO labels "
                    "(fingerprint, payload, size_bytes, created_at, last_access, hits) "
                    "VALUES (?, ?, ?, ?, ?, 0)",
                    (fingerprint, payload, len(payload), now, now),
                )
                if provenance is not None:
                    self._connection.execute(
                        "INSERT OR REPLACE INTO provenance VALUES "
                        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        provenance.as_row(),
                    )
            self._puts += 1
            if (
                self._max_bytes is not None
                or self._ttl is not None
                or self.trace_ttl is not None
            ):
                self._gc_locked(self._max_bytes, self._ttl, self.trace_ttl)
        return len(payload)

    def put_trace(
        self,
        trace_id: str,
        *,
        root_name: str,
        status: str,
        started_at: float,
        duration: float,
        spans: list,
        sampled: str = "sampled",
    ) -> int:
        """Archive one completed trace; returns the payload size.

        ``spans`` is the JSON-safe span-dict list the collector hands
        over; it is stored as canonical JSON so retrieval — including
        after a process restart on the same file — is byte-exact.
        Re-archiving a trace id overwrites (ids are random 128-bit, so
        a collision is the same trace finalized twice).
        """
        try:
            payload = _encode_trace_payload(spans)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"trace {trace_id!r} spans are not JSON-safe: {exc}"
            ) from exc
        now = self._clock()
        # deliberately NOT wrapped in a span: the collector calls this
        # from its span listener, outside any request context — a span
        # here would be a fresh root, finalize, archive itself, and so
        # on forever (each archived trace spawning the next)
        with self._lock:
            with self._connection:
                self._connection.execute(
                    "INSERT OR REPLACE INTO traces "
                    "(trace_id, root_name, status, started_at, duration, "
                    " span_count, payload, size_bytes, sampled, "
                    " created_at, last_access) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        trace_id, root_name, status, started_at, duration,
                        len(spans), payload, len(payload), sampled, now, now,
                    ),
                )
            self._trace_puts += 1
            if (
                self._max_bytes is not None
                or self._ttl is not None
                or self.trace_ttl is not None
            ):
                self._gc_locked(self._max_bytes, self._ttl, self.trace_ttl)
        return len(payload)

    def put_profile(
        self,
        profile_id: str,
        *,
        source: str,
        started_at: float,
        duration: float,
        hz: float,
        sample_count: int,
        report: dict,
        trace_id: str | None = None,
    ) -> int:
        """Archive one profile capture; returns the payload size.

        ``report`` is the profiler's ``as_dict()`` shape, stored as
        canonical JSON (byte-exact retrieval, like traces).
        ``trace_id`` links the capture to the slow archived trace that
        triggered it; on-demand captures pass ``None``.
        """
        try:
            payload = _encode_profile_payload(report)
        except (TypeError, ValueError) as exc:
            raise StoreError(
                f"profile {profile_id!r} report is not JSON-safe: {exc}"
            ) from exc
        now = self._clock()
        # un-spanned for the same reason as put_trace: the collector
        # archives profiles from its span listener, and a span here
        # would start a fresh self-perpetuating trace
        with self._lock:
            with self._connection:
                self._connection.execute(
                    "INSERT OR REPLACE INTO profiles "
                    "(profile_id, trace_id, source, started_at, duration, hz, "
                    " sample_count, payload, size_bytes, created_at, last_access) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        profile_id, trace_id, source, started_at, duration,
                        float(hz), int(sample_count), payload, len(payload),
                        now, now,
                    ),
                )
            self._profile_puts += 1
            if (
                self._max_bytes is not None
                or self._ttl is not None
                or self.trace_ttl is not None
            ):
                self._gc_locked(self._max_bytes, self._ttl, self.trace_ttl)
        return len(payload)

    def gc(
        self,
        max_bytes: int | None = None,
        ttl: float | None = None,
        trace_ttl: float | None = None,
    ) -> dict[str, int]:
        """Trim the store; returns per-kind expired/evicted counts.

        Arguments default to the instance's configured bounds; pass
        explicit values for a one-off trim (the CLI's ``store gc``).
        A one-off ``ttl`` applies to traces too unless ``trace_ttl``
        overrides it — the same fallback the constructor uses.
        TTL-expired traces and labels go first (dead weight regardless
        of the budget), then least-recently-accessed traces, then LRU
        labels until ``max_bytes`` fits.
        """
        if trace_ttl is None:
            trace_ttl = ttl if ttl is not None else self.trace_ttl
        with self._lock:
            return self._gc_locked(
                max_bytes if max_bytes is not None else self._max_bytes,
                ttl if ttl is not None else self._ttl,
                trace_ttl,
            )

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one label (and its provenance); returns whether it existed."""
        with self._lock:
            with self._connection:
                cursor = self._connection.execute(
                    "DELETE FROM labels WHERE fingerprint = ?", (fingerprint,)
                )
            return cursor.rowcount > 0

    # -- reads -----------------------------------------------------------------

    def get_record(self, fingerprint: str) -> StoredLabel | None:
        """The full stored row, or ``None`` on miss/expiry (counted)."""
        with span("store.get", fingerprint=fingerprint[:12]), self._lock:
            self._gets += 1
            row = self._connection.execute(
                "SELECT payload, size_bytes, created_at, last_access, hits "
                "FROM labels WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is not None and self._expired(row[2]):
                with self._connection:
                    self._connection.execute(
                        "DELETE FROM labels WHERE fingerprint = ?", (fingerprint,)
                    )
                self._expirations += 1
                row = None
            if row is None:
                self._misses += 1
                return None
            self._hits += 1
            now = self._clock()
            with self._connection:
                self._connection.execute(
                    "UPDATE labels SET last_access = ?, hits = hits + 1 "
                    "WHERE fingerprint = ?",
                    (now, fingerprint),
                )
            return StoredLabel(
                fingerprint=fingerprint,
                payload=row[0],
                size_bytes=row[1],
                created_at=row[2],
                last_access=now,
                hits=row[4] + 1,
            )

    def get(self, fingerprint: str) -> Any | None:
        """The stored label, unpickled; ``None`` on miss or expiry.

        An undecodable payload — disk corruption, or a label pickled
        against a class layout this engine no longer has — is dropped
        and served as a miss (counted in ``decode_failures``), so the
        tiered cache rebuilds it instead of failing every request on
        that fingerprint forever.
        """
        record = self.get_record(fingerprint)
        if record is None:
            return None
        try:
            return record.value
        except Exception:
            with self._lock:
                self._decode_failures += 1
            self.invalidate(fingerprint)
            return None

    def get_bytes(self, fingerprint: str) -> bytes | None:
        """The exact stored payload bytes (byte-identity assertions)."""
        record = self.get_record(fingerprint)
        return None if record is None else record.payload

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT created_at FROM labels WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            return row is not None and not self._expired(row[0])

    def __len__(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM labels"
            ).fetchone()[0]

    def provenance(self, fingerprint: str) -> LabelProvenance | None:
        """The provenance record for one label (``None`` if unrecorded)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM provenance WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return None if row is None else LabelProvenance.from_row(row)

    def resolve_prefix(self, prefix: str) -> str:
        """Expand a fingerprint prefix to the unique full fingerprint.

        Store fingerprints are 64 hex characters; the CLI accepts any
        unambiguous prefix (like a VCS).  Raises
        :class:`~repro.errors.StoreError` when nothing — or more than
        one label — matches.
        """
        if not prefix:
            raise StoreError("empty fingerprint prefix")
        if not all(c in "0123456789abcdef" for c in prefix.lower()):
            # reject, don't sanitize: stripping LIKE wildcards would
            # make "%" silently resolve to an arbitrary label
            raise StoreError(
                f"fingerprint prefix {prefix!r} is not hex"
            )
        with self._lock:
            rows = self._connection.execute(
                "SELECT fingerprint FROM labels WHERE fingerprint LIKE ? LIMIT 2",
                (prefix.lower() + "%",),
            ).fetchall()
        if not rows:
            raise StoreError(f"no stored label matches fingerprint {prefix!r}")
        if len(rows) > 1:
            raise StoreError(
                f"fingerprint prefix {prefix!r} is ambiguous; give more characters"
            )
        return rows[0][0]

    def records(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Listing rows (newest first): summaries plus dataset names."""
        sql = (
            "SELECT l.fingerprint, l.size_bytes, l.created_at, l.last_access, "
            "l.hits, p.dataset_name, p.engine_version "
            "FROM labels l LEFT JOIN provenance p USING (fingerprint) "
            "ORDER BY l.created_at DESC"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._connection.execute(sql).fetchall()
        return [
            {
                "fingerprint": row[0],
                "size_bytes": row[1],
                "created_at": row[2],
                "last_access": row[3],
                "hits": row[4],
                "dataset_name": row[5],
                "engine_version": row[6],
            }
            for row in rows
        ]

    # -- trace archive reads ---------------------------------------------------

    def get_trace(self, trace_id: str) -> StoredTrace | None:
        """One archived trace, or ``None`` on miss/expiry (counted)."""
        with span("store.get_trace", trace_id=trace_id[:12]), self._lock:
            self._trace_gets += 1
            row = self._connection.execute(
                "SELECT root_name, status, started_at, duration, span_count, "
                "payload, size_bytes, sampled, created_at, last_access "
                "FROM traces WHERE trace_id = ?",
                (trace_id,),
            ).fetchone()
            if row is not None and self._trace_expired(row[8]):
                with self._connection:
                    self._connection.execute(
                        "DELETE FROM traces WHERE trace_id = ?", (trace_id,)
                    )
                self._trace_expirations += 1
                row = None
            if row is None:
                self._trace_misses += 1
                return None
            self._trace_hits += 1
            now = self._clock()
            with self._connection:
                self._connection.execute(
                    "UPDATE traces SET last_access = ? WHERE trace_id = ?",
                    (now, trace_id),
                )
            return StoredTrace(
                trace_id=trace_id,
                root_name=row[0],
                status=row[1],
                started_at=row[2],
                duration=row[3],
                span_count=row[4],
                payload=row[5],
                size_bytes=row[6],
                sampled=row[7],
                created_at=row[8],
                last_access=now,
            )

    def get_trace_bytes(self, trace_id: str) -> bytes | None:
        """The exact archived payload bytes (byte-identity assertions)."""
        record = self.get_trace(trace_id)
        return None if record is None else record.payload

    def trace_records(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Trace listing rows (newest first), no payloads."""
        sql = (
            "SELECT trace_id, root_name, status, started_at, duration, "
            "span_count, size_bytes, sampled, created_at "
            "FROM traces ORDER BY created_at DESC"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._connection.execute(sql).fetchall()
        return [
            {
                "trace_id": row[0],
                "root_name": row[1],
                "status": row[2],
                "started_at": row[3],
                "duration": row[4],
                "span_count": row[5],
                "size_bytes": row[6],
                "sampled": row[7],
                "created_at": row[8],
            }
            for row in rows
        ]

    def resolve_trace_prefix(self, prefix: str) -> str:
        """Expand a trace-id prefix to the unique full id (like a VCS).

        An ambiguous prefix raises a :class:`~repro.errors.StoreError`
        carrying the matching ids on its ``matches`` attribute (up to
        ten), so callers can list the candidates instead of dead-ending.
        """
        if not prefix:
            raise StoreError("empty trace id prefix")
        if not all(c in "0123456789abcdef" for c in prefix.lower()):
            # reject, don't sanitize — same reasoning as label prefixes
            raise StoreError(f"trace id prefix {prefix!r} is not hex")
        with self._lock:
            rows = self._connection.execute(
                "SELECT trace_id FROM traces WHERE trace_id LIKE ? "
                "ORDER BY created_at DESC LIMIT 10",
                (prefix.lower() + "%",),
            ).fetchall()
        if not rows:
            raise StoreError(f"no archived trace matches {prefix!r}")
        if len(rows) > 1:
            error = StoreError(
                f"trace id prefix {prefix!r} is ambiguous "
                f"({len(rows)}{'+' if len(rows) == 10 else ''} matches); "
                "give more characters"
            )
            error.matches = [row[0] for row in rows]
            raise error
        return rows[0][0]

    # -- profile archive reads -------------------------------------------------

    def get_profile(self, profile_id: str) -> StoredProfile | None:
        """One archived profile, or ``None`` on miss/expiry (counted)."""
        with span("store.get_profile", profile_id=profile_id[:12]), self._lock:
            self._profile_gets += 1
            row = self._connection.execute(
                "SELECT trace_id, source, started_at, duration, hz, "
                "sample_count, payload, size_bytes, created_at, last_access "
                "FROM profiles WHERE profile_id = ?",
                (profile_id,),
            ).fetchone()
            if row is not None and self._trace_expired(row[8]):
                with self._connection:
                    self._connection.execute(
                        "DELETE FROM profiles WHERE profile_id = ?", (profile_id,)
                    )
                self._profile_expirations += 1
                row = None
            if row is None:
                self._profile_misses += 1
                return None
            self._profile_hits += 1
            now = self._clock()
            with self._connection:
                self._connection.execute(
                    "UPDATE profiles SET last_access = ? WHERE profile_id = ?",
                    (now, profile_id),
                )
            return StoredProfile(
                profile_id=profile_id,
                trace_id=row[0],
                source=row[1],
                started_at=row[2],
                duration=row[3],
                hz=row[4],
                sample_count=row[5],
                payload=row[6],
                size_bytes=row[7],
                created_at=row[8],
                last_access=now,
            )

    def profile_for_trace(self, trace_id: str) -> StoredProfile | None:
        """The newest profile linked to an archived trace, if any."""
        with self._lock:
            row = self._connection.execute(
                "SELECT profile_id FROM profiles WHERE trace_id = ? "
                "ORDER BY created_at DESC LIMIT 1",
                (trace_id,),
            ).fetchone()
        return None if row is None else self.get_profile(row[0])

    def profile_records(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Profile listing rows (newest first), no payloads."""
        sql = (
            "SELECT profile_id, trace_id, source, started_at, duration, hz, "
            "sample_count, size_bytes, created_at "
            "FROM profiles ORDER BY created_at DESC"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._connection.execute(sql).fetchall()
        return [
            {
                "profile_id": row[0],
                "trace_id": row[1],
                "source": row[2],
                "started_at": row[3],
                "duration": row[4],
                "hz": row[5],
                "sample_count": row[6],
                "size_bytes": row[7],
                "created_at": row[8],
            }
            for row in rows
        ]

    def resolve_profile_prefix(self, prefix: str) -> str:
        """Expand a profile-id prefix to the unique full id (like a VCS)."""
        if not prefix:
            raise StoreError("empty profile id prefix")
        if not all(c in "0123456789abcdef" for c in prefix.lower()):
            raise StoreError(f"profile id prefix {prefix!r} is not hex")
        with self._lock:
            rows = self._connection.execute(
                "SELECT profile_id FROM profiles WHERE profile_id LIKE ? "
                "ORDER BY created_at DESC LIMIT 10",
                (prefix.lower() + "%",),
            ).fetchall()
        if not rows:
            raise StoreError(f"no archived profile matches {prefix!r}")
        if len(rows) > 1:
            error = StoreError(
                f"profile id prefix {prefix!r} is ambiguous; give more characters"
            )
            error.matches = [row[0] for row in rows]
            raise error
        return rows[0][0]

    # -- observability and lifecycle -------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters plus the on-disk totals (the ``/engine/stats`` shape)."""
        with self._lock:
            total, count = self._connection.execute(
                "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM labels"
            ).fetchone()
            trace_total, trace_count = self._connection.execute(
                "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM traces"
            ).fetchone()
            profile_total, profile_count = self._connection.execute(
                "SELECT COALESCE(SUM(size_bytes), 0), COUNT(*) FROM profiles"
            ).fetchone()
            return {
                "path": self.path,
                "labels": count,
                "bytes": total,
                "max_bytes": self._max_bytes,
                "ttl": self._ttl,
                "puts": self._puts,
                "gets": self._gets,
                "hits": self._hits,
                "misses": self._misses,
                "expirations": self._expirations,
                "evictions": self._evictions,
                "decode_failures": self._decode_failures,
                "traces": trace_count,
                "trace_bytes": trace_total,
                "trace_ttl": self.trace_ttl,
                "trace_puts": self._trace_puts,
                "trace_gets": self._trace_gets,
                "trace_hits": self._trace_hits,
                "trace_misses": self._trace_misses,
                "trace_expirations": self._trace_expirations,
                "trace_evictions": self._trace_evictions,
                "profiles": profile_count,
                "profile_bytes": profile_total,
                "profile_puts": self._profile_puts,
                "profile_gets": self._profile_gets,
                "profile_hits": self._profile_hits,
                "profile_misses": self._profile_misses,
                "profile_expirations": self._profile_expirations,
                "profile_evictions": self._profile_evictions,
            }

    def close(self) -> None:
        """Close the connection (idempotent; further calls will fail)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "LabelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
