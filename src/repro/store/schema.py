"""The label store's DDL, schema version, and migration guard.

A store file outlives any one engine build, so the schema is versioned
with SQLite's ``user_version`` pragma and every open goes through
:func:`ensure_schema`, which distinguishes four situations:

- **fresh file** (``user_version == 0``, no tables) — the current DDL
  is created and the version stamped;
- **current file** — nothing to do;
- **older file** — the migration steps between its version and
  :data:`SCHEMA_VERSION` are applied in order; a missing step is a
  hard :class:`~repro.errors.StoreError` (refusing to guess beats
  silently misreading a label archive);
- **newer or foreign file** — a version above ours, or tables that are
  not ours at version 0, is rejected: the file was written by a newer
  engine (or is not a label store at all) and reading it could return
  wrong bytes.

The guard runs inside one transaction, so a crash mid-migration leaves
the previous version intact.
"""

from __future__ import annotations

import sqlite3

from repro.errors import StoreError

__all__ = ["SCHEMA_VERSION", "DDL", "MIGRATIONS", "ensure_schema"]

#: bump on any DDL change, adding the migration step from the previous
#: version to :data:`MIGRATIONS`
SCHEMA_VERSION = 3

#: the v2 addition: a durable trace archive beside the labels — one row
#: per kept trace, payload = the JSON-encoded span list; shared between
#: :data:`DDL` (fresh files) and ``MIGRATIONS[1]`` (v1 upgrades) so the
#: two paths cannot drift
_TRACE_DDL = (
    """
    CREATE TABLE traces (
        trace_id    TEXT PRIMARY KEY,
        root_name   TEXT NOT NULL,
        status      TEXT NOT NULL,
        started_at  REAL NOT NULL,
        duration    REAL NOT NULL,
        span_count  INTEGER NOT NULL,
        payload     BLOB NOT NULL,
        size_bytes  INTEGER NOT NULL,
        sampled     TEXT NOT NULL,
        created_at  REAL NOT NULL,
        last_access REAL NOT NULL
    )
    """,
    "CREATE INDEX idx_traces_last_access ON traces(last_access)",
    "CREATE INDEX idx_traces_created_at ON traces(created_at)",
)

#: the v3 addition: archived CPU profiles beside the traces — one row
#: per kept capture, payload = the profiler's canonical-JSON report;
#: ``trace_id`` links a capture to the slow archived trace that
#: triggered it (NULL for on-demand captures archived explicitly)
_PROFILE_DDL = (
    """
    CREATE TABLE profiles (
        profile_id   TEXT PRIMARY KEY,
        trace_id     TEXT,
        source       TEXT NOT NULL,
        started_at   REAL NOT NULL,
        duration     REAL NOT NULL,
        hz           REAL NOT NULL,
        sample_count INTEGER NOT NULL,
        payload      BLOB NOT NULL,
        size_bytes   INTEGER NOT NULL,
        created_at   REAL NOT NULL,
        last_access  REAL NOT NULL
    )
    """,
    "CREATE INDEX idx_profiles_last_access ON profiles(last_access)",
    "CREATE INDEX idx_profiles_created_at ON profiles(created_at)",
    "CREATE INDEX idx_profiles_trace_id ON profiles(trace_id)",
)

#: the current schema, created wholesale on a fresh file
DDL = (
    """
    CREATE TABLE labels (
        fingerprint TEXT PRIMARY KEY,
        payload     BLOB NOT NULL,
        size_bytes  INTEGER NOT NULL,
        created_at  REAL NOT NULL,
        last_access REAL NOT NULL,
        hits        INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE provenance (
        fingerprint             TEXT PRIMARY KEY
                                REFERENCES labels(fingerprint)
                                ON DELETE CASCADE,
        table_fingerprint       TEXT NOT NULL,
        design_fingerprint      TEXT NOT NULL,
        dataset_name            TEXT NOT NULL,
        design                  TEXT NOT NULL,
        trial_backend_requested TEXT NOT NULL,
        trial_backend_effective TEXT NOT NULL,
        monte_carlo_trials      INTEGER NOT NULL,
        epsilon_count           INTEGER NOT NULL,
        build_seconds           REAL NOT NULL,
        engine_version          TEXT NOT NULL,
        created_at              REAL NOT NULL
    )
    """,
    "CREATE INDEX idx_labels_last_access ON labels(last_access)",
    "CREATE INDEX idx_labels_created_at ON labels(created_at)",
) + _TRACE_DDL + _PROFILE_DDL

#: ``{from_version: (sql, ...)}`` — the steps upgrading ``from_version``
#: to ``from_version + 1``; every release that bumps
#: :data:`SCHEMA_VERSION` must add its step here
MIGRATIONS: dict[int, tuple[str, ...]] = {1: _TRACE_DDL, 2: _PROFILE_DDL}


def _has_tables(connection: sqlite3.Connection) -> bool:
    row = connection.execute(
        "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table'"
    ).fetchone()
    return bool(row[0])


def ensure_schema(connection: sqlite3.Connection, path: str = "<store>") -> None:
    """Create or upgrade the schema; reject files we cannot read safely.

    ``path`` only decorates error messages.  Raises
    :class:`~repro.errors.StoreError` for newer-engine files, foreign
    SQLite files, and missing migration steps.
    """
    version = connection.execute("PRAGMA user_version").fetchone()[0]
    if version == SCHEMA_VERSION:
        return
    if version > SCHEMA_VERSION:
        raise StoreError(
            f"label store {path!r} has schema v{version}, but this engine "
            f"only understands v{SCHEMA_VERSION}; it was written by a newer "
            "engine — upgrade, or point at a different store file"
        )
    if version == 0:
        if _has_tables(connection):
            raise StoreError(
                f"{path!r} is an SQLite file but not a label store "
                "(it has tables yet no schema version); refusing to touch it"
            )
        with connection:  # one transaction: the whole schema or none of it
            for statement in DDL:
                connection.execute(statement)
            connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        return
    # an older store: walk the migration chain one version at a time
    while version < SCHEMA_VERSION:
        steps = MIGRATIONS.get(version)
        if steps is None:
            raise StoreError(
                f"label store {path!r} has schema v{version} and no "
                f"migration step to v{version + 1} is known; refusing to "
                "guess at its layout"
            )
        with connection:
            for statement in steps:
                connection.execute(statement)
            connection.execute(f"PRAGMA user_version = {version + 1}")
        version += 1
