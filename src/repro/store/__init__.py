"""The durable label store: labels that survive the process.

The paper frames a nutritional label as an artifact that *accompanies*
a published ranking; this package makes it one.  Labels are persisted
content-addressed in an SQLite file (WAL mode — safe to share between
processes on one host), each with a provenance record of how it was
built, and served through a two-tier cache so a restarted server
warm-starts instead of re-running every Monte-Carlo loop.

- :mod:`repro.store.schema` — versioned DDL plus the migration guard;
- :mod:`repro.store.store` — :class:`LabelStore`: put/get by
  fingerprint, byte-exact payloads, TTL/``max_bytes`` GC, plus the
  durable trace archive (``put_trace``/``get_trace``) and profile
  archive (``put_profile``/``get_profile``) sharing the same file
  and budget;
- :mod:`repro.store.provenance` — :class:`LabelProvenance` records;
- :mod:`repro.store.tiering` — :class:`TieredLabelCache`: the
  in-memory L1 over the store as L2, with promotion counters.

Opt in via ``LabelService(store_path=...)``, ``serve --store PATH``
(or ``REPRO_LABEL_STORE``), and inspect with ``ranking-facts store``.
"""

from repro.store.provenance import LabelProvenance
from repro.store.schema import SCHEMA_VERSION, ensure_schema
from repro.store.store import LabelStore, StoredLabel, StoredProfile, StoredTrace
from repro.store.tiering import TieredLabelCache

__all__ = [
    "SCHEMA_VERSION",
    "ensure_schema",
    "LabelProvenance",
    "LabelStore",
    "StoredLabel",
    "StoredProfile",
    "StoredTrace",
    "TieredLabelCache",
]
