"""Provenance: *how* a stored label was produced.

A nutritional label is an audit artifact, so the store records an audit
trail for the label itself: which table and design bytes produced it
(the two fingerprint halves of the cache key), the full design recipe,
the Monte-Carlo estimator parameters, which trial backend was requested
and which actually ran, how long the build took, and which engine
version built it.  A label fetched a year later can answer "would
rebuilding this today give the same bytes?" — same fingerprints and
engine version mean yes; a drifted design or engine shows up here
before anyone re-runs the Monte-Carlo loop.

Records are value objects; :class:`~repro.store.store.LabelStore`
persists them beside the label payload and
:meth:`~repro.engine.service.LabelService.build_label` captures one per
fresh build.
"""

from __future__ import annotations

import json
import time
from collections.abc import Mapping
from dataclasses import asdict, dataclass
from typing import Any

from repro.errors import StoreError

__all__ = ["LabelProvenance"]


@dataclass(frozen=True)
class LabelProvenance:
    """Everything recorded about one label build.

    Attributes
    ----------
    fingerprint:
        The label's content address (the store/cache key).
    table_fingerprint / design_fingerprint:
        The two halves of the key: data bytes and recipe bytes.
    dataset_name:
        Display name the label was built under (part of the key's
        design half, since it renders into the label).
    design:
        The full canonical design mapping, as submitted.
    trial_backend_requested / trial_backend_effective:
        What the caller asked the Monte-Carlo trials to run on and what
        actually ran (backends self-disable or fall back; labels are
        byte-identical either way, so this is context, not cache key).
    monte_carlo_trials / epsilon_count:
        The stability estimator parameters: trials per epsilon and how
        many epsilons each estimator sweeps.
    build_seconds:
        Wall time of the cold build that produced the payload.
    engine_version:
        ``repro.__version__`` at build time.
    created_at:
        Unix timestamp (wall clock — store files travel across hosts).
    """

    fingerprint: str
    table_fingerprint: str
    design_fingerprint: str
    dataset_name: str
    design: dict[str, Any]
    trial_backend_requested: str
    trial_backend_effective: str
    monte_carlo_trials: int
    epsilon_count: int
    build_seconds: float
    engine_version: str
    created_at: float

    @classmethod
    def capture(
        cls,
        fingerprint: str,
        table: Any,
        design: Any,
        dataset_name: str,
        executor: Any,
        build_seconds: float,
        clock=time.time,
    ) -> "LabelProvenance":
        """Record a build that just happened inside the service.

        ``table`` is a :class:`~repro.tabular.table.Table`, ``design``
        a :class:`~repro.engine.jobs.LabelDesign`, and ``executor`` the
        :class:`~repro.engine.executor.LabelExecutor` whose trial
        backend ran the Monte-Carlo loop.
        """
        from repro import __version__
        from repro.engine.fingerprint import design_fingerprint, table_fingerprint

        backend = executor.trial_backend()
        return cls(
            fingerprint=fingerprint,
            table_fingerprint=table_fingerprint(table),
            design_fingerprint=design_fingerprint(
                {"design": design.canonical_dict(), "dataset_name": dataset_name}
            ),
            dataset_name=dataset_name,
            design=design.canonical_dict(),
            trial_backend_requested=getattr(backend, "name", "unknown"),
            trial_backend_effective=backend.effective_name,
            monte_carlo_trials=design.monte_carlo_trials,
            epsilon_count=len(design.monte_carlo_epsilons),
            build_seconds=build_seconds,
            engine_version=__version__,
            created_at=clock(),
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe mapping (the HTTP and CLI representation)."""
        return asdict(self)

    def as_row(self) -> tuple:
        """The ``provenance`` table's column values, in DDL order."""
        return (
            self.fingerprint,
            self.table_fingerprint,
            self.design_fingerprint,
            self.dataset_name,
            json.dumps(self.design, sort_keys=True, separators=(",", ":")),
            self.trial_backend_requested,
            self.trial_backend_effective,
            self.monte_carlo_trials,
            self.epsilon_count,
            self.build_seconds,
            self.engine_version,
            self.created_at,
        )

    @classmethod
    def from_row(cls, row: tuple) -> "LabelProvenance":
        """Rebuild a record from one ``provenance`` table row."""
        try:
            design = json.loads(row[4])
        except (json.JSONDecodeError, TypeError) as exc:
            raise StoreError(
                f"corrupt provenance design for {row[0]!r}: {exc}"
            ) from exc
        return cls(
            fingerprint=row[0],
            table_fingerprint=row[1],
            design_fingerprint=row[2],
            dataset_name=row[3],
            design=design,
            trial_backend_requested=row[5],
            trial_backend_effective=row[6],
            monte_carlo_trials=int(row[7]),
            epsilon_count=int(row[8]),
            build_seconds=float(row[9]),
            engine_version=row[10],
            created_at=float(row[11]),
        )

    @classmethod
    def from_mapping(cls, body: Mapping[str, Any]) -> "LabelProvenance":
        """Rebuild a record from its :meth:`as_dict` form."""
        try:
            return cls(**dict(body))
        except TypeError as exc:
            raise StoreError(f"bad provenance mapping: {exc}") from exc
