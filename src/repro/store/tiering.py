"""Two-tier label caching: in-memory L1 over the durable L2 store.

:class:`TieredLabelCache` composes the engine's existing
single-flight :class:`~repro.engine.cache.LabelCache` (L1 — process
memory, microseconds) with a :class:`~repro.store.store.LabelStore`
(L2 — disk, survives the process) behind one ``get_or_build``:

1. L1 hit — the value is served from memory; nothing touches disk.
2. L1 miss, L2 hit — the stored payload is unpickled and **promoted**
   into L1, so the next request is tier 1; the Monte-Carlo build is
   skipped entirely (this is the warm-restart path).
3. Double miss — the builder runs once (L1's single-flight guarantee
   holds: concurrent requests for one missing key cost one build *and*
   at most one L2 read), and the result is written through to both
   tiers along with its provenance record.

The lookup happens *inside* the L1 build slot, so a thundering herd on
a cold key performs exactly one L2 read and one store write, never N.
Counters for every tier transition are kept for ``GET /engine/stats``.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.engine.cache import LabelCache
from repro.store.provenance import LabelProvenance
from repro.store.store import LabelStore
from repro.telemetry import span

__all__ = ["TieredLabelCache"]


class TieredLabelCache:
    """L1 (:class:`LabelCache`) over L2 (:class:`LabelStore`).

    The tiers stay independently usable: the L1 cache keeps its own
    stats/bounds, the store keeps its own GC — this class only owns
    the routing and the transition counters.
    """

    def __init__(self, l1: LabelCache, l2: LabelStore):
        self._l1 = l1
        self._l2 = l2
        self._lock = threading.Lock()
        self._l1_hits = 0
        self._l1_misses = 0
        self._l2_hits = 0
        self._l2_misses = 0
        self._promotions = 0
        self._builds = 0
        self._writes = 0

    @property
    def l1(self) -> LabelCache:
        """The in-memory tier."""
        return self._l1

    @property
    def l2(self) -> LabelStore:
        """The durable tier."""
        return self._l2

    def get_or_build(
        self,
        key: str,
        build: Callable[[], tuple[Any, LabelProvenance | None]],
    ) -> tuple[Any, str]:
        """Serve ``key`` from the cheapest tier; returns ``(value, tier)``.

        ``tier`` is ``"l1"``, ``"l2"``, or ``"build"``.  ``build`` runs
        only on a double miss and must return the value plus its
        provenance record (or ``None``); the pair is written through to
        the store, the value alone to L1.
        """
        # tier of *this* call's fill path; "l1" when the slot resolved
        # from memory (including waiters that joined a single flight)
        state: dict[str, str] = {}

        def fill() -> Any:
            value = self._l2.get(key)
            if value is not None:
                state["tier"] = "l2"
                return value
            state["tier"] = "build"
            value, provenance = build()
            self._l2.put(key, value, provenance)
            with self._lock:
                self._writes += 1
            return value

        with span("tiers.get_or_build", fingerprint=key[:12]) as tier_span:
            value, l1_cached = self._l1.get_or_build(key, fill)
            tier = "l1" if l1_cached else state["tier"]
            # the decision this span exists to record: which tier served
            tier_span.tags["tier"] = tier
        with self._lock:
            if tier == "l1":
                self._l1_hits += 1
            else:
                self._l1_misses += 1
                if tier == "l2":
                    self._l2_hits += 1
                    self._promotions += 1  # get_or_build cached it in L1
                else:
                    self._l2_misses += 1
                    self._builds += 1
        return value, tier

    def stats(self) -> dict[str, int]:
        """Tier-transition counters (merged into ``/engine/stats``)."""
        with self._lock:
            return {
                "l1_hits": self._l1_hits,
                "l1_misses": self._l1_misses,
                "l2_hits": self._l2_hits,
                "l2_misses": self._l2_misses,
                "promotions": self._promotions,
                "builds": self._builds,
                "writes": self._writes,
            }
