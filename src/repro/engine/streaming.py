"""The staged-label event protocol: widgets as they finish.

A nutritional label is a composite of independent widgets, and most of
them are cheap — recipe, ingredients, fairness, and diversity fall out
of one ranking pass, while the optional Monte-Carlo stability loop
dominates the wall clock.  This module is the contract that lets the
cheap widgets reach a consumer while the expensive one is still
running:

- :class:`LabelStreamEvent` — one step of a build: a finished widget,
  the final assembled label, or a build error.  Payloads are plain
  JSON-safe dicts, ready for any transport (the SSE front end in
  :mod:`repro.app.server`, the CLI's ``label --stream`` renderer).
- :class:`LabelEventQueue` — the bounded handoff between the build
  thread (producer) and a consumer.  The bound is the backpressure
  story: a consumer that stops draining causes :meth:`publish` to give
  up after one timeout and **abort the stream** — never block the
  build, which other waiters (the label cache, concurrent requests)
  depend on.  Aborting is one-way and consumer-safe: the producer
  keeps building, its publishes just turn into no-ops.
- :func:`replay_events` — the cache-hit path: synthesize the same
  widget event sequence from an already-built label (tagged
  ``streamed=False``), so consumers see one protocol whether the
  label was built live or served from cache.

Event ordering guarantee: widgets arrive in completion order (the
builder computes cheapest-first), every widget event precedes the
terminal event, and exactly one terminal event — ``label`` or
``error`` — ends a healthy stream.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.label.render_json import json_safe

__all__ = [
    "LabelStreamEvent",
    "LabelEventQueue",
    "replay_events",
    "widget_event",
    "label_event",
    "error_event",
]

_CLOSE = object()  # internal queue sentinel: stream complete


@dataclass(frozen=True)
class LabelStreamEvent:
    """One step of a streamed label build.

    ``kind`` is ``"widget"`` (one finished widget), ``"label"`` (the
    terminal event: the fully assembled label), or ``"error"`` (the
    terminal event of a failed build).  ``payload`` is JSON-safe.
    ``streamed`` distinguishes live emission from cache replay.
    """

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    name: str | None = None
    seconds: float | None = None
    streamed: bool = True

    def as_dict(self) -> dict[str, Any]:
        """The wire shape (what SSE ``data:`` frames carry)."""
        body: dict[str, Any] = {"kind": self.kind, "streamed": self.streamed}
        if self.name is not None:
            body["name"] = self.name
        if self.seconds is not None:
            body["seconds"] = self.seconds
        body.update(self.payload)
        return body


def widget_event(
    name: str, widget: Any, seconds: float | None, streamed: bool = True
) -> LabelStreamEvent:
    """A finished-widget event; the widget dict is sanitized for JSON."""
    payload = widget.as_dict() if hasattr(widget, "as_dict") else widget
    return LabelStreamEvent(
        kind="widget",
        name=name,
        seconds=seconds,
        streamed=streamed,
        payload={"widget": json_safe(payload)},
    )


def label_event(payload: dict[str, Any], streamed: bool = True) -> LabelStreamEvent:
    """The terminal event of a successful build."""
    return LabelStreamEvent(kind="label", streamed=streamed, payload=payload)


def error_event(message: str, error_type: str = "error") -> LabelStreamEvent:
    """The terminal event of a failed build."""
    return LabelStreamEvent(
        kind="error", payload={"error": message, "type": error_type}
    )


def replay_events(label: Any, seconds: float | None = None) -> list[LabelStreamEvent]:
    """The widget event sequence for an **already built** label.

    The cache-hit path: no live build to observe, so the widgets are
    replayed from the final label in display order, each tagged
    ``streamed=False``.  The terminal ``label`` event is the caller's
    job (it carries transport-specific fields like the fingerprint).
    """
    label_dict = label.as_dict()
    return [
        LabelStreamEvent(
            kind="widget",
            name=name,
            seconds=seconds,
            streamed=False,
            payload={"widget": json_safe(label_dict[name])},
        )
        for name in label.widget_names()
    ]


class LabelEventQueue:
    """The bounded producer/consumer handoff for one label stream.

    Producer side (the build thread): :meth:`publish` each event, then
    :meth:`close` (or :meth:`abort` on failure).  Consumer side (the
    transport): :meth:`get` with a poll timeout — ``None`` means "no
    event yet" (emit a heartbeat, check for disconnect), and
    :attr:`finished` turns true once the close sentinel is consumed.

    Backpressure: the queue holds at most ``maxsize`` events.  A
    publish into a full queue waits ``publish_timeout`` seconds, then
    **aborts the whole stream** — the consumer is not draining, and the
    build must never block on a slow client (other consumers share its
    result via the label cache).  After an abort every publish is a
    cheap no-op returning ``False``; the producer finishes its build
    normally.
    """

    def __init__(self, maxsize: int = 32, publish_timeout: float = 2.0):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=maxsize)
        self._publish_timeout = publish_timeout
        self._lock = threading.Lock()
        self._aborted = False
        self._abort_reason: str | None = None
        self._closed = False  # producer finished (sentinel enqueued)
        self._finished = False  # consumer saw the sentinel
        self.published = 0
        self.dropped = 0

    # -- producer ---------------------------------------------------------------

    @property
    def aborted(self) -> bool:
        """Whether the stream was torn down before its natural close."""
        return self._aborted

    @property
    def abort_reason(self) -> str | None:
        """Why the stream was aborted (``None`` while healthy)."""
        return self._abort_reason

    def publish(self, event: LabelStreamEvent) -> bool:
        """Enqueue one event; ``False`` once the stream is aborted.

        Waits at most ``publish_timeout`` for queue space; a consumer
        that is not draining aborts the stream rather than blocking
        the build.
        """
        with self._lock:
            if self._aborted or self._closed:
                self.dropped += 1
                return False
        try:
            self._queue.put(event, timeout=self._publish_timeout)
        except queue.Full:
            self.abort(
                f"consumer not draining: event queue full "
                f"({self._queue.maxsize} events) for "
                f"{self._publish_timeout:g}s"
            )
            self.dropped += 1
            return False
        with self._lock:
            self.published += 1
        return True

    def close(self) -> None:
        """Producer done: wake the consumer with the close sentinel."""
        with self._lock:
            if self._closed or self._aborted:
                return
            self._closed = True
        # the sentinel must land even if the queue is momentarily full;
        # block briefly, then fall back to draining one slot for it
        try:
            self._queue.put(_CLOSE, timeout=self._publish_timeout)
        except queue.Full:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                pass
            try:
                self._queue.put_nowait(_CLOSE)
            except queue.Full:  # pragma: no cover - single consumer race
                pass

    def abort(self, reason: str) -> None:
        """Tear the stream down (slow consumer, disconnect, overflow).

        Idempotent and callable from either side.  The producer keeps
        building — its publishes become no-ops — and a blocked consumer
        wakes up via the sentinel.
        """
        with self._lock:
            if self._aborted:
                return
            self._aborted = True
            self._abort_reason = reason
        # drain so a blocked producer's put() can never deadlock, then
        # leave the sentinel for the consumer
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        try:
            self._queue.put_nowait(_CLOSE)
        except queue.Full:  # pragma: no cover - single consumer race
            pass

    # -- consumer ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the consumer has seen the end of the stream."""
        return self._finished

    def get(self, timeout: float = 0.5) -> LabelStreamEvent | None:
        """The next event, or ``None`` after an idle ``timeout``.

        ``None`` is the heartbeat hook: the transport can write a
        keep-alive comment and detect a dead client between events.
        After the stream ends (close or abort), :attr:`finished` is
        true and every call returns ``None`` immediately.
        """
        if self._finished:
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSE:
            self._finished = True
            return None
        return item  # type: ignore[return-value]

    def events(self, timeout: float = 0.5) -> Iterator[LabelStreamEvent | None]:
        """Iterate events until the stream ends; yields ``None`` on idle."""
        while not self._finished:
            yield self.get(timeout=timeout)
