"""Job specs: what the engine computes, as plain data.

:class:`LabelDesign` is the complete recipe for one nutritional label —
everything :class:`~repro.label.builder.RankingFactsBuilder` can be
configured with, frozen into a hashable value object.  A design plus a
table is a :class:`LabelJob`; running a job yields a
:class:`JobResult`.  Every entry point (HTTP ``POST /jobs``, the CLI's
``batch`` command, programmatic callers) normalizes into these types,
so the cache, the executor, and the service never see entry-point
specific shapes.

Ordering note: attribute order is *preserved*, not sorted.  The recipe
widget lists weights in the order the user gave them, so two designs
with the same weights in a different order produce different label
bytes — and therefore different fingerprints.  Canonicalization only
normalizes representation (floats, key order of the outer mapping),
never meaning.

Execution note: *how* a label is computed — which
:class:`~repro.engine.backends.TrialBackend` runs the Monte-Carlo
trials, how many workers — is deliberately **not** part of a design.
Backends are byte-identical for equal seeds, so the same fingerprint
must be a cache hit whether the label was built serially or on a
process pool.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.datasets.loaders import dataset_by_name, load_csv_dataset
from repro.errors import EngineError
from repro.preprocess.pipeline import NormalizationPlan
from repro.ranking.scoring import LinearScoringFunction
from repro.tabular.table import Table

if TYPE_CHECKING:  # avoid an import cycle at runtime
    from repro.label.builder import RankingFacts, RankingFactsBuilder

__all__ = ["LabelDesign", "LabelJob", "JobStatus", "JobResult"]


def _epsilon_tuple(value: object) -> tuple[float, ...]:
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise TypeError("expected a list of numbers")
    return tuple(float(e) for e in value)


@dataclass(frozen=True)
class LabelDesign:
    """One ranking recipe, frozen: the unit the cache keys on.

    Build instances with :meth:`create` (keyword-friendly coercion) or
    :meth:`from_mapping` (JSON bodies); the dataclass fields store
    normalized tuples so designs are hashable and comparable.
    """

    weights: tuple[tuple[str, float], ...]
    sensitive: tuple[str, ...]
    diversity: tuple[str, ...] = ()
    id_column: str | None = None
    k: int = 10
    alpha: float = 0.05
    normalize: bool = True
    ingredients_method: str = "spearman"
    slope_threshold: float = 0.25
    monte_carlo_trials: int = 0
    monte_carlo_epsilons: tuple[float, ...] = (0.05, 0.1, 0.2)
    seed: int = 20180610

    @classmethod
    def create(
        cls,
        weights: Mapping[str, float],
        sensitive: str | Sequence[str],
        diversity: Sequence[str] | None = None,
        **kwargs,
    ) -> "LabelDesign":
        """Coerce friendly argument shapes into a frozen design."""
        if isinstance(sensitive, str):
            sensitive = [sensitive]
        if not isinstance(sensitive, Sequence):
            raise EngineError('"sensitive" must be an attribute name or list')
        if diversity is not None and (
            isinstance(diversity, str) or not isinstance(diversity, Sequence)
        ):
            raise EngineError('"diversity" must be a list of attribute names')
        if not weights:
            raise EngineError("a design needs a non-empty weights mapping")
        if not sensitive:
            raise EngineError(
                "a design needs at least one sensitive attribute (paper §3)"
            )
        epsilons = kwargs.pop("monte_carlo_epsilons", (0.05, 0.1, 0.2))
        return cls(
            weights=tuple((str(a), float(w)) for a, w in weights.items()),
            sensitive=tuple(str(s) for s in sensitive),
            diversity=tuple(str(d) for d in (diversity or ())),
            monte_carlo_epsilons=tuple(float(e) for e in epsilons),
            **kwargs,
        )

    @classmethod
    def from_mapping(cls, body: Mapping[str, object]) -> "LabelDesign":
        """Parse a JSON-shaped design (the HTTP and batch-spec format)."""
        if not isinstance(body, Mapping):
            raise EngineError(f"design must be a mapping, got {type(body).__name__}")
        known = {
            "weights", "sensitive", "diversity", "id_column", "k", "alpha",
            "normalize", "ingredients_method", "slope_threshold",
            "monte_carlo_trials", "monte_carlo_epsilons", "seed",
        }
        unknown = set(body) - known
        if unknown:
            raise EngineError(
                f"unknown design field(s): {', '.join(sorted(unknown))}"
            )
        weights = body.get("weights")
        if not isinstance(weights, Mapping) or not weights:
            raise EngineError('design needs a non-empty "weights" object')
        kwargs = {}
        for key, coerce in (
            ("id_column", lambda v: None if v is None else str(v)),
            ("k", int),
            ("alpha", float),
            ("normalize", bool),
            ("ingredients_method", str),
            ("slope_threshold", float),
            ("monte_carlo_trials", int),
            ("monte_carlo_epsilons", _epsilon_tuple),
            ("seed", int),
        ):
            if key in body:
                try:
                    kwargs[key] = coerce(body[key])
                except (TypeError, ValueError) as exc:
                    raise EngineError(
                        f"bad design value for {key!r}: {body[key]!r} ({exc})"
                    ) from exc
        try:
            clean_weights = {str(a): float(w) for a, w in weights.items()}
        except (TypeError, ValueError) as exc:
            raise EngineError(f"bad design weights: {exc}") from exc
        return cls.create(
            weights=clean_weights,
            sensitive=body.get("sensitive") or (),
            diversity=body.get("diversity"),
            **kwargs,
        )

    def canonical_dict(self) -> dict[str, object]:
        """JSON-safe mapping for fingerprints and wire round-trips.

        Inner lists keep their order (it is meaningful — see the module
        docstring); the outer key order is normalized by the
        fingerprint's ``sort_keys`` serialization.
        """
        return {
            "weights": [[attr, weight] for attr, weight in self.weights],
            "sensitive": list(self.sensitive),
            "diversity": list(self.diversity),
            "id_column": self.id_column,
            "k": self.k,
            "alpha": self.alpha,
            "normalize": self.normalize,
            "ingredients_method": self.ingredients_method,
            "slope_threshold": self.slope_threshold,
            "monte_carlo_trials": self.monte_carlo_trials,
            "monte_carlo_epsilons": list(self.monte_carlo_epsilons),
            "seed": self.seed,
        }

    def weights_dict(self) -> dict[str, float]:
        """The weights as a mapping, in declaration order."""
        return dict(self.weights)

    def with_updates(self, **changes) -> "LabelDesign":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def builder_for(
        self, table: Table, dataset_name: str = "unnamed dataset"
    ) -> "RankingFactsBuilder":
        """A fully configured builder for this design over ``table``."""
        from repro.label.builder import RankingFactsBuilder

        scorer = LinearScoringFunction(self.weights_dict())
        builder = (
            RankingFactsBuilder(table, dataset_name=dataset_name)
            .with_scoring(scorer)
            .with_top_k(self.k)
            .with_alpha(self.alpha)
            .with_ingredients_method(self.ingredients_method)
            .with_slope_threshold(self.slope_threshold)
            .with_seed(self.seed)
        )
        if self.id_column is not None:
            builder.with_id_column(self.id_column)
        if not self.normalize:
            builder.with_normalization(NormalizationPlan.raw())
        for attribute in self.sensitive:
            builder.with_sensitive_attribute(attribute)
        if self.diversity:
            builder.with_diversity_attributes(list(self.diversity))
        else:
            builder.with_diversity_attributes(list(self.sensitive))
        if self.monte_carlo_trials > 0:
            builder.with_monte_carlo_stability(
                trials=self.monte_carlo_trials,
                epsilons=self.monte_carlo_epsilons,
            )
        return builder


@dataclass(frozen=True)
class LabelJob:
    """One unit of batch work: a dataset reference plus a design.

    Exactly one of ``dataset`` (built-in name), ``csv_path``, or
    ``table`` must identify the data.
    """

    design: LabelDesign
    dataset: str | None = None
    csv_path: str | None = None
    table: Table | None = None
    dataset_name: str | None = None
    job_id: str = ""

    def __post_init__(self):
        sources = sum(
            source is not None for source in (self.dataset, self.csv_path, self.table)
        )
        if sources != 1:
            raise EngineError(
                "a job needs exactly one data source: "
                '"dataset" (built-in name), "csv_path", or a table'
            )

    @classmethod
    def from_mapping(cls, body: Mapping[str, object], job_id: str = "") -> "LabelJob":
        """Parse one entry of a batch spec (HTTP body or CLI JSON file).

        A spec-supplied ``"id"`` wins over the caller's positional
        ``job_id`` default, so ``--output-dir`` files and poll rows
        carry the user's name for the job, not ``job-<index>``.
        """
        if not isinstance(body, Mapping):
            raise EngineError(f"job must be a mapping, got {type(body).__name__}")
        design = body.get("design")
        if design is None:
            raise EngineError('job needs a "design" object')
        dataset = body.get("dataset")
        csv_path = body.get("csv")
        return cls(
            design=LabelDesign.from_mapping(design),
            dataset=None if dataset is None else str(dataset),
            csv_path=None if csv_path is None else str(csv_path),
            dataset_name=(
                None if body.get("name") is None else str(body.get("name"))
            ),
            job_id=str(body.get("id") or "") or job_id,
        )

    def resolve_table(self) -> tuple[Table, str]:
        """Materialize the data: ``(table, display name)``."""
        if self.table is not None:
            return self.table, self.dataset_name or "in-memory table"
        if self.dataset is not None:
            return dataset_by_name(self.dataset), self.dataset_name or self.dataset
        assert self.csv_path is not None  # __post_init__ guarantees one source
        from pathlib import Path

        return (
            load_csv_dataset(self.csv_path),
            self.dataset_name or Path(self.csv_path).stem,
        )


class JobStatus(enum.Enum):
    """Lifecycle of one batch job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobResult:
    """What came back from one job."""

    job_id: str
    status: JobStatus
    facts: "RankingFacts | None" = None
    fingerprint: str = ""
    cached: bool = False
    seconds: float = 0.0
    error: str = ""
    dataset_name: str = ""

    def summary(self) -> dict[str, object]:
        """JSON-safe status row (no label payload)."""
        return {
            "job_id": self.job_id,
            "status": self.status.value,
            "dataset": self.dataset_name,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
            "error": self.error or None,
        }
