"""Content fingerprints: the engine's cache keys.

A label is a pure function of (table, design): the same data ranked
under the same recipe always yields the same nutritional label.  The
engine exploits that by hashing both halves into a short hex digest —
two requests with equal fingerprints are the *same* computation, no
matter which session, endpoint, or batch job they arrived through.

Fingerprints are content hashes, not identity hashes: a table rebuilt
from the same CSV, or a design dict sent by a different client with
keys in a different order, produces the same digest.  Numeric columns
hash their raw float64 bytes (so ``-0.0`` vs ``0.0`` or NaN payload
differences matter exactly as much as they do to the ranking code:
NaN == NaN at the byte level here, and scoring treats both as missing).
The table half is memoized on the immutable
:class:`~repro.tabular.table.Table` itself, so repeated requests over
the same table hash only the (small) design.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping

from repro.tabular.table import Table

__all__ = ["table_fingerprint", "design_fingerprint", "label_fingerprint"]

_SEP = b"\x1f"  # unit separator: unambiguous field delimiter


def _hash_update_str(digest, text: str) -> None:
    data = text.encode("utf-8")
    digest.update(len(data).to_bytes(8, "little"))
    digest.update(data)


def table_fingerprint(table: Table) -> str:
    """Deterministic content hash of a table (names, kinds, values).

    Delegates to :meth:`~repro.tabular.table.Table.content_digest`,
    which memoizes on the immutable table — so a session re-requesting
    the same dataset pays for the hash once, not per label request.
    """
    return table.content_digest()


def design_fingerprint(design: Mapping[str, object]) -> str:
    """Deterministic hash of a design mapping (key order irrelevant).

    The mapping must be JSON-serializable; ``sort_keys`` makes the
    digest independent of insertion order, so HTTP clients, the CLI,
    and programmatic callers all key into the same cache entries.
    """
    canonical = json.dumps(dict(design), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def label_fingerprint(table: Table, design: Mapping[str, object]) -> str:
    """The cache key for one label: table hash x design hash."""
    digest = hashlib.sha256()
    _hash_update_str(digest, table_fingerprint(table))
    _hash_update_str(digest, design_fingerprint(design))
    return digest.hexdigest()
