"""Concurrent batch execution for label jobs.

:class:`LabelExecutor` owns two layers of concurrency with distinct
roles:

- the **job pool** (threads) fans a batch of
  :class:`~repro.engine.jobs.LabelJob` out so independent labels build
  concurrently;
- the **trial backend** (:mod:`repro.engine.backends`) is handed to the
  label builder so each label's Monte-Carlo stability trials (the hot
  path) fan out *within* a build — serially, over threads, over a
  process pool, as batched array kernels (``vectorized``, the
  default), or sharded across remote worker daemons (``remote``,
  :mod:`repro.cluster`) — selected by name or passed as an instance.

They must be separate: a job thread blocks until its trials finish, so
sharing one pool would deadlock the moment jobs occupy every worker
and their trials queue behind them.  On a single-core host the trial
backend resolves to serial (``trial_workers <= 1`` or a 1-CPU probe —
parallelism there is pure overhead), while the job pool is kept: batch
jobs still overlap their cache waits, and the single-flight cache
collapses duplicate designs to one build.

Batches are tracked by id, so a client can submit asynchronously
(``POST /jobs``) and poll (``GET /jobs/<id>``) — the shape the paper's
"Web-based application" needs to serve many audiences at once.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from repro.engine.backends import (
    TrialBackend,
    VectorizedTrialBackend,
    resolve_trial_backend,
)
from repro.engine.jobs import JobResult, JobStatus, LabelJob
from repro.errors import EngineError
from repro.telemetry import merged_stats, span

__all__ = ["BatchHandle", "LabelExecutor"]


class BatchHandle:
    """One submitted batch: its jobs, futures, and status rollup."""

    def __init__(self, batch_id: str, jobs: Sequence[LabelJob], futures: Sequence[Future]):
        self.batch_id = batch_id
        self.jobs = list(jobs)
        self._futures = list(futures)

    def done(self) -> bool:
        """Whether every job has finished (successfully or not)."""
        return all(future.done() for future in self._futures)

    def results(self, timeout: float | None = None) -> list[JobResult]:
        """Block until every job finishes; results in submission order."""
        return [future.result(timeout=timeout) for future in self._futures]

    def completed_results(self) -> list[JobResult | None]:
        """Non-blocking: finished jobs' results, ``None`` where not done.

        A slot is also ``None`` if the runner itself raised (the status
        rollup reports that as a failed row); callers get exactly the
        stored results, never a recomputation.
        """
        results: list[JobResult | None] = []
        for future in self._futures:
            if future.done() and future.exception() is None:
                results.append(future.result())
            else:
                results.append(None)
        return results

    def status(self) -> dict[str, object]:
        """Non-blocking snapshot for the polling endpoint."""
        rows: list[dict[str, object]] = []
        for job, future in zip(self.jobs, self._futures):
            if future.done():
                exc = future.exception()
                if exc is not None:  # runner bugs; job errors come back as FAILED
                    rows.append({
                        "job_id": job.job_id,
                        "status": JobStatus.FAILED.value,
                        "error": str(exc),
                    })
                else:
                    rows.append(future.result().summary())
            else:
                rows.append({
                    "job_id": job.job_id,
                    "status": (
                        JobStatus.RUNNING.value
                        if future.running()
                        else JobStatus.PENDING.value
                    ),
                })
        return {
            "batch_id": self.batch_id,
            "done": self.done(),
            "total": len(self.jobs),
            "completed": sum(future.done() for future in self._futures),
            "jobs": rows,
        }


class LabelExecutor:
    """Job-pool fan-out for batches plus a pluggable trial backend.

    Parameters
    ----------
    max_workers:
        Job-level concurrency (default: CPU count, at least 2 so
        batches overlap cache waits even on one core).
    trial_workers:
        Workers for the Monte-Carlo trial backend; ``None`` means CPU
        count, and values ``<= 1`` resolve the backend to serial
        (trials run inline on the building thread).
    max_batches:
        Finished-batch handles retained for polling; when exceeded the
        oldest handle is forgotten (its jobs keep running if still
        live, but it can no longer be polled).  Bounds a long-running
        server's memory.
    trial_backend:
        Backend for the Monte-Carlo trials: a name — ``"serial"``,
        ``"thread"``, ``"process"``, ``"vectorized"`` (the default:
        batched array kernels, the fastest single-machine option for
        linear scorers), or ``"remote"`` (trials sharded across the
        worker daemons named by ``REPRO_TRIAL_WORKERS``, see
        :mod:`repro.cluster`) — resolved via
        :func:`repro.engine.backends.resolve_trial_backend`, which
        self-disables worker-pool backends on single-CPU hosts; or an
        already-built :class:`TrialBackend` instance (how the CLI hands
        over a remote coordinator configured from ``--workers-from``).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        trial_workers: int | None = None,
        max_batches: int = 256,
        trial_backend: str | TrialBackend | None = None,
    ):
        cpus = os.cpu_count() or 1
        self._max_workers = max_workers if max_workers is not None else max(2, cpus)
        if self._max_workers < 1:
            raise EngineError(f"max_workers must be >= 1, got {self._max_workers}")
        if max_batches < 1:
            raise EngineError(f"max_batches must be >= 1, got {max_batches}")
        self._trial_workers = trial_workers if trial_workers is not None else cpus
        if trial_backend is None or isinstance(trial_backend, str):
            self._trial_backend_requested = (
                trial_backend if trial_backend is not None else "vectorized"
            )
            # resolve eagerly so an unknown name fails at construction time
            self._trial_backend: TrialBackend = resolve_trial_backend(
                self._trial_backend_requested, trial_workers
            )
        else:  # a pre-built backend instance (e.g. a remote coordinator)
            self._trial_backend_requested = trial_backend.name
            self._trial_backend = trial_backend
        self._max_batches = max_batches
        self._job_pool: ThreadPoolExecutor | None = None
        self._batches: OrderedDict[str, BatchHandle] = OrderedDict()
        self._lock = threading.Lock()
        self._batch_counter = itertools.count(1)
        self._batches_submitted = 0
        self._jobs_submitted = 0
        self._tasks_submitted = 0

    # -- pools -----------------------------------------------------------------

    @property
    def max_workers(self) -> int:
        """Job-level worker count."""
        return self._max_workers

    @property
    def trial_workers(self) -> int:
        """Trial-level worker count (``<= 1`` means inline trials)."""
        return self._trial_workers

    def _jobs(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._job_pool is None:
                self._job_pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="label-job",
                )
            return self._job_pool

    def trial_backend(self) -> TrialBackend:
        """The backend Monte-Carlo trials run on (serial when disabled)."""
        return self._trial_backend

    # -- batches ----------------------------------------------------------------

    def submit_batch(
        self,
        jobs: Sequence[LabelJob],
        runner: Callable[[LabelJob], JobResult],
    ) -> BatchHandle:
        """Queue every job on the job pool; returns the tracked handle."""
        if not jobs:
            raise EngineError("a batch needs at least one job")
        with self._lock:
            batch_id = f"batch-{next(self._batch_counter):04d}"
            self._batches_submitted += 1
            self._jobs_submitted += len(jobs)
        pool = self._jobs()

        def run_job(job: LabelJob) -> JobResult:
            with span("executor.job", job_id=job.job_id, batch_id=batch_id):
                return runner(job)

        # each job gets its own copy of the *submitting* context, so a
        # trace started by the HTTP request propagates into the pool
        # thread (a shared Context cannot be entered concurrently)
        futures = [
            pool.submit(contextvars.copy_context().run, run_job, job)
            for job in jobs
        ]
        handle = BatchHandle(batch_id, jobs, futures)
        with self._lock:
            self._batches[batch_id] = handle
            while len(self._batches) > self._max_batches:
                self._batches.popitem(last=False)
        return handle

    def submit_task(self, fn: Callable, *args) -> Future:
        """Run one bare callable on the job pool.

        The streaming front end uses this to move a label build off the
        request thread (the build publishes events; the handler drains
        them).  The callable gets a copy of the submitting context, so
        traces propagate exactly as they do for batch jobs.
        """
        with self._lock:
            self._tasks_submitted += 1
        return self._jobs().submit(contextvars.copy_context().run, fn, *args)

    def batch(self, batch_id: str) -> BatchHandle:
        """Look a submitted batch up by id."""
        with self._lock:
            handle = self._batches.get(batch_id)
        if handle is None:
            raise EngineError(f"unknown batch id {batch_id!r}")
        return handle

    def batches(self) -> list[str]:
        """Ids of every batch still retained for polling, oldest first."""
        with self._lock:
            return list(self._batches)

    # -- lifecycle ---------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Executor counters for the stats endpoint.

        ``batches_submitted``/``jobs_submitted`` count every submission
        ever made; ``batches_retained`` is the handles currently kept
        for polling (capped at ``max_batches``).
        """
        backend = self._trial_backend
        # process and vectorized backends both record why they declined
        fallback = getattr(backend, "fallback_reason", None)
        with self._lock:
            stats: dict[str, object] = {
                "max_workers": self._max_workers,
                "trial_workers": self._trial_workers,
                # effective, not configured: a fallen-back process backend
                # runs every trial inline and must not read as parallel
                # (vectorized trials are batched, not worker-parallel)
                "parallel_trials": backend.effective_name
                not in ("serial", "vectorized"),
                "trial_backend": self._trial_backend_requested,
                "trial_backend_effective": backend.effective_name,
                "trial_backend_fallback": fallback,
                "batches_submitted": self._batches_submitted,
                "batches_retained": len(self._batches),
                "jobs_submitted": self._jobs_submitted,
                "tasks_submitted": self._tasks_submitted,
            }
        if isinstance(backend, VectorizedTrialBackend):
            stats["trial_kernel_runs"] = backend.kernel_runs
            stats["trial_scalar_fallbacks"] = backend.scalar_runs
        # the remote coordinator carries its own dispatch/failover
        # counters and per-worker registry state; surface them whole
        return merged_stats(
            stats, trial_cluster=getattr(backend, "stats", None)
        )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the job pool and the trial backend (idempotent)."""
        with self._lock:
            job_pool, self._job_pool = self._job_pool, None
        if job_pool is not None:
            job_pool.shutdown(wait=wait)
        self._trial_backend.shutdown()
