"""The label computation service: the seam between app and builder.

Every client — :class:`~repro.app.session.DemoSession`, the HTTP
server's session registry, the CLI's ``batch`` command — asks
:class:`LabelService` for labels instead of driving
:class:`~repro.label.builder.RankingFactsBuilder` directly.  The
service adds what a multi-session deployment needs and a single demo
session never did:

- **content-addressed caching** — identical (table, design) pairs are
  one computation, across sessions and entry points, with single-flight
  deduplication under concurrency (:mod:`repro.engine.cache`);
- **parallel Monte-Carlo** — the builder gets the service's trial pool,
  fanning the stability trials (the hot path) over workers with
  bit-identical results (:mod:`repro.stability.montecarlo`);
- **batch execution** — many jobs submitted at once, tracked by batch
  id for async polling (:mod:`repro.engine.executor`);
- **observability** — one ``stats()`` snapshot over cache, executor,
  and build counters, served at ``GET /engine/stats``.

Remote trial workers (:mod:`repro.cluster`) already land behind this
facade — ``trial_backend="remote"`` — and future scaling work
(sharding the cache, async IO, alternative builders) should too,
without touching the clients.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Sequence
from dataclasses import replace

from repro.engine.backends import TrialBackend
from repro.engine.cache import LabelCache
from repro.engine.executor import BatchHandle, LabelExecutor
from repro.engine.fingerprint import label_fingerprint
from repro.engine.jobs import JobResult, JobStatus, LabelDesign, LabelJob
from repro.engine.streaming import (
    LabelEventQueue,
    LabelStreamEvent,
    error_event,
    label_event,
    replay_events,
    widget_event,
)
from repro.errors import RankingFactsError
from repro.label.builder import RankingFacts, WidgetProgress
from repro.label.render_json import render_json
from repro.tabular.table import Table
from repro.telemetry import (
    MetricsRegistry,
    get_default_registry,
    get_logger,
    merged_stats,
    span,
)

_log = get_logger("engine.service")

__all__ = ["LabelOutcome", "LabelService"]


class LabelOutcome:
    """A served label plus how it was produced (which tier? how long?).

    ``tier`` is ``"l1"`` (memory hit), ``"l2"`` (served from the
    durable store), or ``"build"`` (cold Monte-Carlo build); without a
    store, memory hits are still ``"l1"``.  ``cached`` stays the
    boolean clients already rely on: anything but a cold build.
    """

    __slots__ = ("facts", "cached", "fingerprint", "seconds", "tier")

    def __init__(
        self,
        facts: RankingFacts,
        cached: bool,
        fingerprint: str,
        seconds: float,
        tier: str = "build",
    ):
        self.facts = facts
        self.cached = cached
        self.fingerprint = fingerprint
        self.seconds = seconds
        self.tier = tier


class LabelService:
    """Cached, parallel, multi-session label computation.

    Parameters
    ----------
    cache_size:
        LRU capacity, in labels.
    max_workers:
        Job-level batch concurrency (default: CPU count, min 2).
    trial_workers:
        Monte-Carlo trial concurrency (default: CPU count; ``<= 1``
        runs trials inline — the right call on single-core hosts).
    use_cache:
        Master switch, mostly for benchmarking cold builds.
    trial_backend:
        The Monte-Carlo trial backend: a name — ``"serial"``,
        ``"thread"``, ``"process"``, ``"vectorized"`` (the default),
        or ``"remote"`` (trials sharded across the worker daemons in
        ``REPRO_TRIAL_WORKERS``; see :mod:`repro.cluster`) — or an
        already-built :class:`~repro.engine.backends.TrialBackend`
        instance.  All of them serve byte-identical labels for equal
        seeds; worker-pool backends self-disable to serial on
        single-CPU hosts unless ``trial_workers`` forces a pool, while
        ``vectorized`` batches the trials into array kernels and needs
        no workers at all.
    cache_max_bytes:
        Optional cache budget in (estimated) bytes; evicts
        least-recently-used labels past it (see
        :class:`~repro.engine.cache.LabelCache`).
    cache_ttl:
        Optional label time-to-live in seconds; expired entries rebuild
        on next request.
    store_path:
        Opt-in durable L2: path to a
        :class:`~repro.store.store.LabelStore` SQLite file.  Labels are
        then served through a
        :class:`~repro.store.tiering.TieredLabelCache` — memory first,
        the store on an L1 miss (promoted back into memory), a build
        only on a double miss — and every fresh build writes the label
        plus its provenance record through to disk, so labels survive
        restarts and can be shared by several processes on one host.
    store:
        An already-open :class:`~repro.store.store.LabelStore` instance
        (wins over ``store_path``); the service owns its shutdown.
    """

    def __init__(
        self,
        cache_size: int = 64,
        max_workers: int | None = None,
        trial_workers: int | None = None,
        use_cache: bool = True,
        trial_backend: "str | TrialBackend | None" = None,
        cache_max_bytes: int | None = None,
        cache_ttl: float | None = None,
        store_path: "str | None" = None,
        store: "object | None" = None,
    ):
        self._cache = LabelCache(
            max_size=cache_size, max_bytes=cache_max_bytes, ttl=cache_ttl
        )
        self._store = None
        self._tiers = None
        if (store is not None or store_path is not None) and not use_cache:
            # the store is served through the tiered cache; disabling
            # the cache would silently never read or write it
            raise RankingFactsError(
                "use_cache=False cannot be combined with a label store: "
                "the store is the cache's L2 tier"
            )
        if store is not None or store_path is not None:
            # local import: repro.store depends on repro.engine.cache
            from repro.store.store import LabelStore
            from repro.store.tiering import TieredLabelCache

            self._store = store if store is not None else LabelStore(store_path)
            self._tiers = TieredLabelCache(self._cache, self._store)
        self._executor = LabelExecutor(
            max_workers=max_workers,
            trial_workers=trial_workers,
            trial_backend=trial_backend,
        )
        self._use_cache = use_cache
        self._lock = threading.Lock()
        self._builds = 0
        self._requests = 0
        self._registry = get_default_registry()
        self._tier_counter = self._registry.counter(
            "repro_label_requests_total",
            "Labels served, by tier (l1, l2, build)",
            tag_names=("tier",),
        )
        self._widget_seconds = self._registry.histogram(
            "repro_widget_seconds",
            "Build time of one label widget, by widget name",
            tag_names=("widget",),
        )

    # -- the core: one label -------------------------------------------------------

    def build_label(
        self,
        table: Table,
        design: LabelDesign,
        dataset_name: str = "unnamed dataset",
        progress: "WidgetProgress | None" = None,
    ) -> LabelOutcome:
        """Serve the label for (table, design), building only on miss.

        The cache key is the content fingerprint of both halves, so a
        repeated request for an unchanged design performs zero rebuilds
        regardless of which session issues it.  ``dataset_name`` is
        display metadata and deliberately *not* part of the key... but
        it is rendered into the label, so it rides along in the design
        fingerprint input to keep cached bytes exact.

        ``progress`` is called per finished widget **only when this
        request performs the build** — a cache hit (or losing the
        single-flight race to a concurrent identical request) returns
        the shared result without re-running the widgets.  Streaming
        callers replay the widgets from the final label in that case
        (:meth:`stream_label`).  Callback exceptions are swallowed: a
        broken consumer must not poison the build other waiters share.
        """
        key = label_fingerprint(
            table, {"design": design.canonical_dict(), "dataset_name": dataset_name}
        )
        with self._lock:
            self._requests += 1
        with span("label.build", fingerprint=key[:12], dataset=dataset_name):
            outcome = self._serve_label(key, table, design, dataset_name, progress)
        self._tier_counter.inc(tier=outcome.tier)
        _log.debug(
            "label %s served from %s in %.6fs",
            key[:12], outcome.tier, outcome.seconds,
        )
        return outcome

    def _widget_progress(
        self, progress: "WidgetProgress | None"
    ) -> WidgetProgress:
        """The builder callback: always observe, optionally forward."""

        def on_widget(name: str, widget: object, seconds: float) -> None:
            self._widget_seconds.observe(seconds, widget=name)
            if progress is not None:
                try:
                    progress(name, widget, seconds)
                except Exception:  # a consumer bug must not fail the build
                    _log.exception(
                        "widget progress callback failed for %r; "
                        "continuing the build", name,
                    )

        return on_widget

    def _serve_label(
        self,
        key: str,
        table: Table,
        design: LabelDesign,
        dataset_name: str,
        progress: "WidgetProgress | None" = None,
    ) -> LabelOutcome:
        start = time.perf_counter()

        def build() -> RankingFacts:
            with self._lock:
                self._builds += 1
            builder = design.builder_for(table, dataset_name=dataset_name)
            builder.with_trial_backend(self._executor.trial_backend())
            return builder.build(progress=self._widget_progress(progress))

        if not self._use_cache:
            facts = build()
            return LabelOutcome(facts, False, key, time.perf_counter() - start)
        if self._tiers is not None:

            def build_with_provenance():
                from repro.store.provenance import LabelProvenance

                built_at = time.perf_counter()
                facts = build()
                provenance = LabelProvenance.capture(
                    key,
                    table,
                    design,
                    dataset_name,
                    self._executor,
                    build_seconds=time.perf_counter() - built_at,
                )
                return facts, provenance

            facts, tier = self._tiers.get_or_build(key, build_with_provenance)
            return LabelOutcome(
                facts, tier != "build", key, time.perf_counter() - start, tier=tier
            )
        facts, cached = self._cache.get_or_build(key, build)
        return LabelOutcome(
            facts,
            cached,
            key,
            time.perf_counter() - start,
            tier="l1" if cached else "build",
        )

    # -- streaming ---------------------------------------------------------------------

    def stream_label(
        self,
        table: Table,
        design: LabelDesign,
        dataset_name: str = "unnamed dataset",
        events: "LabelEventQueue | None" = None,
    ) -> LabelEventQueue:
        """Serve a label as a stream of staged widget events.

        Returns immediately with the :class:`LabelEventQueue` the
        consumer drains; the build runs on the executor's job pool.  A
        live build emits each widget as it finishes (cheapest first —
        most of the label arrives while the Monte-Carlo stability loop
        is still running); a cache hit, or losing the single-flight
        race to a concurrent identical request, **replays** the widgets
        from the finished label (``streamed=False``) so consumers see
        one protocol either way.  The stream ends with exactly one
        terminal event: ``label`` (carrying the full label document,
        byte-identical to the non-streamed render, plus fingerprint and
        tier) or ``error``.

        Backpressure is the queue's: a consumer that stops draining
        aborts the stream after one publish timeout, and the build
        carries on for the cache — it is never blocked by a slow
        client.
        """
        if events is None:
            events = LabelEventQueue()

        def produce() -> None:
            live = 0

            def on_widget(name: str, widget: object, seconds: float) -> None:
                nonlocal live
                live += 1
                events.publish(widget_event(name, widget, seconds))

            try:
                outcome = self.build_label(
                    table, design, dataset_name, progress=on_widget
                )
            except RankingFactsError as exc:
                events.publish(error_event(str(exc), type(exc).__name__))
                events.close()
                return
            except Exception as exc:  # the consumer needs a terminal event
                events.publish(
                    error_event(f"{type(exc).__name__}: {exc}", type(exc).__name__)
                )
                events.close()
                return
            if live == 0:  # cache hit or lost the single-flight race
                for event in replay_events(outcome.facts.label):
                    events.publish(event)
            events.publish(
                label_event(
                    {
                        "label": json.loads(render_json(outcome.facts.label)),
                        "fingerprint": outcome.fingerprint,
                        "cached": outcome.cached,
                        "tier": outcome.tier,
                        "seconds": outcome.seconds,
                    },
                    streamed=live > 0,
                )
            )
            events.close()

        self._executor.submit_task(produce)
        return events

    def stream_batch(
        self, jobs: Sequence[LabelJob], events: "LabelEventQueue | None" = None
    ) -> tuple[BatchHandle, LabelEventQueue]:
        """Submit a batch whose progress streams as label events.

        Jobs run concurrently on the job pool, so events from different
        jobs interleave; every event carries a ``job_id``.  Unlike
        :meth:`stream_label`, ``error`` events here are **per job** —
        one failed job does not end the stream — and the stream closes
        once every job has finished.
        """
        if events is None:
            events = LabelEventQueue()
        numbered = [
            job if job.job_id else replace(job, job_id=f"job-{index}")
            for index, job in enumerate(jobs)
        ]

        def runner(job: LabelJob) -> JobResult:
            live = 0

            def on_widget(name: str, widget: object, seconds: float) -> None:
                nonlocal live
                live += 1
                base = widget_event(name, widget, seconds)
                events.publish(
                    LabelStreamEvent(
                        kind="widget",
                        name=name,
                        seconds=seconds,
                        payload={**base.payload, "job_id": job.job_id},
                    )
                )

            result = self.run_job(job, progress=on_widget)
            if result.status is JobStatus.DONE:
                if live == 0:  # cached job: replay its widgets
                    for event in replay_events(result.facts.label):
                        events.publish(
                            replace(
                                event,
                                payload={**event.payload, "job_id": job.job_id},
                            )
                        )
                events.publish(
                    label_event(
                        {
                            "job_id": job.job_id,
                            "label": json.loads(render_json(result.facts.label)),
                            "fingerprint": result.fingerprint,
                            "cached": result.cached,
                            "seconds": result.seconds,
                        },
                        streamed=live > 0,
                    )
                )
            else:
                base = error_event(result.error or "job failed")
                events.publish(
                    LabelStreamEvent(
                        kind="error",
                        payload={**base.payload, "job_id": job.job_id},
                    )
                )
            return result

        handle = self._executor.submit_batch(numbered, runner)

        def close_when_done() -> None:
            try:
                handle.results()
            finally:
                events.close()

        threading.Thread(
            target=close_when_done, name="stream-batch-close", daemon=True
        ).start()
        return handle, events

    # -- batches ---------------------------------------------------------------------

    def run_job(
        self, job: LabelJob, progress: "WidgetProgress | None" = None
    ) -> JobResult:
        """Run one job to completion, capturing failures as results."""
        started = time.perf_counter()
        try:
            table, name = job.resolve_table()
            outcome = self.build_label(
                table, job.design, dataset_name=name, progress=progress
            )
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.DONE,
                facts=outcome.facts,
                fingerprint=outcome.fingerprint,
                cached=outcome.cached,
                seconds=time.perf_counter() - started,
                dataset_name=name,
            )
        except RankingFactsError as exc:
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                seconds=time.perf_counter() - started,
                error=str(exc),
                dataset_name=job.dataset_name or job.dataset or job.csv_path or "",
            )
        except Exception as exc:  # unexpected faults must not kill the batch
            # e.g. a binary file handed to the CSV loader raises
            # UnicodeDecodeError, not a RankingFactsError; the other
            # jobs' results still matter
            return JobResult(
                job_id=job.job_id,
                status=JobStatus.FAILED,
                seconds=time.perf_counter() - started,
                error=f"{type(exc).__name__}: {exc}",
                dataset_name=job.dataset_name or job.dataset or job.csv_path or "",
            )

    def submit_batch(self, jobs: Sequence[LabelJob]) -> BatchHandle:
        """Queue a batch asynchronously; poll via :meth:`batch`."""
        numbered = [
            job if job.job_id else replace(job, job_id=f"job-{index}")
            for index, job in enumerate(jobs)
        ]
        return self._executor.submit_batch(numbered, self.run_job)

    def run_batch(self, jobs: Sequence[LabelJob]) -> list[JobResult]:
        """Submit and block until every job finishes (CLI path)."""
        return self.submit_batch(jobs).results()

    def batch(self, batch_id: str) -> BatchHandle:
        """Look up a previously submitted batch."""
        return self._executor.batch(batch_id)

    # -- observability and lifecycle ----------------------------------------------------

    @property
    def cache(self) -> LabelCache:
        """The underlying cache (tests and tuning)."""
        return self._cache

    @property
    def executor(self) -> LabelExecutor:
        """The underlying executor (tests and tuning)."""
        return self._executor

    @property
    def store(self):
        """The durable L2 store, or ``None`` when not configured."""
        return self._store

    @property
    def tiers(self):
        """The tiered cache, or ``None`` when no store is configured."""
        return self._tiers

    def metrics_registries(self) -> list[MetricsRegistry]:
        """Every metric registry this service's components write to.

        The server's ``GET /metrics`` renders these alongside its own;
        component-scoped registries (a coordinator built with its own)
        would otherwise be invisible to the scrape.
        """
        registries = [self._registry]
        backend_registry = getattr(self._executor.trial_backend(), "registry", None)
        if isinstance(backend_registry, MetricsRegistry):
            registries.append(backend_registry)
        return registries

    def stats(self) -> dict[str, object]:
        """One JSON-safe snapshot across cache, executor, and service."""
        with self._lock:
            service = {
                "requests": self._requests,
                "builds": self._builds,
                "cache_enabled": self._use_cache,
            }
        return merged_stats(
            {"service": service},
            cache=self._cache.stats().as_dict,
            executor=self._executor.stats,
            tiers=self._tiers.stats if self._tiers is not None else None,
            store=self._store.stats if self._store is not None else None,
        )

    def shutdown(self) -> None:
        """Stop the worker pools and close the store (if any)."""
        self._executor.shutdown()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "LabelService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
