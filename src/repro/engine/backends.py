"""Pluggable execution backends for the Monte-Carlo trial loop.

The stability estimators run their trials through a module-level
function ``fn(payload, trial) -> result`` where ``payload`` is plain,
picklable data (the table, the design parameters, the baseline).  That
shape lets the *same* trial code run on any :class:`TrialBackend`:

- :class:`SerialTrialBackend` — trials inline on the calling thread;
- :class:`ThreadTrialBackend` — a thread pool (wins when the trial work
  releases the GIL, loses on a single core);
- :class:`ProcessTrialBackend` — a process pool, sidestepping the GIL
  entirely; trials are *chunked* so one payload pickle amortizes over
  many trials instead of paying IPC per trial;
- :class:`VectorizedTrialBackend` — no pool at all: the entire trial
  batch is computed as array operations by the kernels in
  :mod:`repro.stability.kernels`, eliminating per-trial Python
  interpretation (the single biggest single-machine win); trial work
  without a kernel runs inline, with the reason recorded;
- ``remote`` (:class:`repro.cluster.coordinator.RemoteTrialBackend`) —
  the trial batch sharded across worker daemons on *other machines*
  (:mod:`repro.cluster`), with per-chunk failover and a local fallback;
  resolved lazily so the cluster package is only imported when asked
  for;
- :class:`ExecutorTrialBackend` — adapter for a caller-owned
  :class:`concurrent.futures.Executor` (the pre-backend API).

Determinism contract: every backend returns results in trial order
(0..trials-1), and every trial draws from its own ``[seed, trial]`` RNG
stream (:func:`repro.stability.montecarlo.trial_rng`), so the label a
backend produces is byte-identical to the serial one for equal seeds.

:func:`resolve_trial_backend` maps a backend *name* (CLI flag, env var,
service config) to an instance, probing ``os.cpu_count()``: on a
single-CPU host a parallel backend is pure overhead, so ``thread`` and
``process`` self-disable to serial unless a worker count is forced
(``vectorized`` — the default — needs no workers and is never
disabled; ``remote`` reads its worker addresses from the
``REPRO_TRIAL_WORKERS`` environment variable).
The process backend additionally falls back to serial — per instance,
with the reason recorded for ``GET /engine/stats`` — when the trial
work does not pickle or the worker pool breaks.

:func:`run_trial_span` runs the contiguous trial span ``[start, stop)``
of a larger batch on any backend, preserving the absolute trial
indices (and therefore the per-trial RNG streams).  It is how a
cluster worker executes the chunk a coordinator hands it while keeping
the assembled batch byte-identical to a local run.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Callable
from concurrent.futures import (
    CancelledError,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Any, Protocol, runtime_checkable

from repro.errors import EngineError

__all__ = [
    "BACKEND_NAMES",
    "TrialBackend",
    "SerialTrialBackend",
    "ThreadTrialBackend",
    "ProcessTrialBackend",
    "VectorizedTrialBackend",
    "ExecutorTrialBackend",
    "resolve_trial_backend",
    "run_trial_span",
]

#: names accepted by the CLI flag, the env var, and the service config
BACKEND_NAMES = ("serial", "thread", "process", "vectorized", "remote")

TrialFn = Callable[[Any, int], Any]


@runtime_checkable
class TrialBackend(Protocol):
    """How a Monte-Carlo trial loop executes.

    ``run`` must return ``[fn(payload, 0), ..., fn(payload, trials-1)]``
    — results in trial order, regardless of how the work is scheduled.
    """

    #: the backend kind, one of :data:`BACKEND_NAMES` (or "executor")
    name: str

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Execute the trials and return their results in order."""
        ...

    def shutdown(self) -> None:
        """Release any worker resources (idempotent)."""
        ...

    @property
    def effective_name(self) -> str:
        """What actually executes trials now (``serial`` after fallback)."""
        ...


def _run_serially(fn: TrialFn, payload: Any, trials: int) -> list[Any]:
    return [fn(payload, trial) for trial in range(trials)]


class SerialTrialBackend:
    """Trials inline on the calling thread — the reference executor."""

    name = "serial"

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Run every trial inline, in order."""
        return _run_serially(fn, payload, trials)

    def shutdown(self) -> None:
        """Nothing to release."""
        pass

    @property
    def effective_name(self) -> str:
        """Always ``serial``."""
        return self.name


class ExecutorTrialBackend:
    """A caller-owned :class:`Executor` as a backend (legacy adapter).

    The caller keeps ownership: :meth:`shutdown` does **not** stop the
    wrapped executor.  ``Executor.map`` yields results in submission
    order, which is exactly the ordering contract.
    """

    name = "executor"

    def __init__(self, executor: Executor):
        self._executor = executor

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Map the trials over the wrapped executor, in order."""
        return list(self._executor.map(partial(fn, payload), range(trials)))

    def shutdown(self) -> None:
        """The caller owns the executor; nothing to release."""
        pass  # not ours to stop

    @property
    def effective_name(self) -> str:
        """Always ``executor``."""
        return self.name


class ThreadTrialBackend:
    """A lazily started thread pool; per-trial dispatch (no IPC to amortize)."""

    name = "thread"

    def __init__(self, workers: int):
        if workers < 2:
            raise EngineError(f"thread backend needs >= 2 workers, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="mc-trial"
                )
            return self._pool

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Fan the trials over the thread pool; results in order."""
        if trials <= 1:
            return _run_serially(fn, payload, trials)
        pool = self._ensure_pool()
        return list(pool.map(partial(fn, payload), range(trials)))

    def shutdown(self) -> None:
        """Stop the thread pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def effective_name(self) -> str:
        """Always ``thread`` (threads have no fallback path)."""
        return self.name


class VectorizedTrialBackend:
    """Batch the whole trial loop into array kernels — no pool, no GIL.

    Trial functions with a registered kernel
    (:mod:`repro.stability.kernels`: weight perturbation, data
    uncertainty, per-attribute stability over a plain
    :class:`~repro.ranking.scoring.LinearScoringFunction`) are computed
    as one ``(n x T)`` array program, byte-identical to the serial
    scalar loop for equal seeds.  Anything else — an unknown trial
    function, a non-linear scorer, a payload the kernel cannot
    reproduce exactly — runs inline on the scalar path instead.

    Unlike :class:`ProcessTrialBackend`'s sticky degrade, dispatch is
    **per run**: one non-kernel job does not disable vectorization for
    the next.  :attr:`fallback_reason` records the most recent decline
    and :attr:`kernel_runs` / :attr:`scalar_runs` count both outcomes,
    so ``GET /engine/stats`` can report how much of the trial load the
    kernels actually absorbed.
    """

    name = "vectorized"

    def __init__(self):
        self.fallback_reason: str | None = None
        self.kernel_runs = 0
        self.scalar_runs = 0
        self._lock = threading.Lock()

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Run the batch kernel for ``fn``, or the scalar loop inline."""
        return self.run_span(fn, payload, 0, trials)

    def run_span(self, fn: TrialFn, payload: Any, start: int, stop: int) -> list[Any]:
        """Kernel-or-scalar execution of trials ``[start, stop)``.

        The kernels take the span's absolute trial indices, so a
        cluster worker vectorizing one chunk of a sharded batch
        produces the exact bytes the full-batch kernel would for those
        positions.
        """
        # imported lazily: stability imports this module for the
        # TrialBackend protocol, so a module-level import would cycle
        from repro.stability.kernels import dispatch_kernel

        if stop <= start:
            return []
        results, reason = dispatch_kernel(fn, payload, stop - start, start)
        with self._lock:
            if results is None:
                self.scalar_runs += 1
                self.fallback_reason = reason
            else:
                self.kernel_runs += 1
        if results is None:
            return [fn(payload, trial) for trial in range(start, stop)]
        return results

    def shutdown(self) -> None:
        """No pool to release."""
        pass

    @property
    def effective_name(self) -> str:
        """``vectorized``, or ``serial`` while no run has hit a kernel."""
        with self._lock:
            if self.scalar_runs and not self.kernel_runs:
                return "serial"
            return self.name


class _SpanShiftTrial:
    """Adapter shifting a backend's 0-based trial index by ``offset``.

    Instances are picklable whenever ``fn`` is module-level, so a span
    can still cross a process boundary.
    """

    __slots__ = ("fn", "offset")

    def __init__(self, fn: TrialFn, offset: int):
        self.fn = fn
        self.offset = offset

    def __getstate__(self):
        return (self.fn, self.offset)

    def __setstate__(self, state):
        self.fn, self.offset = state

    def __call__(self, payload: Any, trial: int) -> Any:
        return self.fn(payload, self.offset + trial)


def run_trial_span(
    backend: TrialBackend, fn: TrialFn, payload: Any, start: int, stop: int
) -> list[Any]:
    """Run trials ``[start, stop)`` on ``backend`` at their absolute indices.

    Every trial still draws from its own ``[seed, trial]`` RNG stream
    keyed by the *absolute* index, so concatenating the spans of a
    sharded batch reproduces the unsharded run byte-for-byte.  The
    vectorized backend takes the span natively (its kernels accept an
    index offset); pool backends run through a picklable index-shift
    adapter.
    """
    if stop <= start:
        return []
    if start == 0:
        return backend.run(fn, payload, stop)
    if isinstance(backend, VectorizedTrialBackend):
        return backend.run_span(fn, payload, start, stop)
    return backend.run(_SpanShiftTrial(fn, start), payload, stop - start)


def _safe_mp_context() -> multiprocessing.context.BaseContext:
    """A start method that is safe in an already-threaded process.

    The label server (and the job pool) are multithreaded by the time a
    trial pool first spins up, and ``fork`` from a threaded process can
    snapshot another thread mid-lock (numpy/BLAS, malloc) and deadlock
    the child.  ``forkserver`` forks from a clean helper process and
    ``spawn`` starts fresh interpreters; both are safe here because the
    trial functions are module-level and the payloads picklable.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else "spawn"
    )


def _run_trial_chunk(fn: TrialFn, payload: Any, start: int, stop: int) -> list[Any]:
    """Run trials ``[start, stop)`` inside one worker (one IPC round-trip)."""
    return [fn(payload, trial) for trial in range(start, stop)]


def _chunk_spans(trials: int, workers: int, chunk_size: int | None) -> list[tuple[int, int]]:
    """Split ``range(trials)`` into contiguous spans, submission-ordered.

    The default aims for a few chunks per worker: large enough that one
    payload pickle covers many trials, small enough that a slow chunk
    does not straggle the whole loop.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(trials / (workers * 4)))
    return [
        (start, min(start + chunk_size, trials))
        for start in range(0, trials, chunk_size)
    ]


def _reap_pool(pool: ProcessPoolExecutor, timeout: float = 5.0) -> None:
    """Bounded teardown of a degraded process pool.

    CPython 3.11's executor-manager thread can miss its shutdown wakeup
    (``clear()`` racing ``wakeup()`` drops the pipe byte on the
    feeder-error path), leaving it blocked in ``select()`` forever —
    and the ``concurrent.futures`` atexit hook then wedges interpreter
    exit joining it.  Re-sending the wakeup heals the lost-byte race;
    the loop is time-bounded so a truly unrecoverable pool is abandoned
    rather than blocking the build (the serial rerun already owns the
    results).
    """
    thread = getattr(pool, "_executor_manager_thread", None)
    wakeup = getattr(pool, "_executor_manager_thread_wakeup", None)
    lock = getattr(pool, "_shutdown_lock", None)
    deadline = time.monotonic() + timeout
    while thread is not None and thread.is_alive():
        if wakeup is not None and lock is not None:
            try:
                with lock:
                    wakeup.wakeup()
            except Exception:
                pass  # wakeup pipe already closed: the manager is exiting
        thread.join(0.1)
        if time.monotonic() >= deadline:
            break


class ProcessTrialBackend:
    """A process pool with chunked dispatch and a clean serial fallback.

    Parameters
    ----------
    workers:
        Process count (>= 2; use :func:`resolve_trial_backend` for the
        probe-and-disable behaviour on small hosts).
    chunk_size:
        Trials per submitted chunk; default a few chunks per worker.

    Fallback: if the trial function or payload does not pickle, or the
    worker pool breaks, the instance degrades to serial execution for
    this and subsequent runs, recording the reason
    (:attr:`fallback_reason`) so ``GET /engine/stats`` can report the
    *effective* backend instead of the configured one.  Results are
    unaffected either way — the determinism contract makes the serial
    rerun identical.
    """

    name = "process"

    def __init__(self, workers: int, chunk_size: int | None = None):
        if workers < 2:
            raise EngineError(f"process backend needs >= 2 workers, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.fallback_reason: str | None = None
        self._probe_ok = False
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=_safe_mp_context()
                )
            return self._pool

    def _degrade(self, reason: str) -> None:
        with self._lock:
            if self.fallback_reason is None:
                self.fallback_reason = reason
            pool, self._pool = self._pool, None
        if pool is not None:
            # non-blocking shutdown, then a bounded reap: joining a broken
            # pool outright can deadlock on 3.11's lost-wakeup race, and
            # leaving it unjoined hands the same deadlock to the atexit hook
            pool.shutdown(wait=False, cancel_futures=True)
            _reap_pool(pool)

    def run(self, fn: TrialFn, payload: Any, trials: int) -> list[Any]:
        """Run the trials in chunked process batches, or serially after fallback."""
        if self.fallback_reason is not None or trials <= 1:
            return _run_serially(fn, payload, trials)
        if not self._probe_ok:
            # probe before the first submission: ProcessPoolExecutor surfaces
            # pickling failures asynchronously, a dry run here keeps the
            # fallback deterministic.  One probe suffices — later payloads of
            # the same shapes that still fail are caught at result time below.
            try:
                pickle.dumps((fn, payload))
            except Exception as exc:
                self._degrade(f"trial work is not picklable: {exc}")
                return _run_serially(fn, payload, trials)
            self._probe_ok = True
        spans = _chunk_spans(trials, self.workers, self.chunk_size)
        try:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_run_trial_chunk, fn, payload, start, stop)
                for start, stop in spans
            ]
            results: list[Any] = []
            for future in futures:  # submission order == trial order
                results.extend(future.result())
            return results
        except (
            BrokenProcessPool,
            CancelledError,  # a concurrent run's _degrade cancelled our chunks
            pickle.PicklingError,
            TypeError,
            AttributeError,
        ) as exc:
            # pool death or an unpicklable later payload: the serial rerun is
            # byte-identical
            self._degrade(f"process execution failed: {exc}")
            try:
                return _run_serially(fn, payload, trials)
            except Exception:
                # the serial rerun re-raised, so the fault was the trial
                # itself, not serialization or pool health — one bad job must
                # not disable the process backend for every later build (a
                # genuinely broken pool will just re-degrade on its next run)
                with self._lock:
                    self.fallback_reason = None
                raise

    def shutdown(self) -> None:
        """Stop the process pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def effective_name(self) -> str:
        """``process``, or ``serial`` once the instance fell back."""
        return "serial" if self.fallback_reason is not None else self.name


def resolve_trial_backend(
    name: str | None = None, workers: int | None = None
) -> TrialBackend:
    """Build the backend for ``name``, probing the host's CPU count.

    ``None`` means the default: ``vectorized``, which has soaked since
    PR 3 with byte-identical labels and a ~30-60x hot-loop win (pass
    ``"serial"``/``"thread"`` explicitly for the earlier behaviours).
    With ``workers`` unset, the count comes from ``os.cpu_count()`` —
    and a worker-pool backend on a single-CPU host resolves to
    :class:`SerialTrialBackend`, as does any explicit ``workers <= 1``.
    Forcing ``workers >= 2`` yields a real pool even on one CPU (tests
    and benchmarks rely on this to exercise the process path).  The
    ``vectorized`` backend runs no workers at all, so it ignores the
    count and is never self-disabled.  ``remote`` builds a
    :class:`~repro.cluster.coordinator.RemoteTrialBackend` over the
    addresses in the ``REPRO_TRIAL_WORKERS`` environment variable
    (comma-separated ``host:port``) and/or the registry named by
    ``REPRO_TRIAL_REGISTRY`` (a URL — dynamic membership, workers may
    join and leave mid-run); with neither configured it simply runs
    everything on its local fallback, recording the reason.
    """
    requested = name if name is not None else "vectorized"
    if requested not in BACKEND_NAMES:
        raise EngineError(
            f"unknown trial backend {requested!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        )
    if requested == "vectorized":
        return VectorizedTrialBackend()
    if requested == "remote":
        # lazy: the cluster package imports this module for the protocol
        from repro.cluster.coordinator import (
            REGISTRY_ENV_VAR,
            RemoteTrialBackend,
            workers_from_env,
        )

        return RemoteTrialBackend(
            workers_from_env(),
            registry_url=os.environ.get(REGISTRY_ENV_VAR) or None,
        )
    effective_workers = workers if workers is not None else (os.cpu_count() or 1)
    if requested == "serial" or effective_workers <= 1:
        return SerialTrialBackend()
    if requested == "thread":
        return ThreadTrialBackend(effective_workers)
    return ProcessTrialBackend(effective_workers)
