"""The label computation engine: cached, parallel, multi-session.

The paper's tool is "a Web-based application"; serving it to more than
one audience at hardware speed needs a layer between the app and the
label builder.  That layer is this package:

- :mod:`repro.engine.fingerprint` — content hashes for (table, design)
  pairs, so identical requests are identical cache keys;
- :mod:`repro.engine.cache` — a thread-safe LRU of built labels with
  single-flight deduplication and hit/miss/eviction stats;
- :mod:`repro.engine.jobs` — :class:`LabelDesign` / :class:`LabelJob`
  value objects every entry point normalizes into;
- :mod:`repro.engine.backends` — pluggable :class:`TrialBackend`
  execution for the Monte-Carlo trials: serial, thread pool, process
  pool (GIL-free), vectorized (the whole trial batch as array
  kernels, see :mod:`repro.stability.kernels` — the default), or
  remote (the batch sharded across worker daemons with failover, see
  :mod:`repro.cluster`), selected by name;
- :mod:`repro.engine.executor` — thread-pool fan-out for batches, plus
  the trial backend handed to each build;
- :mod:`repro.engine.service` — :class:`LabelService`, the facade the
  session, server, and CLI call.

Determinism contract: a label served by the engine — cached, batched,
or trial-parallel on any backend — is byte-identical to one built
serially by :class:`~repro.label.builder.RankingFactsBuilder` with the
same seed.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    ExecutorTrialBackend,
    ProcessTrialBackend,
    SerialTrialBackend,
    ThreadTrialBackend,
    TrialBackend,
    VectorizedTrialBackend,
    resolve_trial_backend,
    run_trial_span,
)
from repro.engine.cache import CacheStats, LabelCache
from repro.engine.executor import BatchHandle, LabelExecutor
from repro.engine.fingerprint import (
    design_fingerprint,
    label_fingerprint,
    table_fingerprint,
)
from repro.engine.jobs import JobResult, JobStatus, LabelDesign, LabelJob
from repro.engine.service import LabelOutcome, LabelService

__all__ = [
    "BACKEND_NAMES",
    "TrialBackend",
    "SerialTrialBackend",
    "ThreadTrialBackend",
    "ProcessTrialBackend",
    "VectorizedTrialBackend",
    "ExecutorTrialBackend",
    "resolve_trial_backend",
    "run_trial_span",
    "CacheStats",
    "LabelCache",
    "BatchHandle",
    "LabelExecutor",
    "table_fingerprint",
    "design_fingerprint",
    "label_fingerprint",
    "LabelDesign",
    "LabelJob",
    "JobResult",
    "JobStatus",
    "LabelOutcome",
    "LabelService",
]
