"""A thread-safe LRU cache for built labels.

The Monte-Carlo stability loop makes a label expensive to build and
cheap to keep: a :class:`~repro.label.builder.RankingFacts` bundle is a
few immutable dataclasses, while rebuilding it re-runs ``trials x
epsilons`` full re-rankings.  :class:`LabelCache` therefore keeps the
most recently used bundles keyed by their content fingerprint.

Two concurrency guarantees matter for the multi-session server:

- All bookkeeping happens under one lock, so hit/miss/eviction counts
  are exact even under concurrent load.
- :meth:`get_or_build` is *single-flight*: when N threads ask for the
  same missing key at once, exactly one runs the build while the others
  wait for its result — a thundering herd of identical label requests
  costs one Monte-Carlo loop, not N.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import EngineError

__all__ = ["CacheStats", "LabelCache"]

_MISSING = object()


class _BuildSlot:
    """The per-key single-flight state: a lock plus its waiter count.

    The count is what makes the failure path race-free: the slot stays
    registered until the *last* thread that grabbed it leaves, so a
    late arrival always joins the same lock instead of creating a
    fresh one and building concurrently with a retrying waiter.
    """

    __slots__ = ("lock", "waiters")

    def __init__(self):
        self.lock = threading.Lock()
        self.waiters = 0


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict form for the ``/engine/stats`` endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": self.hit_rate,
        }


class LabelCache:
    """Thread-safe LRU mapping of fingerprint -> built value.

    Parameters
    ----------
    max_size:
        Entries kept; the least recently *used* entry is evicted first.
    """

    def __init__(self, max_size: int = 64):
        if max_size < 1:
            raise EngineError(f"cache max_size must be >= 1, got {max_size}")
        self._max_size = max_size
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._build_locks: dict[str, _BuildSlot] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key: str, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self._max_size:
            self._entries.popitem(last=False)
            self._evictions += 1

    def get_or_build(self, key: str, build: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``; build at most once per key.

        Concurrent callers with the same missing key serialize on a
        per-key lock: the first runs ``build()``, the rest find the
        fresh entry when the lock frees.  Distinct keys build fully in
        parallel.  A failing build propagates to every waiter that
        reaches the builder (the key stays absent); waiters retry the
        build one at a time, never concurrently — the slot is only
        unregistered once its last holder leaves, so arrivals during a
        retry join the same lock instead of minting a fresh one.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._hits += 1
                return value, True
            slot = self._build_locks.setdefault(key, _BuildSlot())
            slot.waiters += 1
        try:
            with slot.lock:
                # someone may have finished the build while we waited
                with self._lock:
                    value = self._entries.get(key, _MISSING)
                    if value is not _MISSING:
                        self._entries.move_to_end(key)
                        self._hits += 1
                        return value, True
                    self._misses += 1
                value = build()
                with self._lock:
                    self._put_locked(key, value)
                return value, False
        finally:
            with self._lock:
                slot.waiters -= 1
                if slot.waiters == 0 and self._build_locks.get(key) is slot:
                    del self._build_locks[key]

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self._max_size,
            )
