"""A thread-safe LRU cache for built labels.

The Monte-Carlo stability loop makes a label expensive to build and
cheap to keep: a :class:`~repro.label.builder.RankingFacts` bundle is a
few immutable dataclasses, while rebuilding it re-runs ``trials x
epsilons`` full re-rankings.  :class:`LabelCache` therefore keeps the
most recently used bundles keyed by their content fingerprint.

Three bounding mechanisms compose (any may be off):

- **entry count** (``max_size``) — the original LRU cap;
- **size in bytes** (``max_bytes``) — every entry's footprint is
  estimated at insert time (pickled size, the same bytes a shard or
  spill would pay) and least-recently-used entries are evicted until
  the total fits, so one giant table cannot silently hold the whole
  budget that ``max_size`` was tuned for;
- **time to live** (``ttl`` seconds) — an entry older than the TTL is
  treated as a miss at lookup time (and dropped), so long-running
  servers converge to fresh rebuilds instead of serving a week-old
  label forever.

Two concurrency guarantees matter for the multi-session server:

- All bookkeeping happens under one lock, so hit/miss/eviction/
  expiration counts (and the byte total) are exact even under
  concurrent load.
- :meth:`get_or_build` is *single-flight*: when N threads ask for the
  same missing key at once, exactly one runs the build while the others
  wait for its result — a thundering herd of identical label requests
  costs one Monte-Carlo loop, not N.
"""

from __future__ import annotations

import pickle
import sys
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import EngineError

__all__ = ["CacheStats", "LabelCache"]

_MISSING = object()


def _estimate_size(value: Any) -> int:
    """A value's approximate footprint in bytes (pickled size).

    Pickling is what a future cache shard or disk spill would pay, so
    it is the honest unit; unpicklable values fall back to
    ``sys.getsizeof`` (shallow, but better than zero).
    """
    try:
        return len(pickle.dumps(value))
    except Exception:
        return sys.getsizeof(value)


class _CacheEntry:
    """One cached value plus its accounting facts."""

    __slots__ = ("value", "size", "stamp")

    def __init__(self, value: Any, size: int, stamp: float):
        self.value = value
        self.size = size
        self.stamp = stamp


class _BuildSlot:
    """The per-key single-flight state: a lock plus its waiter count.

    The count is what makes the failure path race-free: the slot stays
    registered until the *last* thread that grabbed it leaves, so a
    late arrival always joins the same lock instead of creating a
    fresh one and building concurrently with a retrying waiter.
    """

    __slots__ = ("lock", "waiters")

    def __init__(self):
        self.lock = threading.Lock()
        self.waiters = 0


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int
    bytes: int = 0
    max_bytes: int | None = None
    expirations: int = 0
    ttl: float | None = None

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float | int | None]:
        """Plain-dict form for the ``/engine/stats`` endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "expirations": self.expirations,
            "ttl": self.ttl,
            "hit_rate": self.hit_rate,
        }


class LabelCache:
    """Thread-safe LRU mapping of fingerprint -> built value.

    Parameters
    ----------
    max_size:
        Entries kept; the least recently *used* entry is evicted first.
    max_bytes:
        Optional byte budget over the entries' estimated (pickled)
        sizes; LRU entries are evicted until the total fits.  The most
        recently inserted entry is never evicted by the byte budget,
        so a single oversized value still caches (and is the next
        eviction victim).
    ttl:
        Optional time-to-live in seconds; an entry older than this is
        dropped at lookup time and counted as an expiration + miss.
    clock:
        The time source (monotonic seconds); injectable for tests.
    """

    def __init__(
        self,
        max_size: int = 64,
        max_bytes: int | None = None,
        ttl: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_size < 1:
            raise EngineError(f"cache max_size must be >= 1, got {max_size}")
        if max_bytes is not None and max_bytes < 1:
            raise EngineError(f"cache max_bytes must be >= 1, got {max_bytes}")
        if ttl is not None and ttl <= 0:
            raise EngineError(f"cache ttl must be > 0 seconds, got {ttl}")
        self._max_size = max_size
        self._max_bytes = max_bytes
        self._ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[str, _CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._build_locks: dict[str, _BuildSlot] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    # -- internals (call with the lock held) -----------------------------------

    def _expired(self, entry: _CacheEntry) -> bool:
        return self._ttl is not None and self._clock() - entry.stamp > self._ttl

    def _drop_locked(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.size

    def _peek_locked(self, key: str) -> Any:
        """Fetch + LRU-touch, expiring stale entries; no hit/miss count."""
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry):
            self._drop_locked(key)
            self._expirations += 1
            entry = None
        if entry is None:
            return _MISSING
        self._entries.move_to_end(key)
        return entry.value

    def _lookup_locked(self, key: str) -> Any:
        """:meth:`_peek_locked` plus the hit/miss bookkeeping."""
        value = self._peek_locked(key)
        if value is _MISSING:
            self._misses += 1
        else:
            self._hits += 1
        return value

    def _sweep_expired_locked(self) -> None:
        """Drop every TTL-expired entry (counted as expirations).

        Run before evicting under pressure: an expired entry is dead
        weight whatever its LRU position, so it must never cost a live
        entry its slot — and dropping it counts as an expiration, not
        an eviction, keeping the two counters honest.
        """
        if self._ttl is None:
            return
        for key in [
            key for key, entry in self._entries.items() if self._expired(entry)
        ]:
            self._drop_locked(key)
            self._expirations += 1

    def _put_locked(self, key: str, value: Any) -> None:
        self._drop_locked(key)
        entry = _CacheEntry(value, _estimate_size(value), self._clock())
        self._entries[key] = entry
        self._bytes += entry.size
        if len(self._entries) > self._max_size or (
            self._max_bytes is not None and self._bytes > self._max_bytes
        ):
            self._sweep_expired_locked()
        while len(self._entries) > self._max_size:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self._evictions += 1
        if self._max_bytes is not None:
            # keep at least the fresh entry: an oversized value still
            # caches once rather than looping forever
            while self._bytes > self._max_bytes and len(self._entries) > 1:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.size
                self._evictions += 1

    # -- public API ------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or miss (expired = miss)."""
        with self._lock:
            value = self._lookup_locked(key)
            return default if value is _MISSING else value

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries past the caps."""
        with self._lock:
            self._put_locked(key, value)

    def get_or_build(self, key: str, build: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, was_cached)``; build at most once per key.

        Concurrent callers with the same missing key serialize on a
        per-key lock: the first runs ``build()``, the rest find the
        fresh entry when the lock frees.  Distinct keys build fully in
        parallel.  A failing build propagates to every waiter that
        reaches the builder (the key stays absent); waiters retry the
        build one at a time, never concurrently — the slot is only
        unregistered once its last holder leaves, so arrivals during a
        retry join the same lock instead of minting a fresh one.
        """
        with self._lock:
            value = self._peek_locked(key)
            if value is not _MISSING:
                self._hits += 1
                return value, True
            slot = self._build_locks.setdefault(key, _BuildSlot())
            slot.waiters += 1
        try:
            with slot.lock:
                # someone may have finished the build while we waited
                with self._lock:
                    value = self._peek_locked(key)
                    if value is not _MISSING:
                        self._hits += 1
                        return value, True
                    self._misses += 1
                value = build()
                with self._lock:
                    self._put_locked(key, value)
                return value, False
        finally:
            with self._lock:
                slot.waiters -= 1
                if slot.waiters == 0 and self._build_locks.get(key) is slot:
                    del self._build_locks[key]

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            existed = key in self._entries
            self._drop_locked(key)
            return existed

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self._max_size,
                bytes=self._bytes,
                max_bytes=self._max_bytes,
                expirations=self._expirations,
                ttl=self._ttl,
            )
