"""B9: span-backhaul overhead on the worker chunk path.

The tentpole's perf bar: serializing a traced chunk's spans into the
response frame (wire minor 2) must cost less than 5% of the chunk
path.  Measured where the cost lives — ``TrialWorker.run_chunk`` with
a propagated trace id, backhaul on vs off — over enough iterations to
drown scheduler noise.  Untraced chunks are asserted to pay nothing
structurally: their response body stays the bare minor-1 result list.
"""

import pickle
import time

from benchmarks.conftest import report
from repro.cluster import wire
from repro.cluster.worker import TrialWorker
from repro.telemetry import MetricsRegistry, new_trace_id

CHUNK_TRIALS = 64
ROUNDS = 120


def plus(payload, trial):
    return payload["base"] + trial


def timed_chunks(worker, trace_id, rounds=ROUNDS):
    body = wire.encode_trial_work(plus, {"base": 10})
    request = wire.encode_request(body, 0, CHUNK_TRIALS, trace_id)
    for _ in range(10):  # warm-up: backend dispatch, pickle caches
        worker.run_chunk(request)
    start = time.perf_counter()
    for _ in range(rounds):
        worker.run_chunk(request)
    return (time.perf_counter() - start) / rounds


def test_bench_b9_backhaul_overhead_under_five_percent():
    trace = new_trace_id()
    on = TrialWorker(backend="serial", registry=MetricsRegistry())
    off = TrialWorker(
        backend="serial", registry=MetricsRegistry(), span_backhaul=False
    )

    # interleave three measurement rounds and keep the best of each, so
    # a background hiccup in either column cannot manufacture a diff
    on_seconds = min(timed_chunks(on, trace) for _ in range(3))
    off_seconds = min(timed_chunks(off, trace) for _ in range(3))

    overhead = on_seconds / off_seconds - 1.0
    report("B9 span backhaul: traced chunk path", [
        f"{'backhaul off':<16} {off_seconds * 1e6:>9.1f} us/chunk",
        f"{'backhaul on':<16} {on_seconds * 1e6:>9.1f} us/chunk",
        f"{'overhead':<16} {overhead * 100:>8.2f} %",
    ])
    assert overhead < 0.05, (
        f"span backhaul costs {overhead * 100:.2f}% on the chunk path "
        f"(bar: 5%)"
    )


def test_bench_b9_untraced_chunks_pay_nothing_structurally():
    """No trace id -> the response body is the bare minor-1 result list."""
    worker = TrialWorker(backend="serial", registry=MetricsRegistry())
    body = wire.encode_trial_work(plus, {"base": 10})
    response = worker.run_chunk(
        wire.encode_request(body, 0, CHUNK_TRIALS, None)
    )
    decoded_body, *_ = wire.unframe(response)
    assert isinstance(pickle.loads(decoded_body), list)
    assert worker.stats()["backhauled_spans"] == 0
