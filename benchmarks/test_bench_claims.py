"""C1 + C2: the §3 narrated findings, regenerated as numbers.

C1 — "by comparing the pie charts for top-10 and over-all, we observe
that only large departments are present in the top-10" (§2.4).

C2 — "attribute GRE is one of the scoring attributes, but it does not
correlate with the ranked outcome.  Inspecting the detailed Recipe
widget, we observe that the range of values and the median for GRE are
very similar in the top-10 and overall" (§3).  Also compares the two
importance estimators (spearman vs learned linear weights) on the same
ranking — the design choice DESIGN.md §6 calls out.
"""

import pytest

from benchmarks.conftest import report
from repro.diversity import top_k_vs_overall
from repro.ingredients import correlation_importance, linear_model_importance
from repro.tabular import describe


def test_bench_c1_top10_composition(benchmark, figure1_ranking):
    result = benchmark(top_k_vs_overall, figure1_ranking, "DeptSizeBin", 10)

    rows = [
        f"{category:<8} top-10 {result.top_k.proportions.get(category, 0):6.1%}  "
        f"overall {share:6.1%}"
        for category, share in result.overall.proportions.items()
    ]
    rows.append(f"missing from top-10: {', '.join(result.missing_categories())}")
    report("C1: DeptSizeBin pie charts, top-10 vs overall", rows)

    assert result.top_k.proportions["large"] == 1.0
    assert result.missing_categories() == ("small",)
    # overall is a median split: ~half and half
    assert result.overall.proportions["large"] == pytest.approx(0.5, abs=0.05)


def test_bench_c2_gre_immaterial(benchmark, figure1_ranking):
    def analyze():
        spearman = correlation_importance(
            figure1_ranking, ["PubCount", "Faculty", "GRE"]
        )
        linear = linear_model_importance(
            figure1_ranking, ["PubCount", "Faculty", "GRE"]
        )
        return spearman, linear

    spearman, linear = benchmark(analyze)

    rows = ["attribute   spearman |rho|   linear |coef|"]
    for name in ("PubCount", "Faculty", "GRE"):
        rows.append(
            f"{name:<12} {spearman.importance_of(name).importance:12.3f}   "
            f"{linear.importance_of(name).importance:12.3f}"
        )
    report("C2a: importance estimators agree GRE is immaterial", rows)

    # both estimators rank GRE last
    for analysis in (spearman, linear):
        assert analysis.importances[-1].attribute == "GRE"
    # the model-free estimator separates GRE by a wide margin from both
    spearman_importances = {
        i.attribute: i.importance for i in spearman.importances
    }
    assert spearman_importances["GRE"] < 0.5 * min(
        spearman_importances["PubCount"], spearman_importances["Faculty"]
    )
    # the linear model splits credit between the collinear PubCount and
    # Faculty (r > 0.6), so individual coefficients are unstable; the
    # COMBINED size signal still dwarfs GRE — a documented limitation of
    # learned-weight importances (DESIGN.md §6)
    linear_importances = {i.attribute: i.importance for i in linear.importances}
    assert linear_importances["GRE"] < 0.5 * (
        linear_importances["PubCount"] + linear_importances["Faculty"]
    )


def test_bench_c2_gre_recipe_detail(benchmark, figure1_ranking):
    def gre_stats():
        top = describe(figure1_ranking.top_k(10).table.column("GRE"))
        overall = describe(figure1_ranking.table.column("GRE"))
        return top, overall

    top, overall = benchmark(gre_stats)
    rows = [
        f"top-10:  min {top.minimum:.3f}  median {top.median:.3f}  max {top.maximum:.3f}",
        f"overall: min {overall.minimum:.3f}  median {overall.median:.3f}  "
        f"max {overall.maximum:.3f}",
    ]
    report("C2b: GRE range/median, top-10 vs overall (normalized units)", rows)

    overall_range = overall.maximum - overall.minimum
    assert abs(top.median - overall.median) < 0.3 * overall_range
    # top-10 GRE range covers most of the overall range: GRE does not
    # separate the top from the rest
    assert (top.maximum - top.minimum) > 0.4 * overall_range
