"""Shared benchmark fixtures and the result-reporting helper.

Every benchmark regenerates one of the paper's artifacts (DESIGN.md §3
maps experiment ids to modules).  Because the paper is a demo, its
"tables" are the values visible in Figures 1-3 and the §3 narration;
each bench prints the reproduced rows via :func:`report` (visible with
``pytest benchmarks/ -s``) and asserts the shape findings that
EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys

import pytest

from repro.datasets import cs_departments
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.ranking import LinearScoringFunction, rank_table

#: the Figure-1 configuration, shared by several benchmarks
FIGURE1_WEIGHTS = {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}


def report(title: str, rows: list[str]) -> None:
    """Print one reproduced table (stderr survives pytest capture)."""
    print(f"\n--- {title} ---", file=sys.stderr)
    for row in rows:
        print(f"  {row}", file=sys.stderr)


@pytest.fixture(scope="session")
def cs_table():
    return cs_departments()


@pytest.fixture(scope="session")
def figure1_scorer():
    return LinearScoringFunction(FIGURE1_WEIGHTS)


@pytest.fixture(scope="session")
def figure1_ranking(cs_table, figure1_scorer):
    prepared = TablePreprocessor(
        NormalizationPlan.minmax_all(list(FIGURE1_WEIGHTS))
    ).fit_transform(cs_table)
    return rank_table(prepared, figure1_scorer, "DeptName")
