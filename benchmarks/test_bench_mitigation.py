"""A3: the cost of fairness — how far must the recipe move?

§4 names mitigation-by-suggestion as the tool's next step.  This bench
quantifies the trade-off on the Figure-1 instance: the L1 weight change
needed for each fairness measure to pass, how much of the original
top-10 each fix preserves, and the pre-processing (weight change) vs
post-processing (FA*IR re-rank) comparison.
"""

import pytest

from benchmarks.conftest import FIGURE1_WEIGHTS, report
from repro.fairness import ProtectedGroup, fair_star_rerank
from repro.fairness.fair_star import FairStarMeasure
from repro.fairness.pairwise import PairwiseMeasure
from repro.fairness.proportion import ProportionMeasure
from repro.mitigation import fairness_frontier, suggest_fair_weights
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.ranking import LinearScoringFunction


@pytest.fixture(scope="module")
def prepared(cs_table):
    return TablePreprocessor(
        NormalizationPlan.minmax_all(list(FIGURE1_WEIGHTS))
    ).fit_transform(cs_table)


def test_bench_a3_cost_per_measure(benchmark, prepared, figure1_scorer):
    measures = {
        "FA*IR": FairStarMeasure(k=10, alpha=0.05),
        "Proportion": ProportionMeasure(k=10),
        "Pairwise": PairwiseMeasure(),
    }

    def search_all():
        out = {}
        for name, measure in measures.items():
            suggestions = suggest_fair_weights(
                prepared, figure1_scorer, "DeptSizeBin", "small",
                measure=measure, id_column="DeptName", max_suggestions=1,
            )
            out[name] = suggestions[0] if suggestions else None
        return out

    results = benchmark.pedantic(search_all, rounds=1, iterations=1)

    rows = []
    for name, suggestion in results.items():
        if suggestion is None:
            rows.append(f"{name:<12} no fair recipe found in neighbourhood")
            continue
        recipe = ", ".join(
            f"{attr}={weight:.2f}" for attr, weight in suggestion.weights.items()
        )
        rows.append(
            f"{name:<12} change {suggestion.distance:.2f}  "
            f"keeps {suggestion.top_k_overlap:.0%} of top-10  ({recipe})"
        )
    report("A3a: minimal recipe change per fairness measure", rows)

    # FA*IR (under-representation at adjusted alpha) is satisfiable here
    assert results["FA*IR"] is not None
    # every returned suggestion moved weight toward GRE, the only
    # size-independent attribute — the semantically right fix
    for suggestion in results.values():
        if suggestion is not None:
            assert suggestion.weights["GRE"] > FIGURE1_WEIGHTS["GRE"]


def test_bench_a3_frontier(benchmark, prepared, figure1_scorer):
    frontier = benchmark.pedantic(
        fairness_frontier,
        args=(prepared, figure1_scorer, "DeptSizeBin", "small"),
        kwargs={"id_column": "DeptName"},
        rounds=1, iterations=1,
    )
    rows = [
        f"change {point.distance:4.2f}   best p {point.p_value:8.4f}   "
        f"{'PASS' if point.fair else ''}"
        for point in frontier
    ]
    report("A3b: distance-vs-fairness frontier (FA*IR)", rows)

    # fairness is monotone-ish in allowed change: the first passing bucket
    # exists and nothing below half its distance passes
    passing = [point for point in frontier if point.fair]
    assert passing
    first_pass = passing[0].distance
    for point in frontier:
        if point.distance < first_pass / 2:
            assert not point.fair


def test_bench_a3_pre_vs_post_processing(benchmark, prepared, figure1_scorer):
    from repro.ranking import rank_table

    def compare():
        baseline = rank_table(prepared, figure1_scorer, "DeptName")
        group = ProtectedGroup(baseline, "DeptSizeBin", "small")
        # post-processing: re-rank under the original recipe
        reranked = fair_star_rerank(group, k=20, alpha=0.05)
        post_overlap = len(
            set(reranked.item_ids()[:10]) & set(baseline.item_ids()[:10])
        ) / 10
        # pre-processing: nearest fair recipe
        suggestion = suggest_fair_weights(
            prepared, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName", max_suggestions=1,
        )
        pre_overlap = suggestion[0].top_k_overlap if suggestion else None
        return post_overlap, pre_overlap

    post_overlap, pre_overlap = benchmark.pedantic(compare, rounds=1, iterations=1)
    report(
        "A3c: top-10 preserved by each intervention",
        [
            f"post-processing (FA*IR re-rank, recipe kept): {post_overlap:.0%}",
            f"pre-processing (nearest fair recipe):         "
            f"{pre_overlap:.0%}" if pre_overlap is not None else "n/a",
        ],
    )
    # the re-ranker is the gentler intervention: it only inserts the
    # protected items the mtable demands, keeping more of the original top
    assert post_overlap >= (pre_overlap or 0.0)
