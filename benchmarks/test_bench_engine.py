"""E1: the label engine — batch executor and cache vs naive serving.

The seed served one synchronous session and rebuilt every label from
scratch; the engine adds content-addressed caching, single-flight
deduplication, and batch execution.  This bench quantifies the two
claims the engine makes:

- a batch of Monte-Carlo-enabled labels through the executor beats the
  sequential builder loop (duplicate designs collapse to one build —
  the realistic multi-user workload where popular recipes repeat);
- a cached label is served orders of magnitude faster than a cold
  build, with byte-identical JSON for equal seeds.

Trial-level parallelism is timed too, but only *reported*: on a
single-core host the trial pool is disabled by design (threads would be
pure overhead), so no speedup is asserted for it.
"""

import os
import time

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.engine import LabelDesign, LabelJob, LabelService
from repro.label.render_json import render_json

TRIALS = 10
EPSILONS = (0.1,)


def bench_table():
    return synthetic_scores_table(800, num_attributes=3, group_advantage=0.8, seed=42)


def mc_design(weights):
    return LabelDesign.create(
        weights=weights,
        sensitive="group",
        id_column="item",
        k=20,
        monte_carlo_trials=TRIALS,
        monte_carlo_epsilons=EPSILONS,
    )


#: three popular recipes, each requested twice (6 jobs, 3 unique)
UNIQUE_DESIGNS = [
    mc_design({"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}),
    mc_design({"attr_1": 0.2, "attr_2": 0.6, "attr_3": 0.2}),
    mc_design({"attr_1": 1.0, "attr_2": 1.0, "attr_3": 1.0}),
]


def test_bench_e1_batch_vs_sequential_loop():
    """Engine batch of 6 MC labels vs the naive sequential builder loop."""
    table = bench_table()
    designs = UNIQUE_DESIGNS * 2  # duplicates, as popular recipes repeat

    start = time.perf_counter()
    sequential = [
        design.builder_for(table, dataset_name="bench").build()
        for design in designs
    ]
    sequential_seconds = time.perf_counter() - start

    with LabelService(cache_size=16, max_workers=4) as service:
        jobs = [
            LabelJob(design=design, table=table, dataset_name="bench")
            for design in designs
        ]
        start = time.perf_counter()
        results = service.run_batch(jobs)
        batch_seconds = time.perf_counter() - start
        stats = service.stats()

    report("E1: batch of 6 MC labels (3 unique designs)", [
        f"sequential loop   {sequential_seconds * 1000:8.1f} ms  (6 cold builds)",
        f"engine batch      {batch_seconds * 1000:8.1f} ms  "
        f"({stats['service']['builds']} builds, "
        f"{stats['cache']['hits']} cache hits)",
        f"speedup           {sequential_seconds / batch_seconds:8.2f}x",
    ])

    # the engine must do the work once per unique design...
    assert stats["service"]["builds"] == len(UNIQUE_DESIGNS)
    # ...be measurably faster than the naive loop...
    assert batch_seconds < sequential_seconds
    # ...and serve byte-identical labels for equal seeds
    for direct, served in zip(sequential, results):
        assert render_json(direct.label) == render_json(served.facts.label)


def test_bench_e1_cached_vs_cold_label(benchmark):
    """Latency of a cache hit vs the cold Monte-Carlo build it replaces."""
    table = bench_table()
    design = UNIQUE_DESIGNS[0]
    with LabelService(cache_size=16) as service:
        start = time.perf_counter()
        cold = service.build_label(table, design, "bench")
        cold_seconds = time.perf_counter() - start
        assert not cold.cached

        def hit():
            outcome = service.build_label(table, design, "bench")
            assert outcome.cached
            return outcome

        outcome = benchmark(hit)
        hit_seconds = benchmark.stats.stats.mean

    report("E1: cold build vs cache hit (MC label, n=800)", [
        f"cold build   {cold_seconds * 1000:8.2f} ms",
        f"cache hit    {hit_seconds * 1000:8.4f} ms",
        f"speedup      {cold_seconds / hit_seconds:8.0f}x",
    ])
    assert outcome.facts is cold.facts
    # "zero rebuilds" must be dramatic, not marginal
    assert hit_seconds < cold_seconds / 10


def test_bench_e1_trial_parallelism_report():
    """Serial vs thread-pool Monte-Carlo trials (report only; see module doc)."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.stability import WeightPerturbationStability
    from repro.ranking.scoring import LinearScoringFunction

    table = bench_table()
    scorer = LinearScoringFunction({"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2})

    serial_est = WeightPerturbationStability(
        table, scorer, "item", k=20, trials=40, seed=1
    )
    start = time.perf_counter()
    serial_outcome = serial_est.assess_at(0.1)
    serial_seconds = time.perf_counter() - start

    with ThreadPoolExecutor(max_workers=4) as pool:
        parallel_est = WeightPerturbationStability(
            table, scorer, "item", k=20, trials=40, seed=1, executor=pool
        )
        start = time.perf_counter()
        parallel_outcome = parallel_est.assess_at(0.1)
        parallel_seconds = time.perf_counter() - start

    report(
        f"E1: 40 MC trials, serial vs 4 threads (host has {os.cpu_count()} CPU)",
        [
            f"serial    {serial_seconds * 1000:8.1f} ms",
            f"threads   {parallel_seconds * 1000:8.1f} ms",
            "(speedup only expected on multi-core hosts)",
        ],
    )
    # the determinism contract holds regardless of host parallelism
    assert serial_outcome == parallel_outcome
