"""B6: streamed label delivery — time-to-first-widget vs the full build.

The streaming refactor's user-facing claim: on a Monte-Carlo-heavy
design the label's cheap widgets (recipe, ingredients, fairness,
diversity) are on the wire while the stability detail is still running
its trials, so a consumer sees the first content in a small fraction
of the full build wall-clock.  The acceptance bound asserted here is
the issue's: first widget in under 25% of the total build time.
"""

import time

from benchmarks.conftest import report
from repro.datasets import cs_departments
from repro.engine import LabelDesign, LabelService

WEIGHTS = {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}

#: heavy enough that the stability widget dominates the build
TRIALS = 3000


def mc_design():
    return LabelDesign.create(
        weights=WEIGHTS,
        sensitive="DeptSizeBin",
        id_column="DeptName",
        monte_carlo_trials=TRIALS,
        monte_carlo_epsilons=(0.05, 0.1, 0.2),
    )


def test_bench_b6_time_to_first_widget_under_quarter_of_build():
    table = cs_departments()
    with LabelService(use_cache=False) as svc:
        started = time.perf_counter()
        events = svc.stream_label(table, mc_design(), "cs")
        first_widget = None
        widget_times = []
        total = None
        while not events.finished:
            event = events.get(timeout=0.5)
            if event is None:
                continue
            now = time.perf_counter() - started
            if event.kind == "widget":
                widget_times.append((event.name, now))
                if first_widget is None:
                    first_widget = now
            elif event.kind == "label":
                total = now
            elif event.kind == "error":
                raise AssertionError(event.payload["error"])

    assert first_widget is not None and total is not None
    report(
        f"B6: streamed label, {TRIALS} MC trials (cs-departments)",
        [
            f"{name:<12} at {seconds * 1000:8.1f} ms"
            for name, seconds in widget_times
        ]
        + [
            f"{'label':<12} at {total * 1000:8.1f} ms",
            f"first widget: {first_widget / total:.1%} of the build wall",
        ],
    )
    # the issue's acceptance bound: first content in < 25% of the wall
    assert first_widget < 0.25 * total, (
        f"first widget at {first_widget:.3f}s of a {total:.3f}s build "
        f"({first_widget / total:.0%}); streaming is not incremental"
    )
    # and the expensive widget really is the last one out
    assert widget_times[-1][0] == "stability"
