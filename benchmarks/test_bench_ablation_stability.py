"""A1: ablation of the Stability widget's design constants.

§2.2 fixes two constants by example — the 0.25 slope threshold and the
top-10 segment — and names two alternative estimators.  This bench:

1. sweeps the threshold over [0.05, 0.5] and k over {5, 10, 20, all}
   on the Figure-1 ranking, showing where the verdict flips;
2. compares the slope method against the Monte-Carlo weight-perturbation
   and data-noise estimators on rankings engineered to be stable and
   fragile, verifying all three orderings agree.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.ranking import LinearScoringFunction, rank_table
from repro.stability import (
    DataUncertaintyStability,
    SlopeStability,
    WeightPerturbationStability,
)
from repro.tabular import Table

THRESHOLDS = (0.05, 0.1, 0.25, 0.4, 0.5)
KS = (5, 10, 20, 51)


def threshold_k_sweep(ranking):
    verdicts = {}
    for k in KS:
        for threshold in THRESHOLDS:
            rep = SlopeStability(k=k, threshold=threshold).assess(ranking)
            verdicts[(k, threshold)] = rep
    return verdicts


def test_bench_a1_threshold_and_k_sweep(benchmark, figure1_ranking):
    verdicts = benchmark(threshold_k_sweep, figure1_ranking)

    rows = ["k     " + "".join(f"thr={t:<6}" for t in THRESHOLDS)]
    for k in KS:
        cells = "".join(
            f"{'S' if verdicts[(k, t)].stable else 'U':<10}" for t in THRESHOLDS
        )
        rows.append(f"{k:<6}{cells}")
    slope10 = verdicts[(10, 0.25)].slope_top_k
    rows.append(f"(top-10 slope magnitude: {slope10:.3f})")
    report("A1a: stability verdict vs threshold and k (S=stable, U=unstable)", rows)

    # the paper's configuration is stable...
    assert verdicts[(10, 0.25)].stable
    # ...but the verdict is threshold-sensitive: some swept setting flips it
    flips = {v.stable for v in verdicts.values()}
    assert flips == {True, False}


def engineered_tables():
    rng = np.random.default_rng(3)
    n = 40
    # convex score decay: the top-10 covers ~80% of the score range, so
    # the rescaled top-10 slope is far above the 0.25 threshold
    decay = 100.0 * 0.85 ** np.arange(n)
    stable = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": decay,
            "b": decay + rng.normal(0, 0.3, n),
        }
    )
    fragile = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": 50 + rng.normal(0, 0.05, n),
            "b": 50 + rng.normal(0, 0.05, n),
        }
    )
    return stable, fragile


def estimator_comparison():
    stable_t, fragile_t = engineered_tables()
    scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
    out = {}
    for name, table in (("stable", stable_t), ("fragile", fragile_t)):
        ranking = rank_table(table, scorer, "name")
        slope = SlopeStability(k=10).assess(ranking)
        wps = WeightPerturbationStability(table, scorer, "name", trials=20)
        dus = DataUncertaintyStability(table, scorer, "name", trials=20)
        out[name] = {
            "slope": slope.slope_top_k,
            "slope_verdict": slope.verdict,
            "weight_eps": wps.minimal_change_epsilon(iterations=6),
            "noise_eps": dus.minimal_change_epsilon(iterations=6),
        }
    return out


def test_bench_a1_estimator_agreement(benchmark):
    results = benchmark.pedantic(estimator_comparison, rounds=1, iterations=1)

    rows = [
        f"{name:<9} slope {r['slope']:.3f} ({r['slope_verdict']})   "
        f"min weight-eps {r['weight_eps']:.3f}   "
        f"min noise-eps {r['noise_eps']:.3f}"
        for name, r in results.items()
    ]
    report("A1b: three stability estimators on engineered rankings", rows)

    stable, fragile = results["stable"], results["fragile"]
    # all three estimators order the two rankings the same way
    assert stable["slope"] > fragile["slope"]
    assert stable["slope_verdict"] == "stable"
    assert fragile["slope_verdict"] == "unstable"
    assert stable["weight_eps"] > fragile["weight_eps"]
    assert stable["noise_eps"] > fragile["noise_eps"]
