"""C4: fairness beyond binary categories (paper §4, implemented).

§4: "We are actively working on defining group fairness measures that
go beyond binary categories (e.g., can be applied to ethnicity, not
only to gender)."  This bench runs the one-vs-rest multi-valued audit
with across-group correction on the COMPAS-like data's six race
categories, and quantifies what the correction buys: the family-wise
false-flag rate on fair rankings, uncorrected vs corrected.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.datasets import compas
from repro.fairness import evaluate_fairness_multivalued
from repro.ranking import LinearScoringFunction, rank_table
from repro.tabular import Table


def compas_race_audit():
    table = compas(n=3000)
    ranking = rank_table(
        table,
        LinearScoringFunction({"decile_score": 0.7, "priors_count": 0.3}),
        "defendant_id",
    )
    return evaluate_fairness_multivalued(ranking, "race", k=300)


def test_bench_c4_compas_race(benchmark):
    audit = benchmark.pedantic(compas_race_audit, rounds=1, iterations=1)

    rows = [f"audited categories: {', '.join(audit.categories)}"]
    for measure, flagged in audit.corrected_unfair.items():
        rows.append(f"{measure:<12} corrected-unfair: {', '.join(flagged) or '-'}")
    for result in audit.results:
        if result.measure == "Pairwise":
            rows.append(
                f"  pairwise {result.group_label:<28} "
                f"pref-prob {result.details['preference_probability']:.3f}  "
                f"p={result.p_value:.2e}"
            )
    report("C4: multi-valued race audit of the COMPAS risk ranking (k=300)", rows)

    # the documented skew survives correction: in a ranking by risk,
    # Caucasian defendants sit lower (under-represented at the top)...
    assert "Caucasian" in audit.unfair_categories("Pairwise")
    # ...which is the flip side of African-American over-representation:
    # their pairwise preference probability is above 1/2
    aa = next(
        r for r in audit.results
        if r.measure == "Pairwise" and r.group_label == "race=African-American"
    )
    assert aa.details["preference_probability"] > 0.5


def fair_multigroup_false_flags(trials=60, seed=20180610):
    """Family-wise false-flag rate on group-blind rankings, both ways."""
    rng = np.random.default_rng(seed)
    categories = ["a", "b", "c", "d", "e"]
    raw_flags = corrected_flags = 0
    for _ in range(trials):
        n = 400
        cats = rng.choice(categories, size=n, p=[0.4, 0.25, 0.15, 0.12, 0.08])
        table = Table.from_dict(
            {
                "item": [f"i{j}" for j in range(n)],
                "grp": list(cats),
                "score": rng.normal(size=n),  # group-blind scores
            }
        )
        ranking = rank_table(table, LinearScoringFunction({"score": 1.0}), "item")
        audit = evaluate_fairness_multivalued(ranking, "grp", k=50)
        if any(not r.fair for r in audit.results):
            raw_flags += 1
        if audit.any_unfair():
            corrected_flags += 1
    return raw_flags / trials, corrected_flags / trials


def test_bench_c4_correction_controls_false_flags(benchmark):
    raw_rate, corrected_rate = benchmark.pedantic(
        fair_multigroup_false_flags, rounds=1, iterations=1
    )
    report(
        "C4b: family-wise false-flag rate on fair rankings (5 groups)",
        [
            f"uncorrected (any raw verdict unfair):  {raw_rate:.2f}",
            f"corrected (Bonferroni across groups):  {corrected_rate:.2f}",
        ],
    )
    # 15 raw tests per ranking: false flags pile up without correction
    assert raw_rate > corrected_rate
    assert corrected_rate <= 0.15
