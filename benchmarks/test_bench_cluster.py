"""B3: the distributed trial cluster — serial vs a 2-worker local cluster.

The cluster's value proposition is *byte-identical labels on more
machines*: each worker runs its chunk's trials at their absolute
indices through the vectorized kernels, so the assembled batch equals
a local run bit for bit.  Because the workers vectorize, the remote
column beats plain serial even on this single-CPU bench host (the
kernels' win dwarfs the HTTP round-trips); the honest local comparison
is the ``vectorized`` column, which the cluster cannot beat while both
"workers" share the one core — *scaling past* one host's vectorized
throughput is what real machines behind the addresses buy.  What is
asserted is the determinism contract plus the scheduler's accounting
(every trial crossed the wire, spread over both workers); the timings
are recorded so a reader with a real cluster can compare the columns.

Failover cost is benchmarked too: a run where one worker dies
mid-batch must still produce the identical outcome, paying only the
retried chunks.
"""

import time

from benchmarks.conftest import report
from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.worker import make_worker
from repro.datasets import synthetic_scores_table
from repro.ranking.scoring import LinearScoringFunction
from repro.stability import WeightPerturbationStability

TRIALS = 40
WEIGHTS = {"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}


def bench_table():
    return synthetic_scores_table(800, num_attributes=3, group_advantage=0.8, seed=42)


def test_bench_b3_cluster_timings_and_determinism():
    """40 MC trials: serial vs 2 workers; identical outcomes, recorded timings."""
    table = bench_table()
    scorer = LinearScoringFunction(WEIGHTS)

    serial_estimator = WeightPerturbationStability(
        table, scorer, "item", k=20, trials=TRIALS, seed=1
    )
    serial_estimator.assess_at(0.1)  # warm-up
    start = time.perf_counter()
    serial_outcome = serial_estimator.assess_at(0.1)
    serial_seconds = time.perf_counter() - start

    from repro.engine.backends import VectorizedTrialBackend

    vectorized_estimator = WeightPerturbationStability(
        table, scorer, "item", k=20, trials=TRIALS, seed=1,
        backend=VectorizedTrialBackend(),
    )
    vectorized_estimator.assess_at(0.1)  # warm-up
    start = time.perf_counter()
    vectorized_outcome = vectorized_estimator.assess_at(0.1)
    vectorized_seconds = time.perf_counter() - start

    with make_worker() as one, make_worker() as two:
        backend = RemoteTrialBackend(
            [one.address, two.address], timeout=30, probe_timeout=5
        )
        remote_estimator = WeightPerturbationStability(
            table, scorer, "item", k=20, trials=TRIALS, seed=1, backend=backend
        )
        remote_estimator.assess_at(0.1)  # warm-up: probes outside the clock
        start = time.perf_counter()
        remote_outcome = remote_estimator.assess_at(0.1)
        remote_seconds = time.perf_counter() - start
        stats = backend.stats()
        worker_chunks = [w["chunks"] for w in stats["workers"]]
        backend.shutdown()

    report(
        "B3  trial cluster (vectorized workers; 1 CPU host shares the core)",
        [
            f"serial            {serial_seconds * 1000:8.1f} ms",
            f"vectorized        {vectorized_seconds * 1000:8.1f} ms",
            f"remote (2 local)  {remote_seconds * 1000:8.1f} ms",
            f"chunks per worker {worker_chunks}",
        ],
    )
    # the determinism contract is the acceptance bar, not wall-clock
    assert remote_outcome == serial_outcome
    assert vectorized_outcome == serial_outcome
    assert stats["chunks_remote"] > 0
    assert stats["local_runs"] == 0
    assert all(chunks > 0 for chunks in worker_chunks)  # both workers pulled


def test_bench_b3_failover_preserves_outcome():
    """Kill one worker mid-bench: identical outcome, failover accounted."""
    table = bench_table()
    scorer = LinearScoringFunction(WEIGHTS)
    serial_outcome = WeightPerturbationStability(
        table, scorer, "item", k=20, trials=TRIALS, seed=1
    ).assess_at(0.1)

    victim = make_worker().start()
    survivor = make_worker().start()
    try:
        backend = RemoteTrialBackend(
            [victim.address, survivor.address], timeout=30, probe_timeout=5
        )
        estimator = WeightPerturbationStability(
            table, scorer, "item", k=20, trials=TRIALS, seed=1, backend=backend
        )
        estimator.assess_at(0.1)  # both workers now believed alive
        victim.stop()
        start = time.perf_counter()
        outcome = estimator.assess_at(0.1)
        seconds = time.perf_counter() - start
        stats = backend.stats()
        backend.shutdown()
    finally:
        survivor.stop()

    report(
        "B3b failover (one worker killed mid-batch)",
        [
            f"degraded run      {seconds * 1000:8.1f} ms",
            f"chunk failures    {stats['chunk_failures']}",
            f"failed over       {stats['chunks_failed_over']}"
            f" (+{stats['chunks_recovered_locally']} recovered locally)",
        ],
    )
    assert outcome == serial_outcome
    assert stats["chunk_failures"] >= 1
