"""C3: the three widget measures across rankings of known unfairness.

§2.3 presents FA*IR, Proportion and Pairwise side by side and decides
each by p-value.  This bench sweeps the generative model of [13] over
fairness probabilities f (p fixed) and reports each measure's detection
rate, reproducing the expected picture: near-zero false-positive rate
at f = p, rising detection as f drops, agreement on clear cases.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.datasets import ranked_labels_table
from repro.fairness import (
    ProtectedGroup,
    generate_ranking_labels,
)
from repro.fairness.fair_star import FairStarMeasure
from repro.fairness.pairwise import PairwiseMeasure
from repro.fairness.proportion import ProportionMeasure
from repro.ranking import Ranking

N = 300
P = 0.5
K = 50
TRIALS = 60
F_SWEEP = (0.5, 0.4, 0.3, 0.2, 0.1)


def group_from_labels(labels):
    table = ranked_labels_table(labels)
    ranking = Ranking.from_scores(
        table, table.numeric_column("score").values, id_column="item"
    )
    return ProtectedGroup(ranking, "group", "protected")


def _measures():
    return {
        "FA*IR": FairStarMeasure(k=K, alpha=0.1, p=P),
        "Proportion": ProportionMeasure(k=K, alternative="less"),
        "Pairwise": PairwiseMeasure(alternative="less"),
    }


def detection_rates(seed=20180610):
    rng = np.random.default_rng(seed)
    measures = _measures()
    rates: dict[object, dict[str, float]] = {}
    # the exchangeable null: a uniformly shuffled composition — the fair
    # case under which every measure's test statistic is calibrated
    flags = {name: 0 for name in measures}
    base = np.asarray([True] * int(N * P) + [False] * (N - int(N * P)))
    for _ in range(TRIALS):
        labels = rng.permutation(base)
        group = group_from_labels(labels)
        for name, measure in measures.items():
            if not measure.audit(group).fair:
                flags[name] += 1
    rates["shuffle"] = {name: count / TRIALS for name, count in flags.items()}
    for f in F_SWEEP:
        flags = {name: 0 for name in measures}
        for _ in range(TRIALS):
            labels = generate_ranking_labels(N, P, f=f, rng=rng)
            group = group_from_labels(labels)
            for name, measure in measures.items():
                if not measure.audit(group).fair:
                    flags[name] += 1
        rates[f] = {name: count / TRIALS for name, count in flags.items()}
    return rates


def test_bench_c3_measure_agreement(benchmark):
    rates = benchmark.pedantic(detection_rates, rounds=1, iterations=1)

    rows = ["f         FA*IR   Proportion  Pairwise"]
    for f, by_measure in rates.items():
        tag = f"{f:.1f}" if isinstance(f, float) else f
        rows.append(
            f"{tag:<9} {by_measure['FA*IR']:5.2f}   "
            f"{by_measure['Proportion']:9.2f}   {by_measure['Pairwise']:7.2f}"
        )
    report("C3: detection rate vs fairness probability f (p=0.5, n=300, k=50)", rows)

    # calibration on the exchangeable null: all measures near alpha
    for name, rate in rates["shuffle"].items():
        assert rate <= 0.15, f"{name} over-rejects shuffled rankings ({rate:.2f})"
    # the prefix-binomial measures are also calibrated on the f=p
    # generative null (it IS their null hypothesis)
    for name in ("FA*IR", "Proportion"):
        assert rates[0.5][name] <= 0.15, name
    # documented finding (EXPERIMENTS.md): the f=p generative process is
    # over-dispersed relative to exchangeability (pool exhaustion forces
    # runs), so the rank-sum pairwise test rejects it more often than the
    # shuffle null — a real difference between the two fairness nulls
    assert rates[0.5]["Pairwise"] >= rates["shuffle"]["Pairwise"]
    # power: every measure catches blatant unfairness
    for name, rate in rates[0.1].items():
        assert rate >= 0.95, f"{name} misses blatant unfairness ({rate:.2f})"
    # monotonicity (soft): detection does not decrease as f drops
    for name in ("FA*IR", "Proportion", "Pairwise"):
        series = [rates[f][name] for f in F_SWEEP]
        assert all(b >= a - 0.1 for a, b in zip(series, series[1:])), name


def test_bench_c3_pairwise_most_powerful_on_global_skew(benchmark):
    """The pairwise measure sees the whole ranking, not just the top-k."""
    rng = np.random.default_rng(7)

    def moderate_skew_rates():
        pairwise_flags = proportion_flags = 0
        for _ in range(40):
            labels = generate_ranking_labels(N, P, f=0.35, rng=rng)
            group = group_from_labels(labels)
            if not PairwiseMeasure(alternative="less").audit(group).fair:
                pairwise_flags += 1
            if not ProportionMeasure(k=K, alternative="less").audit(group).fair:
                proportion_flags += 1
        return pairwise_flags / 40, proportion_flags / 40

    pairwise_rate, proportion_rate = benchmark.pedantic(
        moderate_skew_rates, rounds=1, iterations=1
    )
    report(
        "C3b: moderate skew (f=0.35) detection",
        [f"pairwise {pairwise_rate:.2f}  vs  top-k proportion {proportion_rate:.2f}"],
    )
    assert pairwise_rate >= proportion_rate
