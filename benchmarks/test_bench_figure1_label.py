"""F1: regenerate Figure 1 — the full nutritional label for CS departments.

Rebuilds every widget value the figure displays and asserts the shape
findings the paper narrates: the Recipe's three weighted attributes,
Ingredients led by size-driven attributes with GRE immaterial, a stable
score distribution, size-fairness failing for "small", and an all-large
top-10.  The benchmark times the complete label build.
"""

import pytest

from benchmarks.conftest import FIGURE1_WEIGHTS, report
from repro.label import RankingFactsBuilder


def build_label(cs_table, figure1_scorer):
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(figure1_scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .build()
    )


def test_bench_figure1_full_label(benchmark, cs_table, figure1_scorer):
    facts = benchmark(build_label, cs_table, figure1_scorer)
    label = facts.label

    rows = []

    # Recipe widget (Figure 1, yellow card)
    for attribute, weight in label.recipe.weights.items():
        rows.append(f"recipe      {attribute:<10} weight {weight:.2f} (minmax)")
    assert label.recipe.weights == FIGURE1_WEIGHTS

    # Ingredients widget (green card)
    for item in label.ingredients.analysis.importances:
        rows.append(
            f"ingredients {item.attribute:<10} importance {item.importance:.3f}"
        )
    leaders = label.ingredients.top_attributes()
    assert set(leaders[:2]) == {"PubCount", "Faculty"}
    assert label.ingredients.analysis.importance_of("GRE").importance < 0.3

    # Stability widget (purple card)
    slope = label.stability.slope_report
    rows.append(
        f"stability   top-10 slope {slope.slope_top_k:.3f}  "
        f"overall {slope.slope_overall:.3f}  -> {slope.verdict}"
    )
    assert slope.stable

    # Fairness widget (blue card): verdict per measure per protected feature
    for result in label.fairness.results:
        rows.append(
            f"fairness    {result.measure:<11} {result.group_label:<18} "
            f"{result.verdict:<7} p={result.p_value:.3g}"
        )
    grid = label.fairness.verdict_grid()
    assert set(grid["DeptSizeBin=small"].values()) == {"unfair"}
    assert grid["DeptSizeBin=large"]["FA*IR"] == "fair"  # no under-representation

    # Diversity widget (red card): both pie-chart pairs
    for div in label.diversity.reports:
        for category, share in div.overall.proportions.items():
            top = div.top_k.proportions.get(category, 0.0)
            rows.append(
                f"diversity   {div.attribute:<12} {category:<6} "
                f"top-10 {top:6.1%}  overall {share:6.1%}"
            )
    size_report = label.diversity.reports[0]
    assert size_report.top_k.proportions["large"] == 1.0
    assert size_report.missing_categories() == ("small",)

    report("Figure 1: Ranking Facts for CS departments", rows)


def test_bench_figure1_json_round_trip(benchmark, cs_table, figure1_scorer):
    """The label survives serialization (what the web tool ships to the browser)."""
    from repro.label import label_from_json, render_json

    facts = build_label(cs_table, figure1_scorer)

    def round_trip():
        return label_from_json(render_json(facts.label))

    data = benchmark(round_trip)
    assert data["num_items"] == 51
    assert data["fairness"]["verdicts"]["DeptSizeBin=small"]["FA*IR"] == "unfair"
