"""P1: label generation cost vs dataset size.

The tool is an interactive web demo, so the implicit systems claim is
that a complete label is cheap to produce.  This bench times the
end-to-end build and each widget family at n in {100, 1k, 6889, 20k}
(6,889 = the COMPAS cohort) and checks the scaling stays practical.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.diversity import diversity_report
from repro.fairness import evaluate_fairness
from repro.ingredients import correlation_importance
from repro.label import RankingFactsBuilder
from repro.preprocess import binarize_numeric
from repro.ranking import LinearScoringFunction, rank_table
from repro.stability import slope_stability

SIZES = (100, 1_000, 6_889, 20_000)
SCORER = LinearScoringFunction({"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2})


def dataset(n):
    table = synthetic_scores_table(
        n, num_attributes=3, group_advantage=0.8, seed=42
    )
    return binarize_numeric(
        table, "attr_1", "attr1Bin", above_label="high", below_label="low"
    )


def build(table):
    return (
        RankingFactsBuilder(table)
        .with_id_column("item")
        .with_scoring(SCORER)
        .with_sensitive_attribute("group")
        .with_diversity_attributes(["group", "attr1Bin"])
        .with_top_k(min(100, table.num_rows // 4))
        .build()
    )


@pytest.mark.parametrize("n", SIZES)
def test_bench_p1_label_build(benchmark, n):
    table = dataset(n)
    facts = benchmark(build, table)
    assert facts.label.num_items == n


def test_bench_p1_per_widget_profile(benchmark):
    """One pass at COMPAS scale, timed widget by widget."""
    table = dataset(6_889)

    def profile():
        timings = {}
        start = time.perf_counter()
        ranking = rank_table(table, SCORER, "item")
        timings["rank"] = time.perf_counter() - start

        start = time.perf_counter()
        correlation_importance(ranking, ["attr_1", "attr_2", "attr_3"])
        timings["ingredients"] = time.perf_counter() - start

        start = time.perf_counter()
        slope_stability(ranking, k=100)
        timings["stability"] = time.perf_counter() - start

        start = time.perf_counter()
        evaluate_fairness(ranking, "group", k=100)
        timings["fairness"] = time.perf_counter() - start

        start = time.perf_counter()
        diversity_report(ranking, ["group", "attr1Bin"], k=100)
        timings["diversity"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(profile, rounds=3, iterations=1)
    rows = [f"{widget:<12} {seconds * 1000:8.1f} ms" for widget, seconds in timings.items()]
    report("P1: per-widget cost at n=6,889 (COMPAS scale)", rows)

    # interactivity: every widget family under a second at COMPAS scale
    assert all(seconds < 1.0 for seconds in timings.values())


def test_bench_p1_scaling_is_practical(benchmark):
    """End-to-end label at 20k items stays interactive (< 5 s)."""
    table = dataset(20_000)
    start = time.perf_counter()
    benchmark.pedantic(build, args=(table,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    report("P1: end-to-end label at n=20,000", [f"{elapsed:.2f} s"])
    assert elapsed < 5.0
