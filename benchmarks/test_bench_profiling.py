"""B10: sampling-profiler overhead on the label hot path.

The tentpole's perf bar, in two halves.  Off means *free*: with no sink
attached there is no sampler thread at all — asserted structurally, not
by timing, because the absence of a thread is checkable while a "0.0%"
timing diff is just noise.  On at the default continuous rate (19 hz)
the sampler may cost at most 5% of one CPU, proven the same way: the
CPU the sampler consumes is exactly ``hz x per-tick cost``, and the
per-tick cost (walk ``sys._current_frames()``, fold every stack, feed
the sink) is measured directly against a live Monte-Carlo workload
thread — the exact stack shape `serve --profile` samples in production.
A wall-clock A/B on a loaded single-CPU bench host has a noise floor
around +/-8%, so it could never *prove* a sub-5% bar; it rides along as
a reported sanity check with a flake-proof bound instead.
"""

import statistics
import threading
import time

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.ranking.scoring import LinearScoringFunction
from repro.stability import WeightPerturbationStability
from repro.telemetry import (
    DEFAULT_CONTINUOUS_HZ,
    get_default_profiler,
    span,
)
from repro.telemetry.profiling import (
    MAX_STACK_DEPTH,
    _fold_stack,
    _ProfileSink,
    active_span_name,
)

WEIGHTS = {"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}
ROUNDS = 6


def make_workload():
    table = synthetic_scores_table(
        400, num_attributes=3, group_advantage=0.8, seed=42
    )
    estimator = WeightPerturbationStability(
        table, LinearScoringFunction(WEIGHTS), "item", k=20, trials=30, seed=1
    )

    def workload():
        # under a span, so continuous mode pays its full production
        # cost: stack walks *and* per-span sample attribution
        with span("bench.label"):
            return estimator.assess_at(0.1)

    return workload


def timed_rounds(workload, rounds=ROUNDS):
    workload()  # warm-up outside the clock
    start = time.perf_counter()
    for _ in range(rounds):
        workload()
    return (time.perf_counter() - start) / rounds


def sampler_threads():
    return [
        thread
        for thread in threading.enumerate()
        if thread.name == "repro-profiler"
    ]


def test_bench_b10_profiler_off_is_structurally_free():
    """No sink -> no sampler thread exists at all, before or after work."""
    profiler = get_default_profiler()
    stats = profiler.stats()
    assert stats["sinks"] == 0, "a leaked sink would charge every bench"
    assert not sampler_threads(), "sampler thread alive with no sink"

    workload = make_workload()
    seconds = timed_rounds(workload, rounds=2)
    assert not sampler_threads(), "idle workload spawned a sampler thread"
    assert profiler.stats()["running"] is False

    report("B10 profiler off: structural zero overhead", [
        f"{'workload':<16} {seconds * 1000:>8.1f} ms/round",
        "sampler threads   0 (no sink, no thread, nothing to pay)",
    ])


def test_bench_b10_continuous_sampling_under_five_percent():
    """Default-rate sampling's CPU budget is hz x per-tick cost < 5%."""
    workload = make_workload()

    # a live workload thread gives the tick realistic stacks to fold
    stop = threading.Event()

    def spin():
        while not stop.is_set():
            workload()

    thread = threading.Thread(target=spin, daemon=True)
    thread.start()
    time.sleep(0.1)

    import sys

    sink = _ProfileSink(hz=DEFAULT_CONTINUOUS_HZ, max_stacks=512)

    def tick():
        # exactly the sampler loop body: walk, fold, attribute, record
        frames = sys._current_frames()
        for tid, frame in frames.items():
            collapsed = _fold_stack(frame, MAX_STACK_DEPTH)
            leaf = collapsed.rsplit(";", 1)[-1]
            sink.add(collapsed, leaf, active_span_name(tid))

    try:
        reps = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(500):
                tick()
            reps.append((time.perf_counter() - start) / 500)
    finally:
        stop.set()
        thread.join()

    per_tick = min(reps)
    budget = DEFAULT_CONTINUOUS_HZ * per_tick
    assert sink.samples > 0, "ticks never saw the workload thread"

    # wall-clock sanity ride-along: tightly paired off/on rounds, median
    # ratio — bounded loosely because single-CPU scheduler noise swamps
    # a 0.02% signal, reported so regressions are visible in the log
    profiler = get_default_profiler()
    ratios = []
    for _ in range(6):
        off = timed_rounds(workload, rounds=2)
        assert profiler.start_continuous(hz=DEFAULT_CONTINUOUS_HZ)
        try:
            on = timed_rounds(workload, rounds=2)
        finally:
            drained = profiler.stop_continuous()
        assert drained is not None and drained.samples > 0
        ratios.append(on / off)
    wall_clock = statistics.median(ratios) - 1.0

    report("B10 continuous sampling at the default rate (19 hz)", [
        f"{'per tick':<18} {per_tick * 1e6:>8.1f} us",
        f"{'cpu budget':<18} {budget * 100:>8.3f} %  (hz x per-tick)",
        f"{'wall-clock delta':<18} {wall_clock * 100:>+8.2f} %  "
        f"(median of {len(ratios)} paired rounds; noise-bound)",
    ])
    assert not sampler_threads(), "stop_continuous left the thread running"
    assert budget < 0.05, (
        f"continuous sampling budgets {budget * 100:.3f}% of one CPU "
        f"at {DEFAULT_CONTINUOUS_HZ:g} hz (bar: 5%)"
    )
    assert wall_clock < 0.15, (
        f"wall-clock overhead {wall_clock * 100:.1f}% is beyond scheduler "
        f"noise; the sampler is interfering with the workload"
    )
